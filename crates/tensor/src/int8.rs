//! The int8 fixed-point MCU reference backend (`"int8_mcu"`).
//!
//! Microcontroller deployments of the discovered models run quantized: CMSIS-NN
//! style int8 weights and activations with 32-bit accumulators. The float
//! pipeline cannot express the accuracy effect of that arithmetic, so this
//! backend models it at reference fidelity:
//!
//! * **Per-tensor symmetric quantization** at every convolution / GEMM
//!   boundary: activations and weights are quantized to `[-127, 127]` with
//!   scale `max_abs / 127`, multiplied and accumulated in `i32`, and the
//!   result is dequantized back to `f32` (so the backend slots into the
//!   `f32` tensor substrate unchanged — what flows between layers is "what
//!   an int8 device would have computed").
//! * **Cycle-model-consistent work accounting**: the backend counts exactly
//!   the multiply–accumulates the `micronas-mcu` cycle model charges for
//!   each layer (`CycleModel::macs`), so a profiled int8 inference and the
//!   analytic latency estimate describe the same computation. The counter is
//!   observable via [`Int8Backend::macs_performed`].
//! * **Inference only**: quantized training is out of scope; the gradient
//!   entry points return a clean error and
//!   [`crate::KernelBackend::supports_gradients`] is `false`. Forward-only
//!   proxies (linear regions / expressivity) run under this backend, which
//!   opens the deployment-accuracy scenario: how much expressivity survives
//!   8-bit arithmetic.
//!
//! Average pooling runs in the dequantized domain — uniform scaling commutes
//! with averaging, so a separate integer pooling kernel would change nothing
//! but the rounding point, and CMSIS-NN average pooling carries the input
//! scale through unchanged.

use crate::backend::{backend_fingerprint, gradients_unsupported, KernelBackend};
use crate::conv::check_conv_args;
use crate::pool::avg_pool2d_pooled;
use crate::{Conv2dSpec, Result, Shape, Tensor, Workspace};
use std::sync::atomic::{AtomicU64, Ordering};

/// The int8 fixed-point MCU reference backend. See the module docs.
#[derive(Debug, Default)]
pub struct Int8Backend {
    /// Multiply–accumulates performed since construction /
    /// [`Int8Backend::reset_macs`], counted with the same per-layer formulas
    /// as `micronas_mcu::CycleModel::macs`.
    macs: AtomicU64,
}

impl Int8Backend {
    /// Creates a backend with a zeroed MAC counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Multiply–accumulates performed so far (cycle-model units).
    pub fn macs_performed(&self) -> u64 {
        self.macs.load(Ordering::Relaxed)
    }

    /// Resets the MAC counter.
    pub fn reset_macs(&self) {
        self.macs.store(0, Ordering::Relaxed);
    }

    fn count_macs(&self, macs: u64) {
        self.macs.fetch_add(macs, Ordering::Relaxed);
    }
}

/// Per-tensor symmetric quantization: `q = clamp(round(v / scale), ±127)`
/// with `scale = max_abs / 127`. An all-zero (or non-finite-free) tensor
/// quantizes to zeros with scale 1.
fn quantize(src: &[f32]) -> (Vec<i8>, f32) {
    let max_abs = src.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    if max_abs == 0.0 || !max_abs.is_finite() {
        return (vec![0; src.len()], 1.0);
    }
    let scale = max_abs / 127.0;
    let q = src
        .iter()
        .map(|&v| (v / scale).round().clamp(-127.0, 127.0) as i8)
        .collect();
    (q, scale)
}

impl KernelBackend for Int8Backend {
    fn id(&self) -> &str {
        "int8_mcu"
    }

    fn config_fingerprint(&self) -> u64 {
        // Version 1: per-tensor symmetric, 127-step, round-half-away.
        backend_fingerprint("int8_mcu", 1, &[127])
    }

    fn supports_gradients(&self) -> bool {
        false
    }

    fn arena_retention_cap_bytes(&self) -> usize {
        // Forward-only inference holds no gradient working set; probe-scale
        // activation traces fit comfortably below this.
        16 << 20
    }

    fn conv2d(
        &self,
        input: &Tensor,
        weight: &Tensor,
        spec: Conv2dSpec,
        workspace: &mut Workspace,
    ) -> Result<Tensor> {
        let (n, c_in, h, w, c_out, k) = check_conv_args(input, weight, spec)?;
        let (oh, ow) = spec.output_hw(h, w);
        let (q_in, s_in) = quantize(input.data());
        let (q_w, s_w) = quantize(weight.data());
        let rescale = s_in * s_w;
        let mut out = Tensor::from_vec(
            Shape::nchw(n, c_out, oh, ow),
            workspace.take(n * c_out * oh * ow),
        )
        .expect("length matches shape by construction");
        let dst = out.data_mut();
        let in_plane = h * w;
        let in_stride = c_in * in_plane;
        for b in 0..n {
            for oc in 0..c_out {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc: i32 = 0;
                        for ic in 0..c_in {
                            let plane = &q_in[b * in_stride + ic * in_plane
                                ..b * in_stride + (ic + 1) * in_plane];
                            let w_base = ((oc * c_in) + ic) * k * k;
                            for ky in 0..k {
                                let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                for kx in 0..k {
                                    let ix =
                                        (ox * spec.stride + kx) as isize - spec.padding as isize;
                                    if ix < 0 || ix >= w as isize {
                                        continue;
                                    }
                                    acc += plane[iy as usize * w + ix as usize] as i32
                                        * q_w[w_base + ky * k + kx] as i32;
                                }
                            }
                        }
                        dst[((b * c_out + oc) * oh + oy) * ow + ox] = acc as f32 * rescale;
                    }
                }
            }
        }
        // The cycle model charges out_elems · C_in · K² MACs per conv —
        // padded taps included, exactly as a deployed im2col kernel executes.
        self.count_macs((n * c_out * oh * ow) as u64 * (c_in * k * k) as u64);
        Ok(out)
    }

    fn conv2d_backward_input(
        &self,
        _weight: &Tensor,
        _grad_out: &Tensor,
        _input_shape: &Shape,
        _spec: Conv2dSpec,
        _workspace: &mut Workspace,
    ) -> Result<Tensor> {
        Err(gradients_unsupported(self.id()))
    }

    fn conv2d_backward_weight(
        &self,
        _input: &Tensor,
        _grad_out: &Tensor,
        _c_out: usize,
        _spec: Conv2dSpec,
        _workspace: &mut Workspace,
    ) -> Result<Tensor> {
        Err(gradients_unsupported(self.id()))
    }

    fn conv2d_backward_weight_per_sample_into(
        &self,
        _input: &Tensor,
        _grad_out: &Tensor,
        _c_out: usize,
        _spec: Conv2dSpec,
        _workspace: &mut Workspace,
        _out: &mut [f32],
        _row_stride: usize,
        _offset: usize,
    ) -> Result<()> {
        Err(gradients_unsupported(self.id()))
    }

    fn avg_pool2d(
        &self,
        input: &Tensor,
        kernel: usize,
        stride: usize,
        padding: usize,
        workspace: &mut Workspace,
    ) -> Result<Tensor> {
        // Averaging commutes with the uniform scale, so pooling in the
        // dequantized domain is the int8 device's result exactly (CMSIS-NN
        // average pooling keeps the input scale).
        let out = avg_pool2d_pooled(input, kernel, stride, padding, workspace)?;
        // One add per window element, as the cycle model charges pooling.
        self.count_macs(out.numel() as u64 * (kernel * kernel) as u64);
        Ok(out)
    }

    fn avg_pool2d_backward(
        &self,
        _grad_out: &Tensor,
        _input_shape: &Shape,
        _kernel: usize,
        _stride: usize,
        _padding: usize,
        _workspace: &mut Workspace,
    ) -> Result<Tensor> {
        Err(gradients_unsupported(self.id()))
    }

    fn gemm_nn(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        accumulate: bool,
    ) {
        assert_eq!(a.len(), m * k, "gemm: A buffer has wrong length");
        assert_eq!(b.len(), k * n, "gemm: B buffer has wrong length");
        assert_eq!(c.len(), m * n, "gemm: C buffer has wrong length");
        let (qa, sa) = quantize(a);
        let (qb, sb) = quantize(b);
        let rescale = sa * sb;
        if !accumulate {
            c.fill(0.0);
        }
        for i in 0..m {
            for j in 0..n {
                let mut acc: i32 = 0;
                for p in 0..k {
                    acc += qa[i * k + p] as i32 * qb[p * n + j] as i32;
                }
                c[i * n + j] += acc as f32 * rescale;
            }
        }
        self.count_macs((m * n * k) as u64);
    }

    fn gemm_nt(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        accumulate: bool,
    ) {
        assert_eq!(a.len(), m * k, "gemm: A buffer has wrong length");
        assert_eq!(b.len(), n * k, "gemm: B buffer has wrong length");
        assert_eq!(c.len(), m * n, "gemm: C buffer has wrong length");
        let (qa, sa) = quantize(a);
        let (qb, sb) = quantize(b);
        let rescale = sa * sb;
        if !accumulate {
            c.fill(0.0);
        }
        for i in 0..m {
            for j in 0..n {
                let mut acc: i32 = 0;
                for p in 0..k {
                    acc += qa[i * k + p] as i32 * qb[j * k + p] as i32;
                }
                c[i * n + j] += acc as f32 * rescale;
            }
        }
        self.count_macs((m * n * k) as u64);
    }

    fn gemm_tn(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        accumulate: bool,
    ) {
        assert_eq!(a.len(), k * m, "gemm: A buffer has wrong length");
        assert_eq!(b.len(), k * n, "gemm: B buffer has wrong length");
        assert_eq!(c.len(), m * n, "gemm: C buffer has wrong length");
        let (qa, sa) = quantize(a);
        let (qb, sb) = quantize(b);
        let rescale = sa * sb;
        if !accumulate {
            c.fill(0.0);
        }
        for i in 0..m {
            for j in 0..n {
                let mut acc: i32 = 0;
                for p in 0..k {
                    acc += qa[p * m + i] as i32 * qb[p * n + j] as i32;
                }
                c[i * n + j] += acc as f32 * rescale;
            }
        }
        self.count_macs((m * n * k) as u64);
    }

    fn gram_nt_f64(&self, n: usize, p: usize, j: &[f32], out: &mut [f64]) {
        // Only reachable through gradient paths, which error before getting
        // here; delegate to the float build for completeness.
        crate::linalg::gram_nt_f64(n, p, j, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{conv2d_direct, DeterministicRng};

    fn random_tensor(shape: Shape, seed: u64) -> Tensor {
        let mut rng = DeterministicRng::new(seed);
        let data = (0..shape.numel()).map(|_| rng.normal()).collect();
        Tensor::from_vec(shape, data).unwrap()
    }

    #[test]
    fn quantization_roundtrips_extremes_exactly() {
        let (q, s) = quantize(&[1.0, -2.0, 0.5, 2.0]);
        assert_eq!(q[3], 127, "the max quantizes to full scale");
        assert_eq!(q[1], -127);
        assert!((s - 2.0 / 127.0).abs() < 1e-9);
        let (q, s) = quantize(&[0.0, 0.0]);
        assert_eq!(q, vec![0, 0]);
        assert_eq!(s, 1.0);
    }

    #[test]
    fn int8_conv_tracks_the_float_reference_within_quantization_noise() {
        let backend = Int8Backend::new();
        let input = random_tensor(Shape::nchw(2, 3, 8, 8), 10);
        let weight = random_tensor(Shape::nchw(4, 3, 3, 3), 11);
        let spec = Conv2dSpec::new(3, 1, 1);
        let q = backend
            .conv2d(&input, &weight, spec, &mut Workspace::default())
            .unwrap();
        let f = conv2d_direct(&input, &weight, spec).unwrap();
        let err: f32 = q
            .data()
            .iter()
            .zip(f.data())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt();
        let norm: f32 = f.data().iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!(
            err / norm < 0.05,
            "relative quantization error {} too large",
            err / norm
        );
    }

    #[test]
    fn mac_counter_matches_the_analytic_conv_formula() {
        let backend = Int8Backend::new();
        let input = random_tensor(Shape::nchw(1, 3, 8, 8), 1);
        let weight = random_tensor(Shape::nchw(4, 3, 3, 3), 2);
        backend
            .conv2d(
                &input,
                &weight,
                Conv2dSpec::new(3, 1, 1),
                &mut Workspace::default(),
            )
            .unwrap();
        // out_elems (4·8·8) × C_in·K² (3·9)
        assert_eq!(backend.macs_performed(), 4 * 8 * 8 * 3 * 9);
        backend.reset_macs();
        assert_eq!(backend.macs_performed(), 0);
    }

    #[test]
    fn gradient_entry_points_error_cleanly() {
        let backend = Int8Backend::new();
        let input = random_tensor(Shape::nchw(1, 2, 4, 4), 3);
        let grad = random_tensor(Shape::nchw(1, 2, 4, 4), 4);
        let err = backend
            .conv2d_backward_weight(
                &input,
                &grad,
                2,
                Conv2dSpec::new(3, 1, 1),
                &mut Workspace::default(),
            )
            .unwrap_err();
        assert!(err.to_string().contains("inference-only"), "{err}");
        assert!(!backend.supports_gradients());
    }
}
