//! Kernel-level backend conformance: every registered [`KernelBackend`]
//! against the direct-loop oracle.
//!
//! Gates, per backend family:
//!
//! * `direct` — trivially the oracle;
//! * `blocked_gemm` (the paper default) — a **bitwise** gate against the
//!   dispatching free functions (it must be byte-for-byte the code path the
//!   pre-backend pipeline ran), plus the float tolerance against the oracle;
//! * `simd` — float tolerance (FMA contracts the multiply-add rounding, so
//!   bitwise equality is explicitly *not* promised);
//! * `int8_mcu` — a quantization-noise gate on the forward kernels
//!   (relative l2 error of per-tensor symmetric int8 arithmetic) and clean
//!   errors from every gradient kernel.

use micronas_tensor::{
    all_backends, conv2d_pooled, paper_default_backend, Conv2dSpec, DeterministicRng,
    KernelBackend, Shape, Tensor, Workspace,
};
use proptest::prelude::*;
use std::sync::Arc;

fn random_tensor(shape: Shape, seed: u64) -> Tensor {
    let mut rng = DeterministicRng::new(seed);
    let data = (0..shape.numel()).map(|_| rng.normal()).collect();
    Tensor::from_vec(shape, data).unwrap()
}

/// Float tolerance of one backend against the direct oracle; `None` means
/// the backend is gated by the quantization-noise check instead.
fn float_tolerance(id: &str) -> Option<f32> {
    match id {
        "direct" => Some(0.0),
        "blocked_gemm" => Some(1e-5),
        "simd" => Some(1e-4),
        "int8_mcu" => None,
        other => panic!("unregistered backend {other} — add a tolerance gate"),
    }
}

fn assert_close(got: &Tensor, want: &Tensor, tol: f32, what: &str) {
    assert_eq!(got.shape(), want.shape(), "{what}: shape");
    for (g, w) in got.data().iter().zip(want.data()) {
        assert!(
            (g - w).abs() <= tol * (1.0 + w.abs()),
            "{what}: {g} vs oracle {w}"
        );
    }
}

/// Relative l2 error, the quantization-noise gate for the int8 backend.
fn rel_l2(got: &Tensor, want: &Tensor) -> f32 {
    let err: f32 = got
        .data()
        .iter()
        .zip(want.data())
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f32>()
        .sqrt();
    let norm: f32 = want.data().iter().map(|v| v * v).sum::<f32>().sqrt();
    if norm == 0.0 {
        0.0
    } else {
        err / norm
    }
}

/// Runs the full kernel battery for one geometry on one backend.
#[allow(clippy::too_many_arguments)]
fn check_backend(
    backend: &Arc<dyn KernelBackend>,
    n: usize,
    c_in: usize,
    c_out: usize,
    h: usize,
    w: usize,
    spec: Conv2dSpec,
    seed: u64,
) {
    let oracle: Arc<dyn KernelBackend> = Arc::new(micronas_tensor::DirectBackend);
    let (oh, ow) = spec.output_hw(h, w);
    if oh == 0 || ow == 0 || h + 2 * spec.padding < spec.kernel {
        return;
    }
    let input = random_tensor(Shape::nchw(n, c_in, h, w), seed);
    let weight = random_tensor(Shape::nchw(c_out, c_in, spec.kernel, spec.kernel), seed + 1);
    let grad_out = random_tensor(Shape::nchw(n, c_out, oh, ow), seed + 2);
    let mut ws = Workspace::default();
    let mut ows = Workspace::default();

    // Forward.
    let fwd = backend.conv2d(&input, &weight, spec, &mut ws).unwrap();
    let fwd_ref = oracle.conv2d(&input, &weight, spec, &mut ows).unwrap();
    match float_tolerance(backend.id()) {
        Some(tol) => assert_close(&fwd, &fwd_ref, tol, &format!("{} conv2d", backend.id())),
        None => {
            let e = rel_l2(&fwd, &fwd_ref);
            assert!(
                e < 0.08,
                "{}: forward quantization error {e} out of band",
                backend.id()
            );
        }
    }

    // Pooling (forward for everyone; backward only for gradient backends).
    let pooled = backend.avg_pool2d(&input, 3, 1, 1, &mut ws).unwrap();
    let pooled_ref = oracle.avg_pool2d(&input, 3, 1, 1, &mut ows).unwrap();
    // Pooling is never quantized (uniform scaling commutes with averaging),
    // so even the int8 backend meets the float gate here.
    let pool_tol = float_tolerance(backend.id()).unwrap_or(1e-5);
    assert_close(
        &pooled,
        &pooled_ref,
        pool_tol,
        &format!("{} avg_pool2d", backend.id()),
    );

    if !backend.supports_gradients() {
        // Inference-only: every gradient kernel errors cleanly.
        assert!(backend
            .conv2d_backward_weight(&input, &grad_out, c_out, spec, &mut ws)
            .is_err());
        assert!(backend
            .conv2d_backward_input(&weight, &grad_out, input.shape(), spec, &mut ws)
            .is_err());
        let p = c_out * c_in * spec.kernel * spec.kernel;
        let mut out = vec![0.0f32; n * p];
        assert!(backend
            .conv2d_backward_weight_per_sample_into(
                &input, &grad_out, c_out, spec, &mut ws, &mut out, p, 0
            )
            .is_err());
        assert!(backend
            .avg_pool2d_backward(&pooled_ref, input.shape(), 3, 1, 1, &mut ws)
            .is_err());
        return;
    }
    let tol = float_tolerance(backend.id()).expect("gradient backends have a float gate");

    // Backward weight (summed).
    let gw = backend
        .conv2d_backward_weight(&input, &grad_out, c_out, spec, &mut ws)
        .unwrap();
    let gw_ref = oracle
        .conv2d_backward_weight(&input, &grad_out, c_out, spec, &mut ows)
        .unwrap();
    assert_close(
        &gw,
        &gw_ref,
        tol,
        &format!("{} backward_weight", backend.id()),
    );

    // Backward weight, per sample, strided into a caller matrix.
    let p = c_out * c_in * spec.kernel * spec.kernel;
    let (row_stride, offset) = (p + 5, 3);
    let mut got = vec![f32::NAN; n * row_stride];
    let mut want = vec![f32::NAN; n * row_stride];
    backend
        .conv2d_backward_weight_per_sample_into(
            &input, &grad_out, c_out, spec, &mut ws, &mut got, row_stride, offset,
        )
        .unwrap();
    oracle
        .conv2d_backward_weight_per_sample_into(
            &input, &grad_out, c_out, spec, &mut ows, &mut want, row_stride, offset,
        )
        .unwrap();
    for b in 0..n {
        let g = &got[b * row_stride + offset..b * row_stride + offset + p];
        let r = &want[b * row_stride + offset..b * row_stride + offset + p];
        for (x, y) in g.iter().zip(r) {
            assert!(
                (x - y).abs() <= tol * (1.0 + y.abs()),
                "{} per-sample sample {b}: {x} vs {y}",
                backend.id()
            );
        }
    }
    // Bytes outside the strided slices stay untouched.
    assert!(got[..offset].iter().all(|v| v.is_nan()));

    // Backward input.
    let gi = backend
        .conv2d_backward_input(&weight, &grad_out, input.shape(), spec, &mut ws)
        .unwrap();
    let gi_ref = oracle
        .conv2d_backward_input(&weight, &grad_out, input.shape(), spec, &mut ows)
        .unwrap();
    assert_close(
        &gi,
        &gi_ref,
        tol,
        &format!("{} backward_input", backend.id()),
    );

    // Pooling backward, with a gradient shaped like the pooling *forward*
    // output (pool k=3/s=1/p=1 preserves the input shape) — always
    // shape-valid, so this comparison is exercised for every geometry
    // rather than silently erroring out when c_out differs from c_in.
    let pool_grad = random_tensor(pooled_ref.shape().clone(), seed + 3);
    let pg = backend
        .avg_pool2d_backward(&pool_grad, input.shape(), 3, 1, 1, &mut ws)
        .unwrap();
    let pg_ref = oracle
        .avg_pool2d_backward(&pool_grad, input.shape(), 3, 1, 1, &mut ows)
        .unwrap();
    assert_close(
        &pg,
        &pg_ref,
        tol,
        &format!("{} pool backward", backend.id()),
    );
}

#[test]
fn every_backend_matches_the_oracle_on_representative_geometries() {
    for backend in all_backends() {
        // The geometries the proxy networks actually run.
        check_backend(&backend, 2, 3, 8, 16, 16, Conv2dSpec::new(3, 1, 1), 40);
        check_backend(&backend, 3, 8, 8, 16, 16, Conv2dSpec::new(1, 1, 0), 41);
        check_backend(&backend, 1, 4, 6, 12, 12, Conv2dSpec::new(3, 2, 1), 42);
        // Batch large enough to engage the SIMD backend's chunked path when
        // a multi-thread pool is active.
        check_backend(&backend, 9, 3, 4, 10, 10, Conv2dSpec::new(3, 1, 1), 43);
    }
}

#[test]
fn every_backend_packed_forward_is_bitwise_its_own_solo_path() {
    // The mega-batching contract: for EVERY backend, the packed entry point
    // is bit-for-bit the per-candidate loop over that backend's own conv2d —
    // the default implementation by construction, and the blocked_gemm
    // override by its schedule guard.
    for backend in all_backends() {
        for (n, c_in, c_out, h, spec, seed) in [
            // Wide merged schedule (pointwise, ohow 256).
            (
                2usize,
                8usize,
                8usize,
                16usize,
                Conv2dSpec::new(1, 1, 0),
                60u64,
            ),
            // Deep merged schedule (ckk 72, ohow 25).
            (2, 8, 8, 5, Conv2dSpec::new(3, 1, 1), 61),
            // Schedule boundary: must fall back per candidate.
            (3, 2, 4, 5, Conv2dSpec::new(3, 1, 1), 62),
            // Strided downsampling geometry.
            (2, 4, 6, 12, Conv2dSpec::new(3, 2, 1), 63),
        ] {
            let weight = random_tensor(Shape::nchw(c_out, c_in, spec.kernel, spec.kernel), seed);
            for width in [1usize, 2, 8] {
                let inputs: Vec<Tensor> = (0..width)
                    .map(|i| random_tensor(Shape::nchw(n, c_in, h, h), seed + 10 + i as u64))
                    .collect();
                let refs: Vec<&Tensor> = inputs.iter().collect();
                let mut ws = Workspace::default();
                let packed = backend
                    .conv2d_forward_packed(&refs, &weight, spec, &mut ws)
                    .unwrap();
                for (input, got) in inputs.iter().zip(&packed) {
                    let want = backend
                        .conv2d(input, &weight, spec, &mut Workspace::default())
                        .unwrap();
                    assert_eq!(
                        got.data(),
                        want.data(),
                        "backend {} width {width} packed forward must be bitwise solo",
                        backend.id()
                    );
                }
            }
        }
    }
}

#[test]
fn paper_default_backend_is_bitwise_identical_to_the_free_functions() {
    // The pin behind every store namespace decision: the default backend IS
    // the dispatching free-function path, byte for byte.
    let backend = paper_default_backend();
    assert!(backend.bitwise_paper_identical());
    for (n, c_in, c_out, h, spec, seed) in [
        (
            2usize,
            3usize,
            8usize,
            16usize,
            Conv2dSpec::new(3, 1, 1),
            7u64,
        ),
        (4, 8, 8, 12, Conv2dSpec::new(1, 1, 0), 8),
        (1, 2, 3, 9, Conv2dSpec::new(3, 2, 1), 9),
    ] {
        let input = random_tensor(Shape::nchw(n, c_in, h, h), seed);
        let weight = random_tensor(Shape::nchw(c_out, c_in, spec.kernel, spec.kernel), seed + 1);
        let mut ws = Workspace::default();
        let via_backend = backend.conv2d(&input, &weight, spec, &mut ws).unwrap();
        let via_free = conv2d_pooled(&input, &weight, spec, &mut Workspace::default()).unwrap();
        assert_eq!(
            via_backend.data(),
            via_free.data(),
            "paper-default backend must be bitwise-identical"
        );
    }
}

#[test]
fn gemm_and_gram_match_the_oracle() {
    let oracle: Arc<dyn KernelBackend> = Arc::new(micronas_tensor::DirectBackend);
    let (m, k, n) = (7, 33, 19);
    let a = random_tensor(Shape::d2(m, k), 1);
    let b = random_tensor(Shape::d2(k, n), 2);
    let bt = random_tensor(Shape::d2(n, k), 3);
    let at = random_tensor(Shape::d2(k, m), 4);
    for backend in all_backends() {
        let quantized = float_tolerance(backend.id()).is_none();
        let tol = float_tolerance(backend.id()).unwrap_or(0.0);
        let check = |got: &[f32], want: &[f32], what: &str| {
            if quantized {
                let err: f32 = got
                    .iter()
                    .zip(want)
                    .map(|(x, y)| (x - y) * (x - y))
                    .sum::<f32>()
                    .sqrt();
                let norm: f32 = want.iter().map(|v| v * v).sum::<f32>().sqrt();
                assert!(
                    err / norm < 0.08,
                    "{}: {what} error {}",
                    backend.id(),
                    err / norm
                );
            } else {
                for (x, y) in got.iter().zip(want) {
                    assert!(
                        (x - y).abs() <= tol * (1.0 + y.abs()),
                        "{}: {what} {x} vs {y}",
                        backend.id()
                    );
                }
            }
        };
        let mut got = vec![0.0f32; m * n];
        let mut want = vec![0.0f32; m * n];
        backend.gemm_nn(m, k, n, a.data(), b.data(), &mut got, false);
        oracle.gemm_nn(m, k, n, a.data(), b.data(), &mut want, false);
        check(&got, &want, "gemm_nn");

        got.fill(0.0);
        want.fill(0.0);
        backend.gemm_nt(m, k, n, a.data(), bt.data(), &mut got, false);
        oracle.gemm_nt(m, k, n, a.data(), bt.data(), &mut want, false);
        check(&got, &want, "gemm_nt");

        got.fill(0.0);
        want.fill(0.0);
        backend.gemm_tn(m, k, n, at.data(), b.data(), &mut got, false);
        oracle.gemm_tn(m, k, n, at.data(), b.data(), &mut want, false);
        check(&got, &want, "gemm_tn");

        // Gram: f64 accumulated, so even quantized backends (which delegate)
        // meet a tight gate.
        let j = random_tensor(Shape::d2(6, 150), 5);
        let mut gram = vec![0.0f64; 36];
        let mut gram_ref = vec![0.0f64; 36];
        backend.gram_nt_f64(6, 150, j.data(), &mut gram);
        oracle.gram_nt_f64(6, 150, j.data(), &mut gram_ref);
        for (x, y) in gram.iter().zip(&gram_ref) {
            assert!(
                (x - y).abs() <= 1e-4 * (1.0 + y.abs()),
                "{}: gram {x} vs {y}",
                backend.id()
            );
        }
    }
}

proptest! {
    /// The decisive property: every registered backend agrees with the
    /// direct-loop oracle across random geometries (each at its gate).
    #[test]
    fn backends_agree_with_the_oracle_across_random_geometries(
        n in 1usize..4,
        c_in in 1usize..5,
        c_out in 1usize..5,
        h in 3usize..11,
        extra_w in 0usize..3,
        kernel in 1usize..4,
        stride in 1usize..3,
        padding in 0usize..2,
        seed in 0u64..1_000,
    ) {
        let spec = Conv2dSpec::new(kernel, stride, padding);
        for backend in all_backends() {
            check_backend(&backend, n, c_in, c_out, h, h + extra_w, spec, seed);
        }
    }
}
