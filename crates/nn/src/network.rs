//! The proxy cell network: stem → stacked searched cells → pooling → classifier.

use crate::{ConvLayer, LinearLayer, NnError, ParameterGradients, ProxyNetworkConfig, Result};
use micronas_searchspace::{CellTopology, EdgeId, Operation, NUM_EDGES, NUM_NODES};
use micronas_tensor::{
    avg_pool2d, avg_pool2d_backward, global_avg_pool, global_avg_pool_backward, hash_mix,
    ops::{relu, relu_backward},
    Shape, Tensor, Workspace,
};

/// Result of a forward pass through a [`CellNetwork`].
#[derive(Debug, Clone)]
pub struct ForwardOutput {
    /// Classifier logits, shape `[N, num_classes]`.
    pub logits: Tensor,
    /// Pre-ReLU node activations feeding each convolution edge, in
    /// (cell, edge) order. Their sign patterns define the linear region a
    /// sample falls into.
    pub pre_activations: Vec<Tensor>,
}

/// One stacked instance of the searched cell: a convolution layer for every
/// parameterised edge.
#[derive(Debug, Clone)]
struct CellInstance {
    edge_convs: Vec<Option<ConvLayer>>,
}

/// Intermediate tensors of a forward pass, retained for backpropagation.
#[derive(Debug, Clone)]
struct ForwardTrace {
    /// Network input.
    input: Tensor,
    /// Output of the stem convolution (input to the first cell).
    stem_out: Tensor,
    /// Node values for every cell: `nodes[cell][node]`.
    nodes: Vec<Vec<Tensor>>,
    /// Input to the classifier (after global average pooling), `[N, C]`.
    features: Tensor,
    /// Classifier logits.
    logits: Tensor,
}

/// A concrete, randomly initialised network built from one searched cell.
///
/// The macro structure mirrors NAS-Bench-201 at reduced scale: a 3×3 stem
/// convolution, `num_cells` stacked copies of the cell at constant channel
/// width, global average pooling and a linear classifier. See
/// [`ProxyNetworkConfig`] for the geometry knobs.
#[derive(Debug, Clone)]
pub struct CellNetwork {
    cell: CellTopology,
    config: ProxyNetworkConfig,
    stem: ConvLayer,
    cells: Vec<CellInstance>,
    classifier: LinearLayer,
}

impl CellNetwork {
    /// Builds and randomly initialises the network for `cell`.
    ///
    /// The `seed` controls every weight tensor; two networks built with the
    /// same `(cell, config, seed)` triple are identical.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if the configuration is invalid.
    pub fn new(cell: &CellTopology, config: &ProxyNetworkConfig, seed: u64) -> Result<Self> {
        config.validate()?;
        let stem = ConvLayer::new(
            config.input_channels,
            config.channels,
            3,
            1,
            1,
            config.init,
            hash_mix(seed, STEM_SEED_STREAM),
        );
        let mut cells = Vec::with_capacity(config.num_cells);
        for cell_idx in 0..config.num_cells {
            let mut edge_convs = Vec::with_capacity(NUM_EDGES);
            for edge in 0..NUM_EDGES {
                let op = cell.edge_ops()[edge];
                let conv = match op {
                    Operation::NorConv1x1 => Some(ConvLayer::new(
                        config.channels,
                        config.channels,
                        1,
                        1,
                        0,
                        config.init,
                        hash_mix(seed, (cell_idx * NUM_EDGES + edge) as u64 + 1),
                    )),
                    Operation::NorConv3x3 => Some(ConvLayer::new(
                        config.channels,
                        config.channels,
                        3,
                        1,
                        1,
                        config.init,
                        hash_mix(seed, (cell_idx * NUM_EDGES + edge) as u64 + 1),
                    )),
                    _ => None,
                };
                edge_convs.push(conv);
            }
            cells.push(CellInstance { edge_convs });
        }
        let classifier = LinearLayer::new(
            config.channels,
            config.num_classes,
            config.init,
            hash_mix(seed, 0xC1A5_51F1),
        );
        Ok(Self {
            cell: *cell,
            config: *config,
            stem,
            cells,
            classifier,
        })
    }

    /// The searched cell this network instantiates.
    pub fn cell(&self) -> &CellTopology {
        &self.cell
    }

    /// The network configuration.
    pub fn config(&self) -> &ProxyNetworkConfig {
        &self.config
    }

    /// Total number of trainable parameters.
    pub fn num_parameters(&self) -> usize {
        let mut n = self.stem.num_parameters();
        for cell in &self.cells {
            for conv in cell.edge_convs.iter().flatten() {
                n += conv.num_parameters();
            }
        }
        n + self.classifier.num_parameters()
    }

    fn check_input(&self, input: &Tensor) -> Result<()> {
        let d = input.shape().dims();
        let r = self.config.input_resolution;
        if d.len() != 4 || d[1] != self.config.input_channels || d[2] != r || d[3] != r {
            return Err(NnError::InputMismatch {
                expected: [0, self.config.input_channels, r, r],
                actual: d.to_vec(),
            });
        }
        Ok(())
    }

    fn forward_trace(
        &self,
        input: &Tensor,
        workspace: &mut Workspace,
    ) -> Result<(ForwardTrace, Vec<Tensor>)> {
        self.check_input(input)?;
        let stem_out = self.stem.forward_with(input, workspace)?;
        let mut pre_activations = Vec::new();
        let mut nodes_per_cell = Vec::with_capacity(self.cells.len());
        let mut x = stem_out.clone();
        for cell in &self.cells {
            let mut nodes: Vec<Tensor> = Vec::with_capacity(NUM_NODES);
            nodes.push(x.clone());
            for dst in 1..NUM_NODES {
                let mut acc = Tensor::zeros(x.shape().clone());
                for edge in EdgeId::all() {
                    let (src, d) = edge.endpoints();
                    if d != dst {
                        continue;
                    }
                    let op = self.cell.edge_ops()[edge.0];
                    let contribution = match op {
                        Operation::None => None,
                        Operation::SkipConnect => Some(nodes[src].clone()),
                        Operation::AvgPool3x3 => Some(avg_pool2d(&nodes[src], 3, 1, 1)?),
                        Operation::NorConv1x1 | Operation::NorConv3x3 => {
                            let conv = cell.edge_convs[edge.0]
                                .as_ref()
                                .expect("conv edge always has a layer");
                            pre_activations.push(nodes[src].clone());
                            let activated = relu(&nodes[src]);
                            Some(conv.forward_with(&activated, workspace)?)
                        }
                    };
                    if let Some(c) = contribution {
                        acc.axpy(1.0, &c).map_err(NnError::from)?;
                    }
                }
                nodes.push(acc);
            }
            x = nodes[NUM_NODES - 1].clone();
            nodes_per_cell.push(nodes);
        }
        let features = global_avg_pool(&x)?;
        let logits = self.classifier.forward(&features)?;
        let trace = ForwardTrace {
            input: input.clone(),
            stem_out,
            nodes: nodes_per_cell,
            features,
            logits,
        };
        Ok((trace, pre_activations))
    }

    /// Runs the network on a batch of inputs.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputMismatch`] if the input geometry does not
    /// match the configuration.
    pub fn forward(&self, input: &Tensor) -> Result<ForwardOutput> {
        self.forward_with(input, &mut Workspace::default())
    }

    /// [`CellNetwork::forward`] reusing an explicit scratch [`Workspace`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputMismatch`] if the input geometry does not
    /// match the configuration.
    pub fn forward_with(&self, input: &Tensor, workspace: &mut Workspace) -> Result<ForwardOutput> {
        let (trace, pre_activations) = self.forward_trace(input, workspace)?;
        Ok(ForwardOutput {
            logits: trace.logits,
            pre_activations,
        })
    }

    /// Gradient of `sum(logits)` with respect to every parameter, for a batch.
    ///
    /// The returned vector follows the fixed parameter order (stem, cells in
    /// order with edges in canonical order, classifier), matching
    /// [`CellNetwork::num_parameters`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputMismatch`] for geometry mismatches.
    pub fn parameter_gradients(&self, input: &Tensor) -> Result<ParameterGradients> {
        self.parameter_gradients_with(input, &mut Workspace::default())
    }

    /// [`CellNetwork::parameter_gradients`] reusing an explicit scratch
    /// [`Workspace`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputMismatch`] for geometry mismatches.
    pub fn parameter_gradients_with(
        &self,
        input: &Tensor,
        workspace: &mut Workspace,
    ) -> Result<ParameterGradients> {
        let (trace, _) = self.forward_trace(input, workspace)?;
        let batch = input.shape().dims()[0];
        let grad_logits = Tensor::ones(Shape::d2(batch, self.config.num_classes));
        self.backward(&trace, &grad_logits, workspace)
    }

    /// Per-sample gradients of `sum(logits)` for every sample in the batch.
    ///
    /// This is the quantity the NTK Gram matrix is built from:
    /// `G[i][j] = grads[i] · grads[j]`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputMismatch`] for geometry mismatches.
    pub fn per_sample_gradients(&self, batch: &Tensor) -> Result<Vec<ParameterGradients>> {
        self.per_sample_gradients_with(batch, &mut Workspace::default())
    }

    /// [`CellNetwork::per_sample_gradients`] reusing an explicit scratch
    /// [`Workspace`].
    ///
    /// One workspace serves every per-sample backward pass, so the NTK inner
    /// loop performs no scratch allocation after the first sample.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputMismatch`] for geometry mismatches.
    pub fn per_sample_gradients_with(
        &self,
        batch: &Tensor,
        workspace: &mut Workspace,
    ) -> Result<Vec<ParameterGradients>> {
        self.check_input(batch)?;
        let n = batch.shape().dims()[0];
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let sample = extract_sample(batch, i)?;
            out.push(self.parameter_gradients_with(&sample, workspace)?);
        }
        Ok(out)
    }

    fn backward(
        &self,
        trace: &ForwardTrace,
        grad_logits: &Tensor,
        workspace: &mut Workspace,
    ) -> Result<ParameterGradients> {
        // Classifier.
        let (grad_cls_w, grad_features) = self.classifier.backward(&trace.features, grad_logits)?;
        // Global average pooling.
        let last_x = trace
            .nodes
            .last()
            .map(|nodes| &nodes[NUM_NODES - 1])
            .unwrap_or(&trace.stem_out);
        let mut grad_x = global_avg_pool_backward(&grad_features, last_x.shape())?;

        // Cells in reverse order.
        let mut cell_weight_grads: Vec<Vec<Option<Tensor>>> = Vec::with_capacity(self.cells.len());
        for (cell_instance, nodes) in self.cells.iter().zip(trace.nodes.iter()).rev() {
            let mut node_grads: Vec<Tensor> = nodes
                .iter()
                .map(|n| Tensor::zeros(n.shape().clone()))
                .collect();
            node_grads[NUM_NODES - 1] = grad_x.clone();
            let mut weight_grads: Vec<Option<Tensor>> = vec![None; NUM_EDGES];

            for edge in EdgeId::all().iter().rev() {
                let (src, dst) = edge.endpoints();
                let upstream = node_grads[dst].clone();
                if upstream.l2_norm() == 0.0 {
                    continue;
                }
                match self.cell.edge_ops()[edge.0] {
                    Operation::None => {}
                    Operation::SkipConnect => {
                        node_grads[src]
                            .axpy(1.0, &upstream)
                            .map_err(NnError::from)?;
                    }
                    Operation::AvgPool3x3 => {
                        let g = avg_pool2d_backward(&upstream, nodes[src].shape(), 3, 1, 1)?;
                        node_grads[src].axpy(1.0, &g).map_err(NnError::from)?;
                    }
                    Operation::NorConv1x1 | Operation::NorConv3x3 => {
                        let conv = cell_instance.edge_convs[edge.0]
                            .as_ref()
                            .expect("conv edge always has a layer");
                        let activated = relu(&nodes[src]);
                        let (gw, g_act) = conv.backward_with(&activated, &upstream, workspace)?;
                        weight_grads[edge.0] = Some(gw);
                        let g_src = relu_backward(&nodes[src], &g_act);
                        node_grads[src].axpy(1.0, &g_src).map_err(NnError::from)?;
                    }
                }
            }
            grad_x = node_grads[0].clone();
            cell_weight_grads.push(weight_grads);
        }
        cell_weight_grads.reverse();

        // Stem.
        let (grad_stem_w, _) = self.stem.backward_with(&trace.input, &grad_x, workspace)?;

        // Flatten in canonical parameter order.
        let mut flat = Vec::with_capacity(self.num_parameters());
        flat.extend_from_slice(grad_stem_w.data());
        for (cell_instance, weight_grads) in self.cells.iter().zip(cell_weight_grads.iter()) {
            for (conv, grad) in cell_instance.edge_convs.iter().zip(weight_grads.iter()) {
                if let Some(conv) = conv {
                    match grad {
                        Some(g) => flat.extend_from_slice(g.data()),
                        // A conv edge whose upstream gradient was all zero.
                        None => flat.extend(std::iter::repeat_n(0.0, conv.num_parameters())),
                    }
                }
            }
        }
        flat.extend_from_slice(grad_cls_w.data());
        debug_assert_eq!(flat.len(), self.num_parameters());
        Ok(ParameterGradients::new(flat))
    }
}

/// Extracts sample `i` of an NCHW batch as a batch of one.
fn extract_sample(batch: &Tensor, i: usize) -> Result<Tensor> {
    let d = batch.shape().dims();
    let per_sample = d[1] * d[2] * d[3];
    let start = i * per_sample;
    let data = batch.data()[start..start + per_sample].to_vec();
    Ok(Tensor::from_vec(Shape::nchw(1, d[1], d[2], d[3]), data)?)
}

/// Seed stream reserved for the stem convolution.
const STEM_SEED_STREAM: u64 = 0x57E4_C0DE;

#[cfg(test)]
mod tests {
    use super::*;
    use micronas_searchspace::SearchSpace;
    use micronas_tensor::DeterministicRng;

    fn random_batch(config: &ProxyNetworkConfig, n: usize, seed: u64) -> Tensor {
        let mut rng = DeterministicRng::new(seed);
        let shape = Shape::nchw(
            n,
            config.input_channels,
            config.input_resolution,
            config.input_resolution,
        );
        let data = (0..shape.numel()).map(|_| rng.normal()).collect();
        Tensor::from_vec(shape, data).unwrap()
    }

    fn conv_chain_cell() -> CellTopology {
        // 0 -conv3x3-> 1 -conv1x1-> 2 -conv3x3-> 3 plus a skip 0->3.
        let space = SearchSpace::nas_bench_201();
        let mut cell = space.cell(0).unwrap();
        cell = cell.with_op(EdgeId(0), Operation::NorConv3x3).unwrap();
        cell = cell.with_op(EdgeId(2), Operation::NorConv1x1).unwrap();
        cell = cell.with_op(EdgeId(5), Operation::NorConv3x3).unwrap();
        cell = cell.with_op(EdgeId(3), Operation::SkipConnect).unwrap();
        cell
    }

    #[test]
    fn forward_output_shape() {
        let cell = conv_chain_cell();
        let config = ProxyNetworkConfig::tiny(10);
        let net = CellNetwork::new(&cell, &config, 1).unwrap();
        let batch = random_batch(&config, 3, 2);
        let out = net.forward(&batch).unwrap();
        assert_eq!(out.logits.shape().dims(), &[3, 10]);
        // 3 conv edges per cell, 1 cell.
        assert_eq!(out.pre_activations.len(), 3);
    }

    #[test]
    fn input_geometry_is_validated() {
        let cell = conv_chain_cell();
        let config = ProxyNetworkConfig::tiny(10);
        let net = CellNetwork::new(&cell, &config, 1).unwrap();
        let bad = Tensor::zeros(Shape::nchw(1, 3, 16, 16));
        assert!(net.forward(&bad).is_err());
        let bad_rank = Tensor::zeros(Shape::d2(3, 3));
        assert!(net.forward(&bad_rank).is_err());
    }

    #[test]
    fn parameter_count_matches_layers() {
        let cell = conv_chain_cell();
        let config = ProxyNetworkConfig::tiny(10);
        let net = CellNetwork::new(&cell, &config, 1).unwrap();
        let c = config.channels;
        let expected = config.input_channels * c * 9       // stem
            + c * c * 9                                     // edge 0 conv3x3
            + c * c                                         // edge 2 conv1x1
            + c * c * 9                                     // edge 5 conv3x3
            + c * config.num_classes; // classifier
        assert_eq!(net.num_parameters(), expected);
    }

    #[test]
    fn all_none_cell_still_produces_logits() {
        let space = SearchSpace::nas_bench_201();
        let cell = space.cell(0).unwrap();
        let config = ProxyNetworkConfig::tiny(10);
        let net = CellNetwork::new(&cell, &config, 3).unwrap();
        let batch = random_batch(&config, 2, 4);
        let out = net.forward(&batch).unwrap();
        // No path from input to output: features are zero, so logits are zero.
        assert!(out.logits.data().iter().all(|&v| v == 0.0));
        assert!(out.pre_activations.is_empty());
    }

    #[test]
    fn network_construction_is_deterministic() {
        let cell = conv_chain_cell();
        let config = ProxyNetworkConfig::tiny(10);
        let a = CellNetwork::new(&cell, &config, 7).unwrap();
        let b = CellNetwork::new(&cell, &config, 7).unwrap();
        let batch = random_batch(&config, 2, 5);
        assert_eq!(
            a.forward(&batch).unwrap().logits,
            b.forward(&batch).unwrap().logits
        );
        let c = CellNetwork::new(&cell, &config, 8).unwrap();
        assert_ne!(
            a.forward(&batch).unwrap().logits,
            c.forward(&batch).unwrap().logits
        );
    }

    #[test]
    fn per_sample_gradients_have_parameter_length() {
        let cell = conv_chain_cell();
        let config = ProxyNetworkConfig::tiny(5);
        let net = CellNetwork::new(&cell, &config, 1).unwrap();
        let batch = random_batch(&config, 4, 6);
        let grads = net.per_sample_gradients(&batch).unwrap();
        assert_eq!(grads.len(), 4);
        for g in &grads {
            assert_eq!(g.len(), net.num_parameters());
            assert!(g.norm() > 0.0);
        }
    }

    #[test]
    fn batch_gradient_is_sum_of_per_sample_gradients() {
        let cell = conv_chain_cell();
        let config = ProxyNetworkConfig::tiny(4);
        let net = CellNetwork::new(&cell, &config, 2).unwrap();
        let batch = random_batch(&config, 3, 7);
        let total = net.parameter_gradients(&batch).unwrap();
        let per_sample = net.per_sample_gradients(&batch).unwrap();
        let mut summed = vec![0.0f32; total.len()];
        for g in &per_sample {
            for (s, v) in summed.iter_mut().zip(g.values()) {
                *s += v;
            }
        }
        for (a, b) in total.values().iter().zip(summed.iter()) {
            assert!((a - b).abs() < 1e-3 * (1.0 + b.abs()), "{a} vs {b}");
        }
    }

    /// The decisive correctness check: analytic parameter gradients must agree
    /// with central finite differences of `sum(logits)`.
    #[test]
    fn gradients_match_finite_differences() {
        let cell = conv_chain_cell();
        let mut config = ProxyNetworkConfig::tiny(3);
        config.input_resolution = 6;
        config.channels = 3;
        let net = CellNetwork::new(&cell, &config, 11).unwrap();
        let batch = random_batch(&config, 1, 12);
        let analytic = net.parameter_gradients(&batch).unwrap();

        // Perturb a handful of parameters spread across stem / cell convs / classifier.
        let eps = 1e-2f32;
        let n_params = net.num_parameters();
        let probe_indices = [
            0usize,
            n_params / 5,
            n_params / 2,
            (3 * n_params) / 4,
            n_params - 1,
        ];
        for &flat_idx in &probe_indices {
            let mut plus_net = net.clone();
            let mut minus_net = net.clone();
            perturb_parameter(&mut plus_net, flat_idx, eps);
            perturb_parameter(&mut minus_net, flat_idx, -eps);
            let plus = plus_net.forward(&batch).unwrap().logits.sum();
            let minus = minus_net.forward(&batch).unwrap().logits.sum();
            let numeric = (plus - minus) / (2.0 * eps);
            let a = analytic.values()[flat_idx];
            assert!(
                (numeric - a).abs() < 3e-2 * (1.0 + a.abs().max(numeric.abs())),
                "param {flat_idx}: numeric {numeric} vs analytic {a}"
            );
        }
    }

    /// Adds `delta` to the parameter at flat index `idx` (canonical order).
    fn perturb_parameter(net: &mut CellNetwork, idx: usize, delta: f32) {
        let mut offset = 0usize;
        {
            let stem = net.stem.weight_mut();
            if idx < offset + stem.numel() {
                stem.data_mut()[idx - offset] += delta;
                return;
            }
            offset += stem.numel();
        }
        for cell in &mut net.cells {
            for conv in cell.edge_convs.iter_mut().flatten() {
                let w = conv.weight_mut();
                if idx < offset + w.numel() {
                    w.data_mut()[idx - offset] += delta;
                    return;
                }
                offset += w.numel();
            }
        }
        // Classifier: LinearLayer has no weight_mut; rebuild via unsafe-free trick.
        let cls_len = net.classifier.num_parameters();
        assert!(idx < offset + cls_len, "index out of range");
        let mut w = net.classifier.weight().clone();
        w.data_mut()[idx - offset] += delta;
        net.classifier = rebuild_linear(&net.classifier, w);
    }

    fn rebuild_linear(_old: &LinearLayer, weight: Tensor) -> LinearLayer {
        LinearLayer::from_weight(weight)
    }
}
