//! The proxy cell network: stem → stacked searched cells → pooling → classifier.

use crate::{
    ConvLayer, LinearLayer, NnError, ParameterGradients, PerSampleGradients, ProxyNetworkConfig,
    Result,
};
use micronas_graph::Compiler;
use micronas_searchspace::{CellTopology, EdgeId, Operation, NUM_EDGES, NUM_NODES};
use micronas_tensor::{
    avg_pool2d, global_avg_pool, global_avg_pool_backward, hash_mix,
    ops::{relu, relu_backward},
    paper_default_backend, KernelBackend, PackedGradSlot, Shape, Tensor, Workspace,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Result of a forward pass through a [`CellNetwork`].
#[derive(Debug, Clone)]
pub struct ForwardOutput {
    /// Classifier logits, shape `[N, num_classes]`.
    pub logits: Tensor,
    /// Pre-ReLU node activations feeding each convolution edge, in
    /// (cell, edge) order. Their sign patterns define the linear region a
    /// sample falls into.
    pub pre_activations: Vec<Tensor>,
}

/// One stacked instance of the searched cell: a convolution layer for every
/// parameterised edge.
#[derive(Debug, Clone)]
pub(crate) struct CellInstance {
    pub(crate) edge_convs: Vec<Option<ConvLayer>>,
}

/// Intermediate tensors of a forward pass, retained for backpropagation.
#[derive(Debug, Clone)]
struct ForwardTrace {
    /// Network input.
    input: Tensor,
    /// Output of the stem convolution (input to the first cell).
    stem_out: Tensor,
    /// Node values for every cell: `nodes[cell][node]`.
    nodes: Vec<Vec<Tensor>>,
    /// Input to the classifier (after global average pooling), `[N, C]`.
    features: Tensor,
    /// Classifier logits.
    logits: Tensor,
}

/// A concrete, randomly initialised network built from one searched cell.
///
/// The macro structure mirrors NAS-Bench-201 at reduced scale: a 3×3 stem
/// convolution, `num_cells` stacked copies of the cell at constant channel
/// width, global average pooling and a linear classifier. See
/// [`ProxyNetworkConfig`] for the geometry knobs.
///
/// # Execution backends
///
/// Every kernel the network runs — convolution forward/backward, pooling,
/// the classifier GEMMs — dispatches through the network's
/// [`KernelBackend`] ([`CellNetwork::with_backend`]; the plain constructor
/// uses the shared paper-default backend, which is bitwise-identical to the
/// pre-backend pipeline). The *weights* never depend on the backend: only
/// execution arithmetic does. Exceptions, by design: the looped reference
/// formulation ([`CellNetwork::per_sample_gradients_looped_with`]) keeps its
/// historical free-function forward trace (it is the pinned PR 3 baseline
/// the batched path is property-tested and benchmarked against), and the
/// tiny `global_avg_pool` reduction is shared by all backends.
#[derive(Debug, Clone)]
pub struct CellNetwork {
    pub(crate) cell: CellTopology,
    pub(crate) config: ProxyNetworkConfig,
    pub(crate) stem: ConvLayer,
    pub(crate) cells: Vec<CellInstance>,
    pub(crate) classifier: LinearLayer,
    backend: Arc<dyn KernelBackend>,
    /// When set, `forward_with` and the batched per-sample gradient path
    /// execute through a compiled kernel-graph plan instead of the eager
    /// kernel sequence. `None` (the default) is the eager path.
    compiler: Option<Arc<dyn Compiler>>,
}

impl CellNetwork {
    /// Builds and randomly initialises the network for `cell` on the
    /// paper-default execution backend.
    ///
    /// The `seed` controls every weight tensor; two networks built with the
    /// same `(cell, config, seed)` triple are identical.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if the configuration is invalid.
    pub fn new(cell: &CellTopology, config: &ProxyNetworkConfig, seed: u64) -> Result<Self> {
        Self::with_backend(cell, config, seed, paper_default_backend())
    }

    /// [`CellNetwork::new`] on an explicit execution backend. Weights are
    /// identical for every backend; only the kernel arithmetic differs.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if the configuration is invalid.
    pub fn with_backend(
        cell: &CellTopology,
        config: &ProxyNetworkConfig,
        seed: u64,
        backend: Arc<dyn KernelBackend>,
    ) -> Result<Self> {
        config.validate()?;
        let stem = ConvLayer::new(
            config.input_channels,
            config.channels,
            3,
            1,
            1,
            config.init,
            hash_mix(seed, STEM_SEED_STREAM),
        );
        let mut cells = Vec::with_capacity(config.num_cells);
        for cell_idx in 0..config.num_cells {
            let mut edge_convs = Vec::with_capacity(NUM_EDGES);
            for edge in 0..NUM_EDGES {
                let op = cell.edge_ops()[edge];
                let conv = match op {
                    Operation::NorConv1x1 => Some(ConvLayer::new(
                        config.channels,
                        config.channels,
                        1,
                        1,
                        0,
                        config.init,
                        hash_mix(seed, (cell_idx * NUM_EDGES + edge) as u64 + 1),
                    )),
                    Operation::NorConv3x3 => Some(ConvLayer::new(
                        config.channels,
                        config.channels,
                        3,
                        1,
                        1,
                        config.init,
                        hash_mix(seed, (cell_idx * NUM_EDGES + edge) as u64 + 1),
                    )),
                    _ => None,
                };
                edge_convs.push(conv);
            }
            cells.push(CellInstance { edge_convs });
        }
        let classifier = LinearLayer::new(
            config.channels,
            config.num_classes,
            config.init,
            hash_mix(seed, 0xC1A5_51F1),
        );
        Ok(Self {
            cell: *cell,
            config: *config,
            stem,
            cells,
            classifier,
            backend,
            compiler: None,
        })
    }

    /// Routes the forward and batched per-sample gradient passes through a
    /// compiled kernel-graph plan built by `compiler` (the weights and the
    /// execution backend are unchanged — only the execution strategy is).
    /// Plans are cached per `(topology, geometry, batch, compiler)` across
    /// the process, so repeated evaluations compile once.
    #[must_use]
    pub fn with_compiler(mut self, compiler: Arc<dyn Compiler>) -> Self {
        self.compiler = Some(compiler);
        self
    }

    /// The graph compiler this network executes through, if any (`None`
    /// means the eager kernel path).
    pub fn compiler(&self) -> Option<&Arc<dyn Compiler>> {
        self.compiler.as_ref()
    }

    /// Lowers this network's forward pass at batch size `n` to a kernel
    /// graph (the IR the graph pipeline compiles; see
    /// [`CellNetwork::with_compiler`]). With `collect_pre` set, the graph
    /// additionally exposes the pre-ReLU conv inputs as `pre{i}` outputs,
    /// as the linear-region proxy consumes them. Useful for inspection and
    /// debug dumps ([`micronas_graph::Graph::to_dot`]).
    pub fn lower_forward(&self, n: usize, collect_pre: bool) -> micronas_graph::Graph {
        crate::plan::lower(self, n, crate::plan::PlanMode::Forward { collect_pre })
    }

    /// Lowers this network's batched per-sample gradient sweep at batch
    /// size `n` to a kernel graph producing the `[n, P]` `matrix` output.
    pub fn lower_per_sample_grad(&self, n: usize) -> micronas_graph::Graph {
        crate::plan::lower(self, n, crate::plan::PlanMode::PerSampleGrad)
    }

    /// The searched cell this network instantiates.
    pub fn cell(&self) -> &CellTopology {
        &self.cell
    }

    /// The execution backend this network dispatches its kernels through.
    pub fn backend(&self) -> &Arc<dyn KernelBackend> {
        &self.backend
    }

    /// The network configuration.
    pub fn config(&self) -> &ProxyNetworkConfig {
        &self.config
    }

    /// Total number of trainable parameters.
    pub fn num_parameters(&self) -> usize {
        let mut n = self.stem.num_parameters();
        for cell in &self.cells {
            for conv in cell.edge_convs.iter().flatten() {
                n += conv.num_parameters();
            }
        }
        n + self.classifier.num_parameters()
    }

    /// Every trainable parameter flattened into one vector, in the same
    /// canonical order the gradient paths use (stem, cells in order with
    /// conv edges in edge order, classifier) — so
    /// `flattened_parameters()[i]` pairs with `parameter_gradients()[i]`.
    /// Saliency-style proxies (e.g. SynFlow) consume this pairing.
    pub fn flattened_parameters(&self) -> Vec<f32> {
        let mut flat = Vec::with_capacity(self.num_parameters());
        flat.extend_from_slice(self.stem.weight().data());
        for cell in &self.cells {
            for conv in cell.edge_convs.iter().flatten() {
                flat.extend_from_slice(conv.weight().data());
            }
        }
        flat.extend_from_slice(self.classifier.weight().data());
        debug_assert_eq!(flat.len(), self.num_parameters());
        flat
    }

    fn check_input(&self, input: &Tensor) -> Result<()> {
        let d = input.shape().dims();
        let r = self.config.input_resolution;
        if d.len() != 4 || d[1] != self.config.input_channels || d[2] != r || d[3] != r {
            return Err(NnError::InputMismatch {
                expected: [0, self.config.input_channels, r, r],
                actual: d.to_vec(),
            });
        }
        Ok(())
    }

    /// Runs the forward pass, retaining every node activation for the
    /// backward pass. All large intermediates come from the workspace
    /// recycling pool; pair with [`recycle_trace`] so steady-state
    /// evaluation performs no allocation. `collect_pre_activations` controls
    /// whether the pre-ReLU conv inputs are copied out (the linear-region
    /// proxy needs them, the gradient paths do not).
    fn forward_trace(
        &self,
        input: &Tensor,
        workspace: &mut Workspace,
        collect_pre_activations: bool,
    ) -> Result<(ForwardTrace, Vec<Tensor>)> {
        self.check_input(input)?;
        let backend = &*self.backend;
        let stem_out = {
            let _span = micronas_telemetry::span!("nn.stem_forward");
            self.stem.forward_on(backend, input, workspace)?
        };
        let _edges_span = micronas_telemetry::span!("nn.edge_forward");
        let mut pre_activations = Vec::new();
        let mut nodes_per_cell = Vec::with_capacity(self.cells.len());
        let mut x = pooled_copy(&stem_out, workspace);
        for cell in &self.cells {
            let mut nodes: Vec<Tensor> = Vec::with_capacity(NUM_NODES);
            nodes.push(x);
            for dst in 1..NUM_NODES {
                let mut acc = pooled_zeros(nodes[0].shape().clone(), workspace);
                for edge in EdgeId::all() {
                    let (src, d) = edge.endpoints();
                    if d != dst {
                        continue;
                    }
                    let op = self.cell.edge_ops()[edge.0];
                    match op {
                        Operation::None => {}
                        Operation::SkipConnect => {
                            acc.axpy(1.0, &nodes[src]).map_err(NnError::from)?;
                        }
                        Operation::AvgPool3x3 => {
                            let c = backend.avg_pool2d(&nodes[src], 3, 1, 1, workspace)?;
                            acc.axpy(1.0, &c).map_err(NnError::from)?;
                            workspace.recycle(c.into_vec());
                        }
                        Operation::NorConv1x1 | Operation::NorConv3x3 => {
                            let conv = cell.edge_convs[edge.0]
                                .as_ref()
                                .expect("conv edge always has a layer");
                            if collect_pre_activations {
                                pre_activations.push(nodes[src].clone());
                            }
                            let activated = pooled_relu(&nodes[src], workspace);
                            let c = conv.forward_on(backend, &activated, workspace)?;
                            workspace.recycle(activated.into_vec());
                            acc.axpy(1.0, &c).map_err(NnError::from)?;
                            workspace.recycle(c.into_vec());
                        }
                    }
                }
                nodes.push(acc);
            }
            x = pooled_copy(&nodes[NUM_NODES - 1], workspace);
            nodes_per_cell.push(nodes);
        }
        drop(_edges_span);
        let features = global_avg_pool(&x)?;
        workspace.recycle(x.into_vec());
        let logits = self.classifier.forward_on(backend, &features)?;
        let trace = ForwardTrace {
            input: pooled_copy(input, workspace),
            stem_out,
            nodes: nodes_per_cell,
            features,
            logits,
        };
        Ok((trace, pre_activations))
    }

    /// Runs the network on a batch of inputs.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputMismatch`] if the input geometry does not
    /// match the configuration.
    pub fn forward(&self, input: &Tensor) -> Result<ForwardOutput> {
        self.forward_with(input, &mut Workspace::default())
    }

    /// [`CellNetwork::forward`] reusing an explicit scratch [`Workspace`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputMismatch`] if the input geometry does not
    /// match the configuration.
    pub fn forward_with(&self, input: &Tensor, workspace: &mut Workspace) -> Result<ForwardOutput> {
        if let Some(compiler) = &self.compiler {
            self.check_input(input)?;
            return crate::plan::forward_graph(self, input, workspace, compiler);
        }
        let (trace, pre_activations) = self.forward_trace(input, workspace, true)?;
        let logits = trace.logits.clone();
        recycle_trace(trace, workspace);
        Ok(ForwardOutput {
            logits,
            pre_activations,
        })
    }

    /// Gradient of `sum(logits)` with respect to every parameter, for a batch.
    ///
    /// The returned vector follows the fixed parameter order (stem, cells in
    /// order with edges in canonical order, classifier), matching
    /// [`CellNetwork::num_parameters`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputMismatch`] for geometry mismatches.
    pub fn parameter_gradients(&self, input: &Tensor) -> Result<ParameterGradients> {
        self.parameter_gradients_with(input, &mut Workspace::default())
    }

    /// [`CellNetwork::parameter_gradients`] reusing an explicit scratch
    /// [`Workspace`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputMismatch`] for geometry mismatches.
    pub fn parameter_gradients_with(
        &self,
        input: &Tensor,
        workspace: &mut Workspace,
    ) -> Result<ParameterGradients> {
        let (trace, _) = self.forward_trace(input, workspace, false)?;
        let batch = input.shape().dims()[0];
        let grad_logits = Tensor::ones(Shape::d2(batch, self.config.num_classes));
        let grads = self.backward(&trace, &grad_logits, workspace)?;
        recycle_trace(trace, workspace);
        Ok(grads)
    }

    /// Per-sample gradients of `sum(logits)` for every sample in the batch.
    ///
    /// This is the quantity the NTK Gram matrix is built from:
    /// `G[i][j] = grads[i] · grads[j]`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputMismatch`] for geometry mismatches.
    pub fn per_sample_gradients(&self, batch: &Tensor) -> Result<Vec<ParameterGradients>> {
        self.per_sample_gradients_with(batch, &mut Workspace::default())
    }

    /// [`CellNetwork::per_sample_gradients`] reusing an explicit scratch
    /// [`Workspace`]; computed by the batched formulation
    /// ([`CellNetwork::per_sample_gradient_matrix_with`]) and split into one
    /// vector per sample.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputMismatch`] for geometry mismatches.
    pub fn per_sample_gradients_with(
        &self,
        batch: &Tensor,
        workspace: &mut Workspace,
    ) -> Result<Vec<ParameterGradients>> {
        Ok(self
            .per_sample_gradient_matrix_with(batch, workspace)?
            .to_parameter_gradients())
    }

    /// Per-sample gradients of `sum(logits)` as one contiguous row-major
    /// `[n, P]` matrix, computed by the **batched** formulation: a single
    /// forward pass over the whole batch, then a single backward sweep in
    /// which every convolution edge emits all `n` per-sample weight
    /// gradients from one shared im2col lowering
    /// ([`micronas_tensor::conv2d_backward_weight_per_sample_into`], routed
    /// through the network's backend) straight into the matrix.
    ///
    /// Compared to the looped formulation
    /// ([`CellNetwork::per_sample_gradients_looped_with`]) this runs one
    /// trace instead of `n`, shares every node-gradient tensor across the
    /// batch, and leaves the per-sample gradients in the exact layout the
    /// NTK Gram GEMM (`G = J·Jᵀ`) consumes.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputMismatch`] for geometry mismatches.
    pub fn per_sample_gradient_matrix_with(
        &self,
        batch: &Tensor,
        workspace: &mut Workspace,
    ) -> Result<PerSampleGradients> {
        if let Some(compiler) = &self.compiler {
            self.check_input(batch)?;
            return crate::plan::per_sample_gradient_matrix_graph(self, batch, workspace, compiler);
        }
        let (trace, _) = self.forward_trace(batch, workspace, false)?;
        let n = batch.shape().dims()[0];
        let p = self.num_parameters();
        // The matrix buffer comes from the recycling pool: at batch 32 it is
        // past the allocator's mmap threshold, so a fresh allocation per
        // evaluation would cost page faults. Callers hand it back via
        // `PerSampleGradients::into_values` + `Workspace::recycle`.
        let mut matrix = workspace.take_zeroed(n * p);
        self.backward_per_sample_into(&trace, workspace, &mut matrix)?;
        recycle_trace(trace, workspace);
        Ok(PerSampleGradients::new(n, p, matrix))
    }

    /// The pre-batching reference implementation of per-sample gradients:
    /// one full forward/backward pass per sample, with the reference
    /// (allocation-per-tensor) trace. Kept verbatim as the oracle the
    /// batched formulation is property-tested against, and as the baseline
    /// side of the `ntk_engine` benchmark — it *is* the path the proxy
    /// engine ran before batching, so the benchmark's speedup is measured
    /// against the real predecessor, not a strawman.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputMismatch`] for geometry mismatches.
    pub fn per_sample_gradients_looped_with(
        &self,
        batch: &Tensor,
        workspace: &mut Workspace,
    ) -> Result<Vec<ParameterGradients>> {
        self.check_input(batch)?;
        let n = batch.shape().dims()[0];
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let sample = extract_sample(batch, i)?;
            let (trace, _) = self.forward_trace_reference(&sample, workspace)?;
            let grad_logits = Tensor::ones(Shape::d2(1, self.config.num_classes));
            out.push(self.backward(&trace, &grad_logits, workspace)?);
        }
        Ok(out)
    }

    /// The reference forward trace: plain per-tensor allocation, no buffer
    /// recycling. Byte-for-byte the trace the engine ran before the batched
    /// rework; produces values identical to [`CellNetwork::forward_trace`].
    fn forward_trace_reference(
        &self,
        input: &Tensor,
        workspace: &mut Workspace,
    ) -> Result<(ForwardTrace, Vec<Tensor>)> {
        self.check_input(input)?;
        let stem_out = self.stem.forward_with(input, workspace)?;
        let mut pre_activations = Vec::new();
        let mut nodes_per_cell = Vec::with_capacity(self.cells.len());
        let mut x = stem_out.clone();
        for cell in &self.cells {
            let mut nodes: Vec<Tensor> = Vec::with_capacity(NUM_NODES);
            nodes.push(x.clone());
            for dst in 1..NUM_NODES {
                let mut acc = Tensor::zeros(x.shape().clone());
                for edge in EdgeId::all() {
                    let (src, d) = edge.endpoints();
                    if d != dst {
                        continue;
                    }
                    let op = self.cell.edge_ops()[edge.0];
                    let contribution = match op {
                        Operation::None => None,
                        Operation::SkipConnect => Some(nodes[src].clone()),
                        Operation::AvgPool3x3 => Some(avg_pool2d(&nodes[src], 3, 1, 1)?),
                        Operation::NorConv1x1 | Operation::NorConv3x3 => {
                            let conv = cell.edge_convs[edge.0]
                                .as_ref()
                                .expect("conv edge always has a layer");
                            pre_activations.push(nodes[src].clone());
                            let activated = relu(&nodes[src]);
                            Some(conv.forward_with(&activated, workspace)?)
                        }
                    };
                    if let Some(c) = contribution {
                        acc.axpy(1.0, &c).map_err(NnError::from)?;
                    }
                }
                nodes.push(acc);
            }
            x = nodes[NUM_NODES - 1].clone();
            nodes_per_cell.push(nodes);
        }
        let features = global_avg_pool(&x)?;
        let logits = self.classifier.forward(&features)?;
        let trace = ForwardTrace {
            input: input.clone(),
            stem_out,
            nodes: nodes_per_cell,
            features,
            logits,
        };
        Ok((trace, pre_activations))
    }

    /// Parameter offset of each cell's conv edges in the canonical flattened
    /// order (stem, cells in order with edges in canonical order,
    /// classifier). Non-conv edges get `usize::MAX`. Returns the table and
    /// the classifier offset.
    pub(crate) fn edge_parameter_offsets(&self) -> (Vec<[usize; NUM_EDGES]>, usize) {
        let mut offset = self.stem.num_parameters();
        let mut table = Vec::with_capacity(self.cells.len());
        for cell in &self.cells {
            let mut row = [usize::MAX; NUM_EDGES];
            for (e, conv) in cell.edge_convs.iter().enumerate() {
                if let Some(conv) = conv {
                    row[e] = offset;
                    offset += conv.num_parameters();
                }
            }
            table.push(row);
        }
        (table, offset)
    }

    /// Batched backward pass of `sum(logits)` writing per-sample parameter
    /// gradients into the row-major `[n, P]` `matrix` (pre-zeroed).
    ///
    /// Node gradients flow exactly as in [`CellNetwork::backward`] — samples
    /// are independent through every convolution, pooling and element-wise
    /// op, so one batch-level sweep produces each sample's node gradients
    /// bit-for-bit as `n` separate backward passes would — but at every
    /// parameterised layer the weight gradient is *not* summed over the
    /// batch: each sample's contribution lands in its own row.
    fn backward_per_sample_into(
        &self,
        trace: &ForwardTrace,
        workspace: &mut Workspace,
        matrix: &mut [f32],
    ) -> Result<()> {
        let _span = micronas_telemetry::span!("nn.backward");
        let backend = &*self.backend;
        let n = trace.input.shape().dims()[0];
        let p = self.num_parameters();
        debug_assert_eq!(matrix.len(), n * p);
        let (edge_offsets, classifier_offset) = self.edge_parameter_offsets();
        let num_classes = self.config.num_classes;
        let channels = self.config.channels;

        // Classifier, per sample: with L = sum(logits), dL/dW[o][i] for
        // sample b is grad_logits[b][o] · features[b][i] — a pure outer
        // product, so each row is written directly.
        let features = trace.features.data();
        for b in 0..n {
            let row = &mut matrix[b * p + classifier_offset..(b * p) + p];
            for o in 0..num_classes {
                for i in 0..channels {
                    row[o * channels + i] = features[b * channels + i];
                }
            }
        }

        // Gradient w.r.t. the features: grad_logits · W with grad_logits
        // all-ones, batched over samples (rows are independent).
        let mut grad_features = Tensor::zeros(Shape::d2(n, channels));
        let ones = vec![1.0f32; n * num_classes];
        backend.gemm_nn(
            n,
            num_classes,
            channels,
            &ones,
            self.classifier.weight().data(),
            grad_features.data_mut(),
            false,
        );

        // Global average pooling, into a pooled buffer (the batch-level
        // gradient tensor is large enough that a fresh allocation per
        // backward costs an mmap): every plane of the input gradient is the
        // corresponding feature gradient spread uniformly — the same values
        // `global_avg_pool_backward` produces.
        let last_x = trace
            .nodes
            .last()
            .map(|nodes| &nodes[NUM_NODES - 1])
            .unwrap_or(&trace.stem_out);
        let hw: usize = last_x.shape().dims()[2] * last_x.shape().dims()[3];
        let mut grad_x = {
            let mut buf = workspace.take(last_x.numel());
            for (&g, plane) in grad_features.data().iter().zip(buf.chunks_exact_mut(hw)) {
                plane.fill(g / hw as f32);
            }
            Tensor::from_vec(last_x.shape().clone(), buf).expect("length matches shape")
        };

        // Cells in reverse order.
        for (cell_idx, (cell_instance, nodes)) in
            self.cells.iter().zip(trace.nodes.iter()).enumerate().rev()
        {
            let mut node_grads: Vec<Tensor> = nodes[..NUM_NODES - 1]
                .iter()
                .map(|nd| pooled_zeros(nd.shape().clone(), workspace))
                .collect();
            node_grads.push(grad_x);
            // A node gradient is structurally zero until an edge accumulates
            // into it; tracking that with a flag skips dead subgraphs without
            // the full-tensor norm pass the looped reference pays per edge.
            // (An accumulated-but-numerically-zero gradient is processed; it
            // contributes zeros, identical to skipping.)
            let mut touched = [false; NUM_NODES];
            touched[NUM_NODES - 1] = true;

            for edge in EdgeId::all().iter().rev() {
                let (src, dst) = edge.endpoints();
                if !touched[dst] {
                    continue;
                }
                // Source nodes always precede destination nodes, so a split
                // borrows the upstream gradient while the source accumulates.
                let (lower, upper) = node_grads.split_at_mut(dst);
                let upstream = &upper[0];
                match self.cell.edge_ops()[edge.0] {
                    Operation::None => {}
                    Operation::SkipConnect => {
                        lower[src].axpy(1.0, upstream).map_err(NnError::from)?;
                        touched[src] = true;
                    }
                    Operation::AvgPool3x3 => {
                        let g = backend.avg_pool2d_backward(
                            upstream,
                            nodes[src].shape(),
                            3,
                            1,
                            1,
                            workspace,
                        )?;
                        lower[src].axpy(1.0, &g).map_err(NnError::from)?;
                        workspace.recycle(g.into_vec());
                        touched[src] = true;
                    }
                    Operation::NorConv1x1 | Operation::NorConv3x3 => {
                        let conv = cell_instance.edge_convs[edge.0]
                            .as_ref()
                            .expect("conv edge always has a layer");
                        let activated = pooled_relu(&nodes[src], workspace);
                        backend.conv2d_backward_weight_per_sample_into(
                            &activated,
                            upstream,
                            conv.out_channels(),
                            conv.spec(),
                            workspace,
                            matrix,
                            p,
                            edge_offsets[cell_idx][edge.0],
                        )?;
                        let mut g_src = backend.conv2d_backward_input(
                            conv.weight(),
                            upstream,
                            activated.shape(),
                            conv.spec(),
                            workspace,
                        )?;
                        workspace.recycle(activated.into_vec());
                        // ReLU backward, in place on the input gradient.
                        for (g, &x) in g_src.data_mut().iter_mut().zip(nodes[src].data()) {
                            if x <= 0.0 {
                                *g = 0.0;
                            }
                        }
                        lower[src].axpy(1.0, &g_src).map_err(NnError::from)?;
                        workspace.recycle(g_src.into_vec());
                        touched[src] = true;
                    }
                }
            }
            let mut drain = node_grads.into_iter();
            grad_x = drain.next().expect("node 0 gradient");
            for t in drain {
                workspace.recycle(t.into_vec());
            }
        }

        // Stem, per sample.
        backend.conv2d_backward_weight_per_sample_into(
            &trace.input,
            &grad_x,
            self.stem.out_channels(),
            self.stem.spec(),
            workspace,
            matrix,
            p,
            0,
        )?;
        workspace.recycle(grad_x.into_vec());
        Ok(())
    }

    fn backward(
        &self,
        trace: &ForwardTrace,
        grad_logits: &Tensor,
        workspace: &mut Workspace,
    ) -> Result<ParameterGradients> {
        let backend = &*self.backend;
        // Classifier.
        let (grad_cls_w, grad_features) =
            self.classifier
                .backward_on(backend, &trace.features, grad_logits)?;
        // Global average pooling.
        let last_x = trace
            .nodes
            .last()
            .map(|nodes| &nodes[NUM_NODES - 1])
            .unwrap_or(&trace.stem_out);
        let mut grad_x = global_avg_pool_backward(&grad_features, last_x.shape())?;

        // Cells in reverse order.
        let mut cell_weight_grads: Vec<Vec<Option<Tensor>>> = Vec::with_capacity(self.cells.len());
        for (cell_instance, nodes) in self.cells.iter().zip(trace.nodes.iter()).rev() {
            let mut node_grads: Vec<Tensor> = nodes
                .iter()
                .map(|n| Tensor::zeros(n.shape().clone()))
                .collect();
            node_grads[NUM_NODES - 1] = grad_x.clone();
            let mut weight_grads: Vec<Option<Tensor>> = vec![None; NUM_EDGES];

            for edge in EdgeId::all().iter().rev() {
                let (src, dst) = edge.endpoints();
                let upstream = node_grads[dst].clone();
                if upstream.l2_norm() == 0.0 {
                    continue;
                }
                match self.cell.edge_ops()[edge.0] {
                    Operation::None => {}
                    Operation::SkipConnect => {
                        node_grads[src]
                            .axpy(1.0, &upstream)
                            .map_err(NnError::from)?;
                    }
                    Operation::AvgPool3x3 => {
                        let g = backend.avg_pool2d_backward(
                            &upstream,
                            nodes[src].shape(),
                            3,
                            1,
                            1,
                            workspace,
                        )?;
                        node_grads[src].axpy(1.0, &g).map_err(NnError::from)?;
                    }
                    Operation::NorConv1x1 | Operation::NorConv3x3 => {
                        let conv = cell_instance.edge_convs[edge.0]
                            .as_ref()
                            .expect("conv edge always has a layer");
                        let activated = relu(&nodes[src]);
                        let (gw, g_act) =
                            conv.backward_on(backend, &activated, &upstream, workspace)?;
                        weight_grads[edge.0] = Some(gw);
                        let g_src = relu_backward(&nodes[src], &g_act);
                        node_grads[src].axpy(1.0, &g_src).map_err(NnError::from)?;
                    }
                }
            }
            grad_x = node_grads[0].clone();
            cell_weight_grads.push(weight_grads);
        }
        cell_weight_grads.reverse();

        // Stem.
        let (grad_stem_w, _) = self
            .stem
            .backward_on(backend, &trace.input, &grad_x, workspace)?;

        // Flatten in canonical parameter order.
        let mut flat = Vec::with_capacity(self.num_parameters());
        flat.extend_from_slice(grad_stem_w.data());
        for (cell_instance, weight_grads) in self.cells.iter().zip(cell_weight_grads.iter()) {
            for (conv, grad) in cell_instance.edge_convs.iter().zip(weight_grads.iter()) {
                if let Some(conv) = conv {
                    match grad {
                        Some(g) => flat.extend_from_slice(g.data()),
                        // A conv edge whose upstream gradient was all zero.
                        None => flat.extend(std::iter::repeat_n(0.0, conv.num_parameters())),
                    }
                }
            }
        }
        flat.extend_from_slice(grad_cls_w.data());
        debug_assert_eq!(flat.len(), self.num_parameters());
        Ok(ParameterGradients::new(flat))
    }
}

/// A forward trace plus the collected pre-ReLU conv inputs of one pack member.
type TraceAndPreActivations = (ForwardTrace, Vec<Tensor>);

/// A pack of [`CellNetwork`]s over *different* cells that share one
/// `(config, seed, backend)` triple and execute their forward passes in
/// lockstep, so every convolution edge whose geometry coincides across
/// candidates runs as **one** packed GEMM dispatch
/// ([`micronas_tensor::KernelBackend::conv2d_forward_packed`]).
///
/// This is the network-level substrate of cross-candidate mega-batching:
/// the zero-cost proxies evaluate many candidate cells against the *same*
/// probe batch at the *same* seed, which makes three sharing opportunities
/// exact rather than approximate:
///
/// * **Weights coincide.** The seed streams are position-keyed
///   (`hash_mix(seed, cell_idx · NUM_EDGES + edge + 1)`), so every pack
///   member that places a convolution of the same kernel size on the same
///   edge holds a bitwise-identical weight tensor — one weight matrix
///   serves the whole bucket's packed GEMM.
/// * **The stem is shared computation.** All members have identical stems
///   and see the identical input, so the stem convolution — usually the
///   widest GEMM in a sparse cell — runs once per pack instead of once per
///   candidate; each trace receives a bitwise copy.
/// * **Same-geometry edges merge.** Per (cell, edge), members are
///   partitioned by operation and conv members bucketed by kernel size;
///   each bucket's ReLU-activated inputs go through a single packed
///   im2col + GEMM dispatch that is bitwise-identical to per-candidate
///   dispatch
///   (the packed kernel falls back to the solo path whenever merging could
///   change the GEMM schedule).
///
/// Backward passes merge too: [`CellNetworkPack::per_sample_gradient_matrices_with`]
/// runs one lockstep backward sweep over the whole pack, bucketing conv
/// edges exactly as the forward does and dispatching each bucket through
/// the packed backward seam
/// ([`micronas_tensor::KernelBackend::conv2d_backward_weight_per_sample_packed`]
/// and its input-gradient companion). The per-sample weight-gradient GEMMs
/// keep per-candidate operands, so the packed kernels *iterate* the exact
/// solo per-candidate schedule inside one call — what they amortise is the
/// im2col lowering of bitwise-identical probe activations (every member's
/// stem backward consumes the same input batch, lowered once per pack) and
/// kernel dispatch overhead, not the GEMM shapes. Per-member accumulation
/// order is untouched. Identical pack members collapse further: same
/// topology plus same seed means bitwise-equal weights and traces, so the
/// sweep runs once per *distinct* topology and copies duplicates' matrices
/// from their representative — byte-for-byte what each duplicate's own
/// sweep would have produced. Everything the pack returns is **bitwise
/// identical** to evaluating each member through its own [`CellNetwork`]
/// entry points.
#[derive(Debug, Clone)]
pub struct CellNetworkPack {
    networks: Vec<CellNetwork>,
    /// Routes the per-sample gradient sweep through the packed backward
    /// kernels (`true`, default) or the per-member solo loop (`false`).
    /// Both paths are bitwise-identical; the toggle exists so benches can
    /// measure forward-only packing as a baseline.
    packed_backward: bool,
}

impl CellNetworkPack {
    /// Builds one network per cell on the paper-default backend, all from
    /// the same `(config, seed)` — exactly the networks solo evaluation of
    /// each cell would build.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if the configuration is invalid.
    pub fn new(cells: &[CellTopology], config: &ProxyNetworkConfig, seed: u64) -> Result<Self> {
        Self::with_backend(cells, config, seed, paper_default_backend())
    }

    /// [`CellNetworkPack::new`] on an explicit execution backend.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if the configuration is invalid.
    pub fn with_backend(
        cells: &[CellTopology],
        config: &ProxyNetworkConfig,
        seed: u64,
        backend: Arc<dyn KernelBackend>,
    ) -> Result<Self> {
        let networks = cells
            .iter()
            .map(|cell| CellNetwork::with_backend(cell, config, seed, Arc::clone(&backend)))
            .collect::<Result<Vec<_>>>()?;
        Ok(Self {
            networks,
            packed_backward: true,
        })
    }

    /// Enables or disables the packed backward sweep (enabled by default).
    ///
    /// Disabling falls back to one solo backward per member on its
    /// pack-produced trace — the forward-only packing behaviour — without
    /// changing any returned value: both paths are bitwise-identical, so
    /// this knob is purely a performance baseline for benchmarks.
    #[must_use]
    pub fn with_packed_backward(mut self, packed_backward: bool) -> Self {
        self.packed_backward = packed_backward;
        self
    }

    /// Routes every member's graph-capable entry points through `compiler`
    /// (see [`CellNetwork::with_compiler`]). Under a compiler the pack
    /// evaluates its members through their solo compiled plans — the packed
    /// eager fast path is definitionally bitwise-equal to solo evaluation,
    /// so the pack contract is unchanged.
    #[must_use]
    pub fn with_compiler(mut self, compiler: Arc<dyn Compiler>) -> Self {
        self.networks = self
            .networks
            .into_iter()
            .map(|n| n.with_compiler(Arc::clone(&compiler)))
            .collect();
        self
    }

    /// The pack members, in construction order.
    pub fn networks(&self) -> &[CellNetwork] {
        &self.networks
    }

    /// Number of pack members.
    pub fn len(&self) -> usize {
        self.networks.len()
    }

    /// Whether the pack is empty.
    pub fn is_empty(&self) -> bool {
        self.networks.is_empty()
    }

    /// The lockstep pack forward. Mirrors [`CellNetwork::forward_trace`]
    /// per member — same per-member accumulation order, same kernels —
    /// except that the stem runs once and same-geometry conv edges dispatch
    /// packed. Returns one `(trace, pre_activations)` pair per member, in
    /// pack order.
    fn forward_pack_traces(
        &self,
        input: &Tensor,
        workspace: &mut Workspace,
        collect_pre_activations: bool,
    ) -> Result<Vec<TraceAndPreActivations>> {
        let Some(first) = self.networks.first() else {
            return Ok(Vec::new());
        };
        let _pack_span = micronas_telemetry::span!("nn.pack_forward");
        first.check_input(input)?;
        let backend = &*first.backend;
        let pack = self.networks.len();
        let num_cells = first.cells.len();

        // One stem forward for the whole pack: stems are identical (same
        // seed, same stream) and see the identical input.
        let stem_out = {
            let _span = micronas_telemetry::span!("nn.stem_forward");
            first.stem.forward_on(backend, input, workspace)?
        };
        let mut pre_activations: Vec<Vec<Tensor>> = vec![Vec::new(); pack];
        let mut nodes_per_cell: Vec<Vec<Vec<Tensor>>> =
            (0..pack).map(|_| Vec::with_capacity(num_cells)).collect();
        let mut xs: Vec<Tensor> = (0..pack)
            .map(|_| pooled_copy(&stem_out, workspace))
            .collect();

        for cell_idx in 0..num_cells {
            let mut nodes: Vec<Vec<Tensor>> = std::mem::take(&mut xs)
                .into_iter()
                .map(|x| {
                    let mut v = Vec::with_capacity(NUM_NODES);
                    v.push(x);
                    v
                })
                .collect();
            for dst in 1..NUM_NODES {
                let mut accs: Vec<Tensor> = nodes
                    .iter()
                    .map(|n| pooled_zeros(n[0].shape().clone(), workspace))
                    .collect();
                for edge in EdgeId::all() {
                    let (src, d) = edge.endpoints();
                    if d != dst {
                        continue;
                    }
                    // Partition members by this edge's operation. Non-conv
                    // contributions accumulate immediately (each member has
                    // exactly one op per edge, so per-member order across
                    // edges stays canonical); conv members bucket by kernel
                    // size for one packed dispatch per bucket.
                    let mut conv_buckets: [Vec<usize>; 2] = [Vec::new(), Vec::new()];
                    for (p, net) in self.networks.iter().enumerate() {
                        match net.cell.edge_ops()[edge.0] {
                            Operation::None => {}
                            Operation::SkipConnect => {
                                accs[p].axpy(1.0, &nodes[p][src]).map_err(NnError::from)?;
                            }
                            Operation::AvgPool3x3 => {
                                let c = backend.avg_pool2d(&nodes[p][src], 3, 1, 1, workspace)?;
                                accs[p].axpy(1.0, &c).map_err(NnError::from)?;
                                workspace.recycle(c.into_vec());
                            }
                            Operation::NorConv1x1 => conv_buckets[0].push(p),
                            Operation::NorConv3x3 => conv_buckets[1].push(p),
                        }
                    }
                    for bucket in &conv_buckets {
                        let Some(&lead) = bucket.first() else {
                            continue;
                        };
                        let conv = self.networks[lead].cells[cell_idx].edge_convs[edge.0]
                            .as_ref()
                            .expect("conv edge always has a layer");
                        // Position-keyed seeding makes every bucket
                        // member's weight tensor identical to the lead's.
                        debug_assert!(bucket.iter().all(|&p| {
                            self.networks[p].cells[cell_idx].edge_convs[edge.0]
                                .as_ref()
                                .is_some_and(|c| c.weight() == conv.weight())
                        }));
                        if collect_pre_activations {
                            for &p in bucket {
                                pre_activations[p].push(nodes[p][src].clone());
                            }
                        }
                        let activated: Vec<Tensor> = bucket
                            .iter()
                            .map(|&p| pooled_relu(&nodes[p][src], workspace))
                            .collect();
                        let inputs: Vec<&Tensor> = activated.iter().collect();
                        let outs = backend.conv2d_forward_packed(
                            &inputs,
                            conv.weight(),
                            conv.spec(),
                            workspace,
                        )?;
                        drop(inputs);
                        note_pack_forward_dispatch(bucket.len());
                        for t in activated {
                            workspace.recycle(t.into_vec());
                        }
                        for (&p, c) in bucket.iter().zip(outs) {
                            accs[p].axpy(1.0, &c).map_err(NnError::from)?;
                            workspace.recycle(c.into_vec());
                        }
                    }
                }
                for (n, acc) in nodes.iter_mut().zip(accs) {
                    n.push(acc);
                }
            }
            xs = nodes
                .iter()
                .map(|n| pooled_copy(&n[NUM_NODES - 1], workspace))
                .collect();
            for (per_cell, n) in nodes_per_cell.iter_mut().zip(nodes) {
                per_cell.push(n);
            }
        }

        // Classifier per member: features differ even though weights
        // coincide, and the GEMM is tiny — packing buys nothing here.
        let mut out = Vec::with_capacity(pack);
        for ((net, x), (nodes, pre)) in self
            .networks
            .iter()
            .zip(xs)
            .zip(nodes_per_cell.into_iter().zip(pre_activations))
        {
            let features = global_avg_pool(&x)?;
            workspace.recycle(x.into_vec());
            let logits = net.classifier.forward_on(backend, &features)?;
            let trace = ForwardTrace {
                input: pooled_copy(input, workspace),
                stem_out: pooled_copy(&stem_out, workspace),
                nodes,
                features,
                logits,
            };
            out.push((trace, pre));
        }
        workspace.recycle(stem_out.into_vec());
        Ok(out)
    }

    /// Runs the packed forward pass on every member; element `i` of the
    /// result is bitwise identical to
    /// [`CellNetwork::forward_with`] on member `i` alone.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputMismatch`] if the input geometry does not
    /// match the configuration.
    pub fn forward_with(
        &self,
        input: &Tensor,
        workspace: &mut Workspace,
    ) -> Result<Vec<ForwardOutput>> {
        if self.networks.first().is_some_and(|n| n.compiler.is_some()) {
            return self
                .networks
                .iter()
                .map(|net| net.forward_with(input, workspace))
                .collect();
        }
        let traces = self.forward_pack_traces(input, workspace, true)?;
        let mut out = Vec::with_capacity(traces.len());
        for (trace, pre_activations) in traces {
            let logits = trace.logits.clone();
            recycle_trace(trace, workspace);
            out.push(ForwardOutput {
                logits,
                pre_activations,
            });
        }
        Ok(out)
    }

    /// Per-sample gradient matrices for every member from **one packed
    /// sweep**: packed forward, then one lockstep packed backward over the
    /// whole pack — conv edges bucket by kernel size exactly as in the
    /// forward, each bucket dispatching its per-sample weight gradients and
    /// input gradients through the packed backward seam. Per-member
    /// accumulation order is untouched, so element `i` is bitwise identical
    /// to [`CellNetwork::per_sample_gradient_matrix_with`] on member `i`
    /// alone.
    ///
    /// Falls back to one solo backward per member when a compiler is
    /// installed (compiled plans are solo by definition) or when the packed
    /// backward has been disabled via
    /// [`CellNetworkPack::with_packed_backward`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputMismatch`] for geometry mismatches.
    pub fn per_sample_gradient_matrices_with(
        &self,
        batch: &Tensor,
        workspace: &mut Workspace,
    ) -> Result<Vec<PerSampleGradients>> {
        if self.networks.first().is_some_and(|n| n.compiler.is_some()) {
            return self
                .networks
                .iter()
                .map(|net| net.per_sample_gradient_matrix_with(batch, workspace))
                .collect();
        }
        let traces = self.forward_pack_traces(batch, workspace, false)?;
        let n = batch.shape().dims()[0];
        if !self.packed_backward {
            // Forward-only packing (the PR 6 behaviour): solo backward per
            // member. Kept as the measured baseline for the packed sweep.
            let mut out = Vec::with_capacity(traces.len());
            for (net, (trace, _)) in self.networks.iter().zip(traces) {
                let p = net.num_parameters();
                let mut matrix = workspace.take_zeroed(n * p);
                net.backward_per_sample_into(&trace, workspace, &mut matrix)?;
                recycle_trace(trace, workspace);
                out.push(PerSampleGradients::new(n, p, matrix));
            }
            return Ok(out);
        }
        let traces: Vec<ForwardTrace> = traces.into_iter().map(|(trace, _)| trace).collect();
        let mut matrices: Vec<Vec<f32>> = self
            .networks
            .iter()
            .map(|net| workspace.take_zeroed(n * net.num_parameters()))
            .collect();
        // Identical pack members — same topology, and the pack's
        // position-keyed seeding gives same-topology members bitwise-equal
        // weights — produce bitwise-identical traces on the shared batch and
        // therefore bitwise-identical gradient matrices. Sweep each distinct
        // member once; a duplicate's matrix is a copy, byte-for-byte what
        // its own sweep would have produced.
        let mut reps: Vec<usize> = Vec::new();
        let mut rep_of: Vec<usize> = Vec::with_capacity(self.networks.len());
        for (idx, net) in self.networks.iter().enumerate() {
            match reps
                .iter()
                .copied()
                .find(|&r| self.networks[r].cell == net.cell)
            {
                Some(r) => rep_of.push(r),
                None => {
                    reps.push(idx);
                    rep_of.push(idx);
                }
            }
        }
        self.backward_pack_per_sample_into(batch, &traces, &reps, workspace, &mut matrices)?;
        for (idx, &rep) in rep_of.iter().enumerate() {
            if rep != idx {
                let (head, tail) = matrices.split_at_mut(idx);
                tail[0].copy_from_slice(&head[rep]);
            }
        }
        for trace in traces {
            recycle_trace(trace, workspace);
        }
        Ok(self
            .networks
            .iter()
            .zip(matrices)
            .map(|(net, matrix)| PerSampleGradients::new(n, net.num_parameters(), matrix))
            .collect())
    }

    /// [`CellNetworkPack::per_sample_gradient_matrices_with`] on a fresh
    /// default workspace.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputMismatch`] for geometry mismatches.
    pub fn per_sample_gradient_matrices(&self, batch: &Tensor) -> Result<Vec<PerSampleGradients>> {
        self.per_sample_gradient_matrices_with(batch, &mut Workspace::default())
    }

    /// The lockstep packed backward over the strictly ascending `members`
    /// subset (callers pass one representative per distinct topology).
    /// Mirrors [`CellNetwork::backward_per_sample_into`] per member — same
    /// per-member gradient flow, same accumulation order, same kernels —
    /// except that same-geometry conv edges dispatch their weight and input
    /// gradients packed, and the stem's per-sample backward (whose input,
    /// the probe batch, is identical across members) runs as one full-width
    /// packed dispatch that lowers the batch exactly once.
    fn backward_pack_per_sample_into(
        &self,
        batch: &Tensor,
        traces: &[ForwardTrace],
        members: &[usize],
        workspace: &mut Workspace,
        matrices: &mut [Vec<f32>],
    ) -> Result<()> {
        let Some(&lead_member) = members.first() else {
            return Ok(());
        };
        let _span = micronas_telemetry::span!("nn.pack_backward");
        let first = &self.networks[lead_member];
        let backend = &*first.backend;
        let n = batch.shape().dims()[0];
        let num_classes = first.config.num_classes;
        let channels = first.config.channels;
        // Members generally differ in parameter count and layer offsets.
        let offsets: Vec<(Vec<[usize; NUM_EDGES]>, usize)> = self
            .networks
            .iter()
            .map(|net| net.edge_parameter_offsets())
            .collect();
        let params: Vec<usize> = self
            .networks
            .iter()
            .map(|net| net.num_parameters())
            .collect();

        // Classifier rows, feature gradients and the pooling spread have
        // per-member operands everywhere; they run per member, exactly as
        // in the solo backward. The all-ones logits gradient is the only
        // shared operand, hoisted out of the loop.
        let ones = vec![1.0f32; n * num_classes];
        let mut grad_xs: Vec<Tensor> = Vec::with_capacity(members.len());
        for &idx in members {
            let net = &self.networks[idx];
            let trace = &traces[idx];
            let p = params[idx];
            let classifier_offset = offsets[idx].1;
            let matrix = &mut matrices[idx];
            debug_assert_eq!(matrix.len(), n * p);
            let features = trace.features.data();
            for b in 0..n {
                let row = &mut matrix[b * p + classifier_offset..(b * p) + p];
                for o in 0..num_classes {
                    for i in 0..channels {
                        row[o * channels + i] = features[b * channels + i];
                    }
                }
            }
            let mut grad_features = Tensor::zeros(Shape::d2(n, channels));
            backend.gemm_nn(
                n,
                num_classes,
                channels,
                &ones,
                net.classifier.weight().data(),
                grad_features.data_mut(),
                false,
            );
            let last_x = trace
                .nodes
                .last()
                .map(|nodes| &nodes[NUM_NODES - 1])
                .unwrap_or(&trace.stem_out);
            let hw: usize = last_x.shape().dims()[2] * last_x.shape().dims()[3];
            let mut buf = workspace.take(last_x.numel());
            for (&g, plane) in grad_features.data().iter().zip(buf.chunks_exact_mut(hw)) {
                plane.fill(g / hw as f32);
            }
            grad_xs
                .push(Tensor::from_vec(last_x.shape().clone(), buf).expect("length matches shape"));
        }

        // Cells in reverse order, all members in lockstep. Everything below
        // indexes by *dense position* within `members`; `members[pos]` maps
        // back to the pack index for traces, offsets and matrix slots.
        let num_cells = first.cells.len();
        for cell_idx in (0..num_cells).rev() {
            let mut node_grads: Vec<Vec<Tensor>> = std::mem::take(&mut grad_xs)
                .into_iter()
                .zip(members)
                .map(|(gx, &idx)| {
                    let nodes = &traces[idx].nodes[cell_idx];
                    let mut ng: Vec<Tensor> = nodes[..NUM_NODES - 1]
                        .iter()
                        .map(|nd| pooled_zeros(nd.shape().clone(), workspace))
                        .collect();
                    ng.push(gx);
                    ng
                })
                .collect();
            // Same structural-zero tracking as the solo backward, one flag
            // set per member.
            let mut touched = vec![[false; NUM_NODES]; members.len()];
            for t in &mut touched {
                t[NUM_NODES - 1] = true;
            }

            for edge in EdgeId::all().iter().rev() {
                let (src, dst) = edge.endpoints();
                // Partition members by this edge's operation, skipping
                // members whose upstream node is structurally zero. Non-conv
                // gradients accumulate immediately (each member has exactly
                // one op per edge, so per-member order across edges stays
                // canonical); conv members bucket by kernel size for one
                // packed dispatch per bucket.
                let mut conv_buckets: [Vec<usize>; 2] = [Vec::new(), Vec::new()];
                for (pos, &idx) in members.iter().enumerate() {
                    if !touched[pos][dst] {
                        continue;
                    }
                    match self.networks[idx].cell.edge_ops()[edge.0] {
                        Operation::None => {}
                        Operation::SkipConnect => {
                            let (lower, upper) = node_grads[pos].split_at_mut(dst);
                            lower[src].axpy(1.0, &upper[0]).map_err(NnError::from)?;
                            touched[pos][src] = true;
                        }
                        Operation::AvgPool3x3 => {
                            let g = backend.avg_pool2d_backward(
                                &node_grads[pos][dst],
                                traces[idx].nodes[cell_idx][src].shape(),
                                3,
                                1,
                                1,
                                workspace,
                            )?;
                            node_grads[pos][src].axpy(1.0, &g).map_err(NnError::from)?;
                            workspace.recycle(g.into_vec());
                            touched[pos][src] = true;
                        }
                        Operation::NorConv1x1 => conv_buckets[0].push(pos),
                        Operation::NorConv3x3 => conv_buckets[1].push(pos),
                    }
                }
                for bucket in &conv_buckets {
                    let Some(&lead_pos) = bucket.first() else {
                        continue;
                    };
                    let conv = self.networks[members[lead_pos]].cells[cell_idx].edge_convs[edge.0]
                        .as_ref()
                        .expect("conv edge always has a layer");
                    debug_assert!(bucket.iter().all(|&pos| {
                        self.networks[members[pos]].cells[cell_idx].edge_convs[edge.0]
                            .as_ref()
                            .is_some_and(|c| c.weight() == conv.weight())
                    }));
                    let activated: Vec<Tensor> = bucket
                        .iter()
                        .map(|&pos| {
                            pooled_relu(&traces[members[pos]].nodes[cell_idx][src], workspace)
                        })
                        .collect();
                    {
                        let inputs: Vec<&Tensor> = activated.iter().collect();
                        let grads: Vec<&Tensor> =
                            bucket.iter().map(|&pos| &node_grads[pos][dst]).collect();
                        let originals: Vec<usize> =
                            bucket.iter().map(|&pos| members[pos]).collect();
                        let mut slots = disjoint_slots(matrices, &originals, |idx| {
                            (params[idx], offsets[idx].0[cell_idx][edge.0])
                        });
                        backend.conv2d_backward_weight_per_sample_packed(
                            &inputs,
                            &grads,
                            conv.out_channels(),
                            conv.spec(),
                            workspace,
                            &mut slots,
                        )?;
                    }
                    note_pack_backward_dispatch(bucket.len());
                    let g_srcs = {
                        let grads: Vec<&Tensor> =
                            bucket.iter().map(|&pos| &node_grads[pos][dst]).collect();
                        backend.conv2d_backward_input_packed(
                            conv.weight(),
                            &grads,
                            activated[0].shape(),
                            conv.spec(),
                            workspace,
                        )?
                    };
                    note_pack_backward_dispatch(bucket.len());
                    for t in activated {
                        workspace.recycle(t.into_vec());
                    }
                    for (&pos, mut g_src) in bucket.iter().zip(g_srcs) {
                        // ReLU backward, in place on the input gradient.
                        let nodes = &traces[members[pos]].nodes[cell_idx];
                        for (g, &x) in g_src.data_mut().iter_mut().zip(nodes[src].data()) {
                            if x <= 0.0 {
                                *g = 0.0;
                            }
                        }
                        let (lower, _) = node_grads[pos].split_at_mut(dst);
                        lower[src].axpy(1.0, &g_src).map_err(NnError::from)?;
                        workspace.recycle(g_src.into_vec());
                        touched[pos][src] = true;
                    }
                }
            }
            grad_xs = node_grads
                .into_iter()
                .map(|ng| {
                    let mut drain = ng.into_iter();
                    let g0 = drain.next().expect("node 0 gradient");
                    for t in drain {
                        workspace.recycle(t.into_vec());
                    }
                    g0
                })
                .collect();
        }

        // Stem, per sample, packed across the swept members: every member's
        // stem backward consumes the identical probe batch, so the packed
        // kernel lowers it exactly once for the whole dispatch.
        {
            let inputs: Vec<&Tensor> = members.iter().map(|_| batch).collect();
            let grads: Vec<&Tensor> = grad_xs.iter().collect();
            let mut slots = disjoint_slots(matrices, members, |idx| (params[idx], 0));
            backend.conv2d_backward_weight_per_sample_packed(
                &inputs,
                &grads,
                first.stem.out_channels(),
                first.stem.spec(),
                workspace,
                &mut slots,
            )?;
        }
        note_pack_backward_dispatch(members.len());
        for g in grad_xs {
            workspace.recycle(g.into_vec());
        }
        Ok(())
    }
}

/// Extracts sample `i` of an NCHW batch as a batch of one.
fn extract_sample(batch: &Tensor, i: usize) -> Result<Tensor> {
    let d = batch.shape().dims();
    let per_sample = d[1] * d[2] * d[3];
    let start = i * per_sample;
    let data = batch.data()[start..start + per_sample].to_vec();
    Ok(Tensor::from_vec(Shape::nchw(1, d[1], d[2], d[3]), data)?)
}

/// A zero-filled tensor whose buffer comes from the workspace recycling pool.
fn pooled_zeros(shape: Shape, workspace: &mut Workspace) -> Tensor {
    let n = shape.numel();
    Tensor::from_vec(shape, workspace.take_zeroed(n)).expect("length matches shape")
}

/// A copy of `t` whose buffer comes from the workspace recycling pool.
fn pooled_copy(t: &Tensor, workspace: &mut Workspace) -> Tensor {
    let mut buf = workspace.take(t.numel());
    buf.copy_from_slice(t.data());
    Tensor::from_vec(t.shape().clone(), buf).expect("length matches shape")
}

/// `relu(t)` into a pooled buffer (same values as [`relu`]).
fn pooled_relu(t: &Tensor, workspace: &mut Workspace) -> Tensor {
    let mut buf = workspace.take(t.numel());
    for (o, &v) in buf.iter_mut().zip(t.data()) {
        *o = if v > 0.0 { v } else { 0.0 };
    }
    Tensor::from_vec(t.shape().clone(), buf).expect("length matches shape")
}

/// Returns every pooled buffer of a [`ForwardTrace`] to the workspace so the
/// next trace reuses it. The classifier-side tensors (`features`, `logits`)
/// are small and are left to the allocator.
fn recycle_trace(trace: ForwardTrace, workspace: &mut Workspace) {
    workspace.recycle(trace.input.into_vec());
    workspace.recycle(trace.stem_out.into_vec());
    for nodes in trace.nodes {
        for t in nodes {
            workspace.recycle(t.into_vec());
        }
    }
}

/// Disjoint `&mut` slices over `matrices` for the strictly ascending member
/// indices of one bucket, paired with each member's `(row_stride, offset)`
/// from `stride_offset` — the destination set of one packed backward-weight
/// dispatch.
fn disjoint_slots<'a>(
    matrices: &'a mut [Vec<f32>],
    indices: &[usize],
    stride_offset: impl Fn(usize) -> (usize, usize),
) -> Vec<PackedGradSlot<'a>> {
    let mut slots = Vec::with_capacity(indices.len());
    let mut rest: &'a mut [Vec<f32>] = matrices;
    let mut base = 0usize;
    for &idx in indices {
        debug_assert!(idx >= base, "bucket indices must ascend");
        let taken = rest;
        let (skip, tail) = taken.split_at_mut(idx - base + 1);
        let matrix = skip.last_mut().expect("bucket index in range");
        let (row_stride, offset) = stride_offset(idx);
        slots.push(PackedGradSlot {
            out: matrix.as_mut_slice(),
            row_stride,
            offset,
        });
        rest = tail;
        base = idx + 1;
    }
    slots
}

// ---------------------------------------------------------------------------
// Pack fill accounting
// ---------------------------------------------------------------------------

static PACK_FORWARD_DISPATCHES: AtomicU64 = AtomicU64::new(0);
static PACK_FORWARD_MEMBERS: AtomicU64 = AtomicU64::new(0);
static PACK_BACKWARD_DISPATCHES: AtomicU64 = AtomicU64::new(0);
static PACK_BACKWARD_MEMBERS: AtomicU64 = AtomicU64::new(0);

fn note_pack_forward_dispatch(members: usize) {
    PACK_FORWARD_DISPATCHES.fetch_add(1, Ordering::Relaxed);
    PACK_FORWARD_MEMBERS.fetch_add(members as u64, Ordering::Relaxed);
}

fn note_pack_backward_dispatch(members: usize) {
    PACK_BACKWARD_DISPATCHES.fetch_add(1, Ordering::Relaxed);
    PACK_BACKWARD_MEMBERS.fetch_add(members as u64, Ordering::Relaxed);
}

/// Monotonic process-global counts of packed kernel dispatches and the pack
/// members they served, split by sweep direction.
///
/// A *forward* dispatch is one [`KernelBackend::conv2d_forward_packed`]
/// bucket; a *backward* dispatch is one packed weight-gradient or packed
/// input-gradient bucket (the stem's full-width packed backward included).
/// `members / dispatches` is therefore the measured average pack fill of
/// each sweep — the number the search-layer fill gauges and batch-stat
/// counters report. Snapshot with [`pack_kernel_stats`] and diff with
/// [`PackKernelStats::since`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PackKernelStats {
    /// Packed forward conv dispatches.
    pub forward_dispatches: u64,
    /// Pack members served by forward dispatches.
    pub forward_members: u64,
    /// Packed backward (weight-gradient + input-gradient) dispatches.
    pub backward_dispatches: u64,
    /// Pack members served by backward dispatches.
    pub backward_members: u64,
}

impl PackKernelStats {
    /// Counter deltas since an `earlier` snapshot.
    #[must_use]
    pub fn since(&self, earlier: &PackKernelStats) -> PackKernelStats {
        PackKernelStats {
            forward_dispatches: self.forward_dispatches - earlier.forward_dispatches,
            forward_members: self.forward_members - earlier.forward_members,
            backward_dispatches: self.backward_dispatches - earlier.backward_dispatches,
            backward_members: self.backward_members - earlier.backward_members,
        }
    }

    /// Average members per packed forward dispatch (0 when none ran).
    #[must_use]
    pub fn forward_fill(&self) -> f64 {
        if self.forward_dispatches == 0 {
            0.0
        } else {
            self.forward_members as f64 / self.forward_dispatches as f64
        }
    }

    /// Average members per packed backward dispatch (0 when none ran).
    #[must_use]
    pub fn backward_fill(&self) -> f64 {
        if self.backward_dispatches == 0 {
            0.0
        } else {
            self.backward_members as f64 / self.backward_dispatches as f64
        }
    }
}

/// Snapshot of the process-global [`PackKernelStats`] counters.
#[must_use]
pub fn pack_kernel_stats() -> PackKernelStats {
    PackKernelStats {
        forward_dispatches: PACK_FORWARD_DISPATCHES.load(Ordering::Relaxed),
        forward_members: PACK_FORWARD_MEMBERS.load(Ordering::Relaxed),
        backward_dispatches: PACK_BACKWARD_DISPATCHES.load(Ordering::Relaxed),
        backward_members: PACK_BACKWARD_MEMBERS.load(Ordering::Relaxed),
    }
}

/// Seed stream reserved for the stem convolution.
const STEM_SEED_STREAM: u64 = 0x57E4_C0DE;

#[cfg(test)]
mod tests {
    use super::*;
    use micronas_searchspace::SearchSpace;
    use micronas_tensor::DeterministicRng;

    /// Serialises the tests that pin or depend on the process-global conv
    /// engine, so a concurrent pin cannot flip the engine mid-comparison.
    static ENGINE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn random_batch(config: &ProxyNetworkConfig, n: usize, seed: u64) -> Tensor {
        let mut rng = DeterministicRng::new(seed);
        let shape = Shape::nchw(
            n,
            config.input_channels,
            config.input_resolution,
            config.input_resolution,
        );
        let data = (0..shape.numel()).map(|_| rng.normal()).collect();
        Tensor::from_vec(shape, data).unwrap()
    }

    fn conv_chain_cell() -> CellTopology {
        // 0 -conv3x3-> 1 -conv1x1-> 2 -conv3x3-> 3 plus a skip 0->3.
        let space = SearchSpace::nas_bench_201();
        let mut cell = space.cell(0).unwrap();
        cell = cell.with_op(EdgeId(0), Operation::NorConv3x3).unwrap();
        cell = cell.with_op(EdgeId(2), Operation::NorConv1x1).unwrap();
        cell = cell.with_op(EdgeId(5), Operation::NorConv3x3).unwrap();
        cell = cell.with_op(EdgeId(3), Operation::SkipConnect).unwrap();
        cell
    }

    #[test]
    fn graph_interpreter_matches_eager_bitwise() {
        let _guard = ENGINE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let cell = conv_chain_cell();
        let config = ProxyNetworkConfig::tiny(10);
        let net = CellNetwork::new(&cell, &config, 42).unwrap();
        let gnet = net
            .clone()
            .with_compiler(micronas_graph::CompilerKind::Interpreter.instantiate());
        let batch = random_batch(&config, 3, 7);
        let mut ws = Workspace::default();

        let eager = net.forward_with(&batch, &mut ws).unwrap();
        let graph = gnet.forward_with(&batch, &mut ws).unwrap();
        assert_eq!(eager.logits.data(), graph.logits.data());
        assert_eq!(eager.pre_activations.len(), graph.pre_activations.len());
        for (a, b) in eager.pre_activations.iter().zip(&graph.pre_activations) {
            assert_eq!(a.data(), b.data());
        }

        let me = net
            .per_sample_gradient_matrix_with(&batch, &mut ws)
            .unwrap();
        let mg = gnet
            .per_sample_gradient_matrix_with(&batch, &mut ws)
            .unwrap();
        assert_eq!(me.values(), mg.values());
    }

    #[test]
    fn graph_fusing_matches_eager_within_tolerance() {
        let _guard = ENGINE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let cell = conv_chain_cell();
        let config = ProxyNetworkConfig::tiny(10);
        let net = CellNetwork::new(&cell, &config, 42).unwrap();
        let gnet = net
            .clone()
            .with_compiler(micronas_graph::CompilerKind::Fusing.instantiate());
        let batch = random_batch(&config, 3, 7);
        let mut ws = Workspace::default();

        let eager = net.forward_with(&batch, &mut ws).unwrap();
        let graph = gnet.forward_with(&batch, &mut ws).unwrap();
        for (a, b) in eager.logits.data().iter().zip(graph.logits.data()) {
            assert!((a - b).abs() <= 1e-4 * a.abs().max(1.0), "{a} vs {b}");
        }

        let me = net
            .per_sample_gradient_matrix_with(&batch, &mut ws)
            .unwrap();
        let mg = gnet
            .per_sample_gradient_matrix_with(&batch, &mut ws)
            .unwrap();
        for (a, b) in me.values().iter().zip(mg.values()) {
            assert!((a - b).abs() <= 1e-4 * a.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn forward_output_shape() {
        let cell = conv_chain_cell();
        let config = ProxyNetworkConfig::tiny(10);
        let net = CellNetwork::new(&cell, &config, 1).unwrap();
        let batch = random_batch(&config, 3, 2);
        let out = net.forward(&batch).unwrap();
        assert_eq!(out.logits.shape().dims(), &[3, 10]);
        // 3 conv edges per cell, 1 cell.
        assert_eq!(out.pre_activations.len(), 3);
    }

    #[test]
    fn input_geometry_is_validated() {
        let cell = conv_chain_cell();
        let config = ProxyNetworkConfig::tiny(10);
        let net = CellNetwork::new(&cell, &config, 1).unwrap();
        let bad = Tensor::zeros(Shape::nchw(1, 3, 16, 16));
        assert!(net.forward(&bad).is_err());
        let bad_rank = Tensor::zeros(Shape::d2(3, 3));
        assert!(net.forward(&bad_rank).is_err());
    }

    #[test]
    fn parameter_count_matches_layers() {
        let cell = conv_chain_cell();
        let config = ProxyNetworkConfig::tiny(10);
        let net = CellNetwork::new(&cell, &config, 1).unwrap();
        let c = config.channels;
        let expected = config.input_channels * c * 9       // stem
            + c * c * 9                                     // edge 0 conv3x3
            + c * c                                         // edge 2 conv1x1
            + c * c * 9                                     // edge 5 conv3x3
            + c * config.num_classes; // classifier
        assert_eq!(net.num_parameters(), expected);
    }

    #[test]
    fn all_none_cell_still_produces_logits() {
        let space = SearchSpace::nas_bench_201();
        let cell = space.cell(0).unwrap();
        let config = ProxyNetworkConfig::tiny(10);
        let net = CellNetwork::new(&cell, &config, 3).unwrap();
        let batch = random_batch(&config, 2, 4);
        let out = net.forward(&batch).unwrap();
        // No path from input to output: features are zero, so logits are zero.
        assert!(out.logits.data().iter().all(|&v| v == 0.0));
        assert!(out.pre_activations.is_empty());
    }

    #[test]
    fn network_construction_is_deterministic() {
        let _engine_guard = ENGINE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let cell = conv_chain_cell();
        let config = ProxyNetworkConfig::tiny(10);
        let a = CellNetwork::new(&cell, &config, 7).unwrap();
        let b = CellNetwork::new(&cell, &config, 7).unwrap();
        let batch = random_batch(&config, 2, 5);
        assert_eq!(
            a.forward(&batch).unwrap().logits,
            b.forward(&batch).unwrap().logits
        );
        let c = CellNetwork::new(&cell, &config, 8).unwrap();
        assert_ne!(
            a.forward(&batch).unwrap().logits,
            c.forward(&batch).unwrap().logits
        );
    }

    #[test]
    fn per_sample_gradients_have_parameter_length() {
        let cell = conv_chain_cell();
        let config = ProxyNetworkConfig::tiny(5);
        let net = CellNetwork::new(&cell, &config, 1).unwrap();
        let batch = random_batch(&config, 4, 6);
        let grads = net.per_sample_gradients(&batch).unwrap();
        assert_eq!(grads.len(), 4);
        for g in &grads {
            assert_eq!(g.len(), net.num_parameters());
            assert!(g.norm() > 0.0);
        }
    }

    #[test]
    fn batch_gradient_is_sum_of_per_sample_gradients() {
        let cell = conv_chain_cell();
        let config = ProxyNetworkConfig::tiny(4);
        let net = CellNetwork::new(&cell, &config, 2).unwrap();
        let batch = random_batch(&config, 3, 7);
        let total = net.parameter_gradients(&batch).unwrap();
        let per_sample = net.per_sample_gradients(&batch).unwrap();
        let mut summed = vec![0.0f32; total.len()];
        for g in &per_sample {
            for (s, v) in summed.iter_mut().zip(g.values()) {
                *s += v;
            }
        }
        for (a, b) in total.values().iter().zip(summed.iter()) {
            assert!((a - b).abs() < 1e-3 * (1.0 + b.abs()), "{a} vs {b}");
        }

        // And per-sample — not just summed — the batched formulation must
        // reproduce the looped one.
        let mut ws = Workspace::default();
        let looped = net
            .per_sample_gradients_looped_with(&batch, &mut ws)
            .unwrap();
        assert_eq!(looped.len(), per_sample.len());
        for (b, (fast, slow)) in per_sample.iter().zip(looped.iter()).enumerate() {
            for (i, (x, y)) in fast.values().iter().zip(slow.values()).enumerate() {
                assert!(
                    (x - y).abs() < 1e-4 * (1.0 + y.abs()),
                    "sample {b} param {i}: batched {x} vs looped {y}"
                );
            }
        }
    }

    /// Batched and looped per-sample gradients must agree per sample across
    /// random cells, batch sizes and both pinned convolution engines. Under
    /// a pinned engine the two formulations execute identical per-sample
    /// kernels, so the comparison is exact.
    #[test]
    fn batched_per_sample_gradients_match_looped_on_both_engines() {
        use micronas_tensor::{set_conv_engine, ConvEngine};
        let _engine_guard = ENGINE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let space = SearchSpace::nas_bench_201();
        // A spread of cells: conv-heavy, pool/skip-mixed, sparse.
        let cells = [
            conv_chain_cell(),
            space.cell(7_000).unwrap(),
            space.cell(11_111).unwrap(),
            space.cell(404).unwrap(),
        ];
        let config = ProxyNetworkConfig::tiny(4);
        for engine in [ConvEngine::Direct, ConvEngine::Im2colGemm] {
            set_conv_engine(engine);
            for (c_idx, cell) in cells.iter().enumerate() {
                let net = CellNetwork::new(cell, &config, c_idx as u64 + 1).unwrap();
                for n in [1usize, 2, 7] {
                    let batch = random_batch(&config, n, 19 + n as u64);
                    let mut ws = Workspace::default();
                    let fast = net
                        .per_sample_gradient_matrix_with(&batch, &mut ws)
                        .unwrap();
                    let looped = net
                        .per_sample_gradients_looped_with(&batch, &mut ws)
                        .unwrap();
                    assert_eq!(fast.num_samples(), n);
                    assert_eq!(fast.num_parameters(), net.num_parameters());
                    for (b, slow) in looped.iter().enumerate() {
                        assert_eq!(
                            fast.row(b),
                            slow.values(),
                            "engine {engine:?} cell {c_idx} n={n} sample {b}"
                        );
                    }
                }
            }
        }
        set_conv_engine(ConvEngine::Auto);
    }

    proptest::proptest! {
        /// Property form of the batched-vs-looped equivalence: random cells
        /// from the full NAS-Bench-201 space, the batch sizes the edge cases
        /// live at (1, 2, 7), both pinned convolution engines.
        #[test]
        fn batched_per_sample_gradients_match_looped_across_random_cells(
            cell_index in 0usize..15_625,
            batch_choice in 0usize..3,
            engine_choice in 0usize..2,
            seed in 0u64..1_000,
        ) {
            use micronas_tensor::{set_conv_engine, ConvEngine};
            let _engine_guard = ENGINE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
            let space = SearchSpace::nas_bench_201();
            let cell = space.cell(cell_index).unwrap();
            let mut config = ProxyNetworkConfig::tiny(3);
            config.input_resolution = 6;
            let n = [1usize, 2, 7][batch_choice];
            let net = CellNetwork::new(&cell, &config, seed).unwrap();
            let batch = random_batch(&config, n, seed + 1);
            let mut ws = Workspace::default();
            set_conv_engine(if engine_choice == 0 {
                ConvEngine::Direct
            } else {
                ConvEngine::Im2colGemm
            });
            let fast = net.per_sample_gradient_matrix_with(&batch, &mut ws);
            let looped = net.per_sample_gradients_looped_with(&batch, &mut ws);
            set_conv_engine(ConvEngine::Auto);
            let (fast, looped) = (fast.unwrap(), looped.unwrap());
            for (b, slow) in looped.iter().enumerate() {
                proptest::prop_assert_eq!(fast.row(b), slow.values(), "sample {}", b);
            }
        }
    }

    /// The decisive correctness check: analytic parameter gradients must agree
    /// with central finite differences of `sum(logits)`.
    #[test]
    fn gradients_match_finite_differences() {
        let cell = conv_chain_cell();
        let mut config = ProxyNetworkConfig::tiny(3);
        config.input_resolution = 6;
        config.channels = 3;
        let net = CellNetwork::new(&cell, &config, 11).unwrap();
        let batch = random_batch(&config, 1, 12);
        let analytic = net.parameter_gradients(&batch).unwrap();

        // Perturb a handful of parameters spread across stem / cell convs / classifier.
        let eps = 1e-2f32;
        let n_params = net.num_parameters();
        let probe_indices = [
            0usize,
            n_params / 5,
            n_params / 2,
            (3 * n_params) / 4,
            n_params - 1,
        ];
        for &flat_idx in &probe_indices {
            let mut plus_net = net.clone();
            let mut minus_net = net.clone();
            perturb_parameter(&mut plus_net, flat_idx, eps);
            perturb_parameter(&mut minus_net, flat_idx, -eps);
            let plus = plus_net.forward(&batch).unwrap().logits.sum();
            let minus = minus_net.forward(&batch).unwrap().logits.sum();
            let numeric = (plus - minus) / (2.0 * eps);
            let a = analytic.values()[flat_idx];
            assert!(
                (numeric - a).abs() < 3e-2 * (1.0 + a.abs().max(numeric.abs())),
                "param {flat_idx}: numeric {numeric} vs analytic {a}"
            );
        }
    }

    /// Adds `delta` to the parameter at flat index `idx` (canonical order).
    fn perturb_parameter(net: &mut CellNetwork, idx: usize, delta: f32) {
        let mut offset = 0usize;
        {
            let stem = net.stem.weight_mut();
            if idx < offset + stem.numel() {
                stem.data_mut()[idx - offset] += delta;
                return;
            }
            offset += stem.numel();
        }
        for cell in &mut net.cells {
            for conv in cell.edge_convs.iter_mut().flatten() {
                let w = conv.weight_mut();
                if idx < offset + w.numel() {
                    w.data_mut()[idx - offset] += delta;
                    return;
                }
                offset += w.numel();
            }
        }
        // Classifier: LinearLayer has no weight_mut; rebuild via unsafe-free trick.
        let cls_len = net.classifier.num_parameters();
        assert!(idx < offset + cls_len, "index out of range");
        let mut w = net.classifier.weight().clone();
        w.data_mut()[idx - offset] += delta;
        net.classifier = rebuild_linear(&net.classifier, w);
    }

    fn rebuild_linear(_old: &LinearLayer, weight: Tensor) -> LinearLayer {
        LinearLayer::from_weight(weight)
    }

    /// A spread of cells that exercises every pack regime: conv-heavy (big
    /// merge buckets), mixed pool/skip (partitioned edges), sparse, and the
    /// all-`None` degenerate cell.
    fn pack_test_cells() -> Vec<CellTopology> {
        let space = SearchSpace::nas_bench_201();
        vec![
            conv_chain_cell(),
            space.cell(7_000).unwrap(),
            space.cell(11_111).unwrap(),
            space.cell(404).unwrap(),
            space.cell(0).unwrap(),
        ]
    }

    /// The tentpole identity at the network layer: the packed forward must
    /// be bitwise identical to each member's solo forward, at every pack
    /// width and under both pinned convolution engines (covering the
    /// merged-GEMM path and the direct oracle).
    #[test]
    fn packed_forward_is_bitwise_identical_to_solo_members() {
        use micronas_tensor::{set_conv_engine, ConvEngine};
        let _engine_guard = ENGINE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let cells = pack_test_cells();
        let config = ProxyNetworkConfig::tiny(10);
        let batch = random_batch(&config, 2, 31);
        for engine in [ConvEngine::Auto, ConvEngine::Direct, ConvEngine::Im2colGemm] {
            set_conv_engine(engine);
            for width in [1usize, 2, cells.len()] {
                let members = &cells[..width];
                let pack = CellNetworkPack::new(members, &config, 9).unwrap();
                let mut pack_ws = Workspace::default();
                let packed = pack.forward_with(&batch, &mut pack_ws).unwrap();
                assert_eq!(packed.len(), width);
                for (i, cell) in members.iter().enumerate() {
                    let solo_net = CellNetwork::new(cell, &config, 9).unwrap();
                    let mut solo_ws = Workspace::default();
                    let solo = solo_net.forward_with(&batch, &mut solo_ws).unwrap();
                    assert_eq!(
                        packed[i].logits.data(),
                        solo.logits.data(),
                        "engine {engine:?} width {width} member {i}: logits diverge"
                    );
                    assert_eq!(
                        packed[i].pre_activations.len(),
                        solo.pre_activations.len(),
                        "engine {engine:?} width {width} member {i}"
                    );
                    for (a, b) in packed[i].pre_activations.iter().zip(&solo.pre_activations) {
                        assert_eq!(a.data(), b.data());
                    }
                }
            }
        }
        set_conv_engine(ConvEngine::Auto);
    }

    /// Per-sample gradient matrices from the pack (packed forward, solo
    /// backward on pack traces) must be bitwise identical to each member's
    /// solo batched formulation.
    #[test]
    fn packed_gradient_matrices_are_bitwise_identical_to_solo_members() {
        use micronas_tensor::{set_conv_engine, ConvEngine};
        let _engine_guard = ENGINE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let cells = pack_test_cells();
        let config = ProxyNetworkConfig::tiny(4);
        for engine in [ConvEngine::Auto, ConvEngine::Im2colGemm] {
            set_conv_engine(engine);
            for n in [1usize, 3] {
                let batch = random_batch(&config, n, 47 + n as u64);
                let pack = CellNetworkPack::new(&cells, &config, 5).unwrap();
                let mut pack_ws = Workspace::default();
                let matrices = pack
                    .per_sample_gradient_matrices_with(&batch, &mut pack_ws)
                    .unwrap();
                assert_eq!(matrices.len(), cells.len());
                for (i, cell) in cells.iter().enumerate() {
                    let solo_net = CellNetwork::new(cell, &config, 5).unwrap();
                    let mut solo_ws = Workspace::default();
                    let solo = solo_net
                        .per_sample_gradient_matrix_with(&batch, &mut solo_ws)
                        .unwrap();
                    assert_eq!(matrices[i].num_samples(), n);
                    assert_eq!(matrices[i].num_parameters(), solo_net.num_parameters());
                    for b in 0..n {
                        assert_eq!(
                            matrices[i].row(b),
                            solo.row(b),
                            "engine {engine:?} n={n} member {i} sample {b}: gradients diverge"
                        );
                    }
                }
            }
        }
        set_conv_engine(ConvEngine::Auto);
    }

    /// The packed backward toggle changes dispatch shape only: matrices
    /// from the packed sweep and the per-member solo loop are bitwise
    /// identical, which is what lets benches use the toggle as a baseline.
    #[test]
    fn packed_backward_toggle_is_bitwise_invisible() {
        let _engine_guard = ENGINE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let cells = pack_test_cells();
        let config = ProxyNetworkConfig::tiny(4);
        let batch = random_batch(&config, 3, 99);
        let packed = CellNetworkPack::new(&cells, &config, 5)
            .unwrap()
            .per_sample_gradient_matrices_with(&batch, &mut Workspace::default())
            .unwrap();
        let solo_loop = CellNetworkPack::new(&cells, &config, 5)
            .unwrap()
            .with_packed_backward(false)
            .per_sample_gradient_matrices_with(&batch, &mut Workspace::default())
            .unwrap();
        assert_eq!(packed.len(), solo_loop.len());
        for (i, (a, b)) in packed.iter().zip(&solo_loop).enumerate() {
            assert_eq!(a.num_parameters(), b.num_parameters());
            for s in 0..a.num_samples() {
                assert_eq!(
                    a.row(s),
                    b.row(s),
                    "member {i} sample {s}: toggle changed values"
                );
            }
        }
    }

    /// One packed gradient sweep bumps the global fill counters, and the
    /// backward sweep (which packs the full-width stem backward on top of
    /// the same conv buckets the forward merges) always measures fill at
    /// least as high as the forward sweep.
    #[test]
    fn pack_fill_counters_track_backward_dispatches() {
        let _engine_guard = ENGINE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let cells = pack_test_cells();
        let config = ProxyNetworkConfig::tiny(4);
        let batch = random_batch(&config, 2, 7);
        let pack = CellNetworkPack::new(&cells, &config, 5).unwrap();
        let before = pack_kernel_stats();
        pack.per_sample_gradient_matrices_with(&batch, &mut Workspace::default())
            .unwrap();
        let delta = pack_kernel_stats().since(&before);
        assert!(
            delta.forward_dispatches >= 1,
            "no packed forward dispatches recorded"
        );
        assert!(
            delta.backward_dispatches >= 1,
            "no packed backward dispatches recorded"
        );
        assert!(delta.forward_members >= delta.forward_dispatches);
        assert!(delta.backward_members >= delta.backward_dispatches);
        assert!(
            delta.backward_fill() >= delta.forward_fill(),
            "backward fill {} below forward fill {}",
            delta.backward_fill(),
            delta.forward_fill()
        );
    }

    #[test]
    fn empty_pack_is_empty_everywhere() {
        let config = ProxyNetworkConfig::tiny(10);
        let pack = CellNetworkPack::new(&[], &config, 1).unwrap();
        assert!(pack.is_empty());
        assert_eq!(pack.len(), 0);
        let batch = random_batch(&config, 2, 1);
        let mut ws = Workspace::default();
        assert!(pack.forward_with(&batch, &mut ws).unwrap().is_empty());
        assert!(pack
            .per_sample_gradient_matrices_with(&batch, &mut ws)
            .unwrap()
            .is_empty());
    }

    /// The pack validates input geometry exactly like its members do.
    #[test]
    fn pack_input_geometry_is_validated() {
        let config = ProxyNetworkConfig::tiny(10);
        let pack = CellNetworkPack::new(&[conv_chain_cell()], &config, 1).unwrap();
        let bad = Tensor::zeros(Shape::nchw(1, 3, 16, 16));
        let mut ws = Workspace::default();
        assert!(pack.forward_with(&bad, &mut ws).is_err());
    }
}
