//! Flattened parameter-gradient vectors.
//!
//! The NTK Gram matrix needs inner products between per-sample gradient
//! vectors ∇_θ f(x_i); a flat `Vec<f32>` representation keeps that a single
//! dot product.

use serde::{Deserialize, Serialize};

/// The gradient of a scalar network output with respect to every trainable
/// parameter, flattened into a single vector in a fixed parameter order
/// (stem, cells in order, classifier).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParameterGradients {
    values: Vec<f32>,
}

impl ParameterGradients {
    /// Creates a gradient vector from its flattened values.
    pub fn new(values: Vec<f32>) -> Self {
        Self { values }
    }

    /// Number of parameters covered by the gradient.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the gradient is empty (a network with no parameters).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The flattened gradient values.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Inner product with another gradient vector — one entry of the NTK
    /// Gram matrix.
    ///
    /// # Panics
    ///
    /// Panics if the two gradients cover a different number of parameters
    /// (they must come from the same network).
    pub fn dot(&self, other: &ParameterGradients) -> f64 {
        assert_eq!(
            self.values.len(),
            other.values.len(),
            "gradients must come from the same network"
        );
        self.values
            .iter()
            .zip(other.values.iter())
            .map(|(&a, &b)| a as f64 * b as f64)
            .sum()
    }

    /// Euclidean norm of the gradient.
    pub fn norm(&self) -> f64 {
        self.values
            .iter()
            .map(|&v| (v as f64) * (v as f64))
            .sum::<f64>()
            .sqrt()
    }
}

/// Per-sample gradients of a whole batch, stored as one contiguous row-major
/// `[n, P]` matrix (`n` samples × `P` parameters).
///
/// This is the layout the batched backward pass emits and the NTK Gram
/// build (`G = J·Jᵀ`) consumes: sample `i`'s flattened parameter gradient is
/// row `i`, so the Gram matrix is a single GEMM over the buffer instead of
/// `n²` pairwise dot products over separate allocations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerSampleGradients {
    n: usize,
    p: usize,
    values: Vec<f32>,
}

impl PerSampleGradients {
    /// Wraps a row-major `[n, p]` buffer.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != n * p`.
    pub fn new(n: usize, p: usize, values: Vec<f32>) -> Self {
        assert_eq!(values.len(), n * p, "per-sample gradient matrix size");
        Self { n, p, values }
    }

    /// Number of samples (rows).
    pub fn num_samples(&self) -> usize {
        self.n
    }

    /// Number of parameters (columns).
    pub fn num_parameters(&self) -> usize {
        self.p
    }

    /// The whole `[n, P]` buffer, row-major.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// The gradient row of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_samples()`.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.values[i * self.p..(i + 1) * self.p]
    }

    /// Splits the matrix into one owned [`ParameterGradients`] per sample
    /// (the pre-batched representation; costs one copy per row).
    pub fn to_parameter_gradients(&self) -> Vec<ParameterGradients> {
        (0..self.n)
            .map(|i| ParameterGradients::new(self.row(i).to_vec()))
            .collect()
    }

    /// Consumes the matrix and returns its backing buffer — callers that
    /// took it from a [`micronas_tensor::Workspace`]-backed path recycle it
    /// there, keeping steady-state NTK evaluation allocation-free.
    pub fn into_values(self) -> Vec<f32> {
        self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dot_and_norm() {
        let a = ParameterGradients::new(vec![1.0, 2.0, 3.0]);
        let b = ParameterGradients::new(vec![4.0, 5.0, 6.0]);
        assert_eq!(a.dot(&b), 32.0);
        assert!((a.norm() - 14.0f64.sqrt()).abs() < 1e-9);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
    }

    #[test]
    #[should_panic]
    fn dot_with_mismatched_lengths_panics() {
        let a = ParameterGradients::new(vec![1.0]);
        let b = ParameterGradients::new(vec![1.0, 2.0]);
        let _ = a.dot(&b);
    }

    #[test]
    fn per_sample_matrix_rows_and_split() {
        let m = PerSampleGradients::new(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.num_samples(), 2);
        assert_eq!(m.num_parameters(), 3);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        let split = m.to_parameter_gradients();
        assert_eq!(split.len(), 2);
        assert_eq!(split[1].values(), &[4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic]
    fn per_sample_matrix_checks_length() {
        let _ = PerSampleGradients::new(2, 3, vec![0.0; 5]);
    }

    proptest! {
        #[test]
        fn dot_is_symmetric(xs in proptest::collection::vec(-5.0f32..5.0, 1..64)) {
            let ys: Vec<f32> = xs.iter().map(|x| x * 0.5 + 1.0).collect();
            let a = ParameterGradients::new(xs);
            let b = ParameterGradients::new(ys);
            prop_assert!((a.dot(&b) - b.dot(&a)).abs() < 1e-6);
        }

        #[test]
        fn self_dot_equals_norm_squared(xs in proptest::collection::vec(-5.0f32..5.0, 1..64)) {
            let a = ParameterGradients::new(xs);
            prop_assert!((a.dot(&a) - a.norm() * a.norm()).abs() < 1e-6 * (1.0 + a.dot(&a)));
        }
    }
}
