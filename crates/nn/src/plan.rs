//! Lowering of [`CellNetwork`] forward/backward passes to the kernel-graph
//! IR, plus the process-wide compiled-plan cache.
//!
//! The lowering replays the eager code paths op for op:
//! [`lower`] with [`PlanMode::Forward`] mirrors `CellNetwork::forward_trace`
//! and [`PlanMode::PerSampleGrad`] mirrors
//! `CellNetwork::backward_per_sample_into` — same kernel sequence, same
//! zero-init + ordered-axpy accumulation, same ReLU recompute in the
//! backward sweep. The only eager steps *not* lowered are the
//! buffer-to-buffer copies (`pooled_copy`), which are bitwise no-ops: the
//! SSA value simply flows on. The interpreter compiler therefore reproduces
//! the eager path bit for bit; the fusing compiler is free to rewrite the
//! same graph (and, e.g., delete the logits subgraph that the gradient mode
//! keeps only so the interpreter replays the eager cost model).
//!
//! Plans are cached per `(graph fingerprint, mode, compiler)` so repeated
//! evaluations of the same `(topology, geometry, batch)` triple — the hot
//! loop of every proxy sweep — compile exactly once per process.

use crate::network::CellNetwork;
use crate::{NnError, PerSampleGradients, Result};
use micronas_graph::{Compiler, Graph, Runnable, ValueId};
use micronas_searchspace::{EdgeId, Operation, NUM_NODES};
use micronas_tensor::{hash_mix, Shape, Tensor, Workspace};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Which entry point a plan lowers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PlanMode {
    /// The forward pass: logits, plus the pre-ReLU conv inputs when
    /// `collect_pre` is set (the linear-region proxy needs them).
    Forward {
        /// Collect `pre{i}` outputs in eager traversal order.
        collect_pre: bool,
    },
    /// The batched per-sample gradient sweep producing the `[n, P]` matrix.
    PerSampleGrad,
}

/// Lowers `net` at batch size `n` to a kernel graph.
pub(crate) fn lower(net: &CellNetwork, n: usize, mode: PlanMode) -> Graph {
    let config = net.config();
    let mut g = Graph::new();

    // Input slots, in the exact order `plan_inputs` supplies them.
    let batch = g.input(
        "batch",
        Shape::nchw(
            n,
            config.input_channels,
            config.input_resolution,
            config.input_resolution,
        ),
    );
    let stem_w = g.input("stem_w", net.stem.weight().shape().clone());
    let mut conv_w: Vec<Vec<Option<ValueId>>> = Vec::with_capacity(net.cells.len());
    for (cell_idx, cell) in net.cells.iter().enumerate() {
        let mut row = Vec::with_capacity(cell.edge_convs.len());
        for (e, conv) in cell.edge_convs.iter().enumerate() {
            row.push(
                conv.as_ref()
                    .map(|c| g.input(&format!("w{cell_idx}_{e}"), c.weight().shape().clone())),
            );
        }
        conv_w.push(row);
    }
    let clf_w = g.input("clf_w", net.classifier.weight().shape().clone());

    // Forward: stem → cells → pooling → classifier, exactly as
    // `forward_trace` runs it (the eager `pooled_copy` steps are bitwise
    // no-ops and are not materialised as ops).
    let stem_out = g.conv2d(batch, stem_w, net.stem.spec());
    let node_shape = g.value_shape(stem_out).clone();
    let collect_pre = matches!(mode, PlanMode::Forward { collect_pre: true });
    let mut num_pre = 0usize;
    let mut x = stem_out;
    let mut cell_nodes: Vec<Vec<ValueId>> = Vec::with_capacity(net.cells.len());
    for (cell_idx, _) in net.cells.iter().enumerate() {
        let mut nodes: Vec<ValueId> = Vec::with_capacity(NUM_NODES);
        nodes.push(x);
        for dst in 1..NUM_NODES {
            let mut acc = g.fill(0.0, node_shape.clone());
            for edge in EdgeId::all() {
                let (src, d) = edge.endpoints();
                if d != dst {
                    continue;
                }
                match net.cell.edge_ops()[edge.0] {
                    Operation::None => {}
                    Operation::SkipConnect => {
                        acc = g.axpy(acc, nodes[src], 1.0);
                    }
                    Operation::AvgPool3x3 => {
                        let c = g.avg_pool2d(nodes[src], 3, 1, 1);
                        acc = g.axpy(acc, c, 1.0);
                    }
                    Operation::NorConv1x1 | Operation::NorConv3x3 => {
                        let w = conv_w[cell_idx][edge.0].expect("conv edge always has a weight");
                        let spec = net.cells[cell_idx].edge_convs[edge.0]
                            .as_ref()
                            .expect("conv edge always has a layer")
                            .spec();
                        if collect_pre {
                            g.mark_output(&format!("pre{num_pre}"), nodes[src]);
                            num_pre += 1;
                        }
                        let act = g.relu(nodes[src]);
                        let c = g.conv2d(act, w, spec);
                        acc = g.axpy(acc, c, 1.0);
                    }
                }
            }
            nodes.push(acc);
        }
        x = nodes[NUM_NODES - 1];
        cell_nodes.push(nodes);
    }
    let features = g.global_avg_pool(x);
    let logits = g.gemm_nt(features, clf_w, n, config.channels, config.num_classes);

    match mode {
        PlanMode::Forward { .. } => {
            g.mark_output("logits", logits);
        }
        PlanMode::PerSampleGrad => {
            // `logits` stays in the graph without consumers on purpose: the
            // interpreter executes every node, replaying the eager cost
            // (the eager backward also runs on a trace that computed the
            // logits); the fusing compiler's DCE removes it.
            let p = net.num_parameters();
            let (edge_offsets, classifier_offset) = net.edge_parameter_offsets();
            let mut matrix = g.fill(0.0, Shape::d2(n, p));
            matrix = g.classifier_rows(
                features,
                matrix,
                config.num_classes,
                config.channels,
                p,
                classifier_offset,
            );
            let ones = g.fill(1.0, Shape::d2(n, config.num_classes));
            let grad_features = g.gemm_nn(ones, clf_w, n, config.num_classes, config.channels);
            let mut grad_x = g.spread_planes(grad_features, node_shape.clone());

            for (cell_idx, nodes) in cell_nodes.iter().enumerate().rev() {
                // Static replay of the eager `touched` flags: which node
                // gradients receive at least one accumulation. Untouched
                // node gradients (other than the node-0 carry) are never
                // read by the eager sweep either, so skipping their
                // zero-fill changes no output value.
                let mut touched = [false; NUM_NODES];
                touched[NUM_NODES - 1] = true;
                for edge in EdgeId::all().iter().rev() {
                    let (src, dst) = edge.endpoints();
                    if touched[dst] && net.cell.edge_ops()[edge.0] != Operation::None {
                        touched[src] = true;
                    }
                }

                let mut node_grads: Vec<Option<ValueId>> = (0..NUM_NODES - 1)
                    .map(|i| (touched[i] || i == 0).then(|| g.fill(0.0, node_shape.clone())))
                    .collect();
                node_grads.push(Some(grad_x));

                let mut live = [false; NUM_NODES];
                live[NUM_NODES - 1] = true;
                for edge in EdgeId::all().iter().rev() {
                    let (src, dst) = edge.endpoints();
                    if !live[dst] {
                        continue;
                    }
                    let upstream = node_grads[dst].expect("live node has a gradient");
                    match net.cell.edge_ops()[edge.0] {
                        Operation::None => {}
                        Operation::SkipConnect => {
                            let acc = node_grads[src].expect("touched node has a fill");
                            node_grads[src] = Some(g.axpy(acc, upstream, 1.0));
                            live[src] = true;
                        }
                        Operation::AvgPool3x3 => {
                            let gsrc = g.avg_pool2d_backward(upstream, node_shape.clone(), 3, 1, 1);
                            let acc = node_grads[src].expect("touched node has a fill");
                            node_grads[src] = Some(g.axpy(acc, gsrc, 1.0));
                            live[src] = true;
                        }
                        Operation::NorConv1x1 | Operation::NorConv3x3 => {
                            let conv = net.cells[cell_idx].edge_convs[edge.0]
                                .as_ref()
                                .expect("conv edge always has a layer");
                            let w =
                                conv_w[cell_idx][edge.0].expect("conv edge always has a weight");
                            let act = g.relu(nodes[src]);
                            matrix = g.per_sample_grad_w(
                                act,
                                upstream,
                                matrix,
                                conv.out_channels(),
                                conv.spec(),
                                p,
                                edge_offsets[cell_idx][edge.0],
                            );
                            let gin = g.conv2d_backward_input(
                                w,
                                upstream,
                                node_shape.clone(),
                                conv.spec(),
                            );
                            let gin = g.relu_mask(gin, nodes[src]);
                            let acc = node_grads[src].expect("touched node has a fill");
                            node_grads[src] = Some(g.axpy(acc, gin, 1.0));
                            live[src] = true;
                        }
                    }
                }
                grad_x = node_grads[0].expect("node 0 gradient always exists");
            }

            matrix = g.per_sample_grad_w(
                batch,
                grad_x,
                matrix,
                net.stem.out_channels(),
                net.stem.spec(),
                p,
                0,
            );
            g.mark_output("matrix", matrix);
        }
    }
    g
}

/// Ordered input tensors for a plan built by [`lower`]: batch, stem weight,
/// conv-edge weights in `(cell, edge)` order, classifier weight.
pub(crate) fn plan_inputs<'a>(net: &'a CellNetwork, batch: &'a Tensor) -> Vec<&'a Tensor> {
    let mut v: Vec<&Tensor> = Vec::with_capacity(2 + net.cells.len() * 2);
    v.push(batch);
    v.push(net.stem.weight());
    for cell in &net.cells {
        for conv in cell.edge_convs.iter().flatten() {
            v.push(conv.weight());
        }
    }
    v.push(net.classifier.weight());
    v
}

/// Process-wide compiled-plan cache. Keys fold the lowered graph's
/// structural fingerprint with the mode and the compiler identity, so two
/// networks with the same `(topology, geometry, batch)` share one compiled
/// plan per compiler while divergent compilers never collide.
static PLAN_CACHE: OnceLock<Mutex<HashMap<u64, Arc<dyn Runnable>>>> = OnceLock::new();

/// Soft cap on cached plans; the cache is cleared wholesale beyond it
/// (sweeps cycle through a small set of geometries, so eviction precision
/// does not matter — staying bounded does).
const PLAN_CACHE_CAP: usize = 1024;

/// Returns the compiled plan for `(net, n, mode)` under `compiler`,
/// compiling and caching it on first use.
pub(crate) fn compiled_plan(
    net: &CellNetwork,
    n: usize,
    mode: PlanMode,
    compiler: &Arc<dyn Compiler>,
) -> Result<Arc<dyn Runnable>> {
    let graph = lower(net, n, mode);
    let mut key = graph.fingerprint();
    key = hash_mix(
        key,
        match mode {
            PlanMode::Forward { collect_pre } => 1 + collect_pre as u64,
            PlanMode::PerSampleGrad => 3,
        },
    );
    for b in compiler.id().bytes() {
        key = hash_mix(key, b as u64);
    }
    key = hash_mix(key, compiler.config_fingerprint());

    let cache = PLAN_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    {
        let map = cache.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(plan) = map.get(&key) {
            micronas_telemetry::counter_add("graph.plan_cache.hits", 1);
            return Ok(Arc::clone(plan));
        }
    }
    micronas_telemetry::counter_add("graph.plan_cache.misses", 1);
    // Compile outside the lock: compilation can be slow and concurrent
    // sweeps must not serialise on it. A racing duplicate compile is
    // harmless (last insert wins; both plans are equivalent).
    let plan: Arc<dyn Runnable> = Arc::from(compiler.compile(&graph)?);
    let mut map = cache.lock().unwrap_or_else(|e| e.into_inner());
    if map.len() >= PLAN_CACHE_CAP {
        map.clear();
    }
    map.insert(key, Arc::clone(&plan));
    Ok(plan)
}

/// Runs the graph-path forward pass.
pub(crate) fn forward_graph(
    net: &CellNetwork,
    input: &Tensor,
    workspace: &mut Workspace,
    compiler: &Arc<dyn Compiler>,
) -> Result<crate::ForwardOutput> {
    let n = input.shape().dims()[0];
    let plan = compiled_plan(net, n, PlanMode::Forward { collect_pre: true }, compiler)?;
    let inputs = plan_inputs(net, input);
    let mut outs = plan.run(&**net.backend(), &inputs, workspace)?;
    let logits = outs
        .take_tensor("logits")
        .ok_or_else(|| NnError::Graph("plan produced no `logits` output".into()))?;
    let mut pre_activations = Vec::new();
    let mut i = 0usize;
    while let Some(t) = outs.take_tensor(&format!("pre{i}")) {
        pre_activations.push(t);
        i += 1;
    }
    Ok(crate::ForwardOutput {
        logits,
        pre_activations,
    })
}

/// Runs the graph-path batched per-sample gradient sweep.
pub(crate) fn per_sample_gradient_matrix_graph(
    net: &CellNetwork,
    batch: &Tensor,
    workspace: &mut Workspace,
    compiler: &Arc<dyn Compiler>,
) -> Result<PerSampleGradients> {
    let n = batch.shape().dims()[0];
    let p = net.num_parameters();
    let plan = compiled_plan(net, n, PlanMode::PerSampleGrad, compiler)?;
    let inputs = plan_inputs(net, batch);
    let mut outs = plan.run(&**net.backend(), &inputs, workspace)?;
    let matrix = outs
        .take_tensor("matrix")
        .ok_or_else(|| NnError::Graph("plan produced no `matrix` output".into()))?;
    Ok(PerSampleGradients::new(n, p, matrix.into_vec()))
}
