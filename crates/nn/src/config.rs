use crate::NnError;
use micronas_tensor::InitKind;
use serde::{Deserialize, Serialize};

/// Geometry and initialisation of the proxy network used for zero-cost
/// indicator evaluation.
///
/// The paper evaluates proxies on the full NAS-Bench-201 skeleton on a GPU;
/// here the channel count, cell count and input resolution are configurable
/// so the NTK and linear-region computations stay fast on a CPU while
/// preserving the architecture ranking (see the Fig. 2 reproduction for the
/// ranking-stability evidence).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProxyNetworkConfig {
    /// Number of input image channels (3 for all datasets in the paper).
    pub input_channels: usize,
    /// Input resolution (height = width).
    pub input_resolution: usize,
    /// Channel width used for the stem and every cell.
    pub channels: usize,
    /// Number of stacked copies of the searched cell.
    pub num_cells: usize,
    /// Number of output classes.
    pub num_classes: usize,
    /// Weight initialisation scheme.
    pub init: InitKind,
}

impl ProxyNetworkConfig {
    /// A tiny configuration for unit tests and fast NTK evaluation:
    /// 8×8 inputs, 4 channels, a single cell.
    pub fn tiny(num_classes: usize) -> Self {
        Self {
            input_channels: 3,
            input_resolution: 8,
            channels: 4,
            num_cells: 1,
            num_classes,
            init: InitKind::KaimingNormal,
        }
    }

    /// A small-but-meaningful configuration: 12×12 inputs, 6 channels, one
    /// cell. This is the smallest geometry at which the NTK condition number
    /// still orders architectures the way the full-scale networks do, so it
    /// is used by the fast proxy presets and by the test suite's
    /// shape-checking experiments.
    pub fn small(num_classes: usize) -> Self {
        Self {
            input_channels: 3,
            input_resolution: 12,
            channels: 6,
            num_cells: 1,
            num_classes,
            init: InitKind::KaimingNormal,
        }
    }

    /// The configuration used by the proxy evaluations in the benchmarks:
    /// 16×16 inputs, 8 channels, two stacked cells.
    pub fn proxy_default(num_classes: usize) -> Self {
        Self {
            input_channels: 3,
            input_resolution: 16,
            channels: 8,
            num_cells: 2,
            num_classes,
            init: InitKind::KaimingNormal,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if any dimension is zero.
    pub fn validate(&self) -> Result<(), NnError> {
        if self.input_channels == 0
            || self.input_resolution == 0
            || self.channels == 0
            || self.num_cells == 0
            || self.num_classes == 0
        {
            return Err(NnError::InvalidConfig(
                "all dimensions of the proxy network must be positive".to_string(),
            ));
        }
        Ok(())
    }
}

impl Default for ProxyNetworkConfig {
    fn default() -> Self {
        Self::proxy_default(10)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        assert!(ProxyNetworkConfig::tiny(10).validate().is_ok());
        assert!(ProxyNetworkConfig::small(10).validate().is_ok());
        assert!(ProxyNetworkConfig::proxy_default(100).validate().is_ok());
        assert!(ProxyNetworkConfig::default().validate().is_ok());
    }

    #[test]
    fn zero_dimension_rejected() {
        let mut cfg = ProxyNetworkConfig::tiny(10);
        cfg.channels = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = ProxyNetworkConfig::tiny(10);
        cfg.num_classes = 0;
        assert!(cfg.validate().is_err());
    }
}
