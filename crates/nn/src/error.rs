use micronas_tensor::TensorError;
use std::fmt;

/// Errors produced while building or evaluating proxy networks.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// A tensor-level operation failed.
    Tensor(TensorError),
    /// The supplied input does not match the network's expected geometry.
    InputMismatch {
        /// Expected NCHW dimensions (batch is free, so 0 means "any").
        expected: [usize; 4],
        /// The dimensions that were supplied.
        actual: Vec<usize>,
    },
    /// A configuration value was invalid.
    InvalidConfig(String),
    /// Building or running a compiled kernel-graph plan failed.
    Graph(String),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor operation failed: {e}"),
            NnError::InputMismatch { expected, actual } => write!(
                f,
                "input shape {actual:?} does not match expected [N, {}, {}, {}]",
                expected[1], expected[2], expected[3]
            ),
            NnError::InvalidConfig(msg) => write!(f, "invalid network configuration: {msg}"),
            NnError::Graph(msg) => write!(f, "kernel-graph plan failed: {msg}"),
        }
    }
}

impl std::error::Error for NnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

impl From<micronas_graph::GraphError> for NnError {
    fn from(e: micronas_graph::GraphError) -> Self {
        match e {
            micronas_graph::GraphError::Tensor(t) => NnError::Tensor(t),
            other => NnError::Graph(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let err = NnError::Tensor(TensorError::InvalidArgument("x".into()));
        assert!(err.to_string().contains("tensor operation failed"));
        assert!(err.source().is_some());
        let err = NnError::InvalidConfig("bad".into());
        assert!(err.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }
}
