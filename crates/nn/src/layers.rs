//! Parameterised layers with explicit forward and backward passes.

use crate::Result;
use micronas_tensor::{
    conv2d_backward_input_with, conv2d_backward_weight_with, conv2d_with, gemm_nn, gemm_nt,
    gemm_tn, Conv2dSpec, InitKind, KernelBackend, Shape, Tensor, Workspace,
};
use serde::{Deserialize, Serialize};

/// A bias-free 2-D convolution layer.
///
/// NAS-Bench-201 cell convolutions are ReLU–Conv–BN blocks; at random
/// initialisation the batch-norm is an affine identity up to a per-channel
/// scale, so the proxy network omits it (the NTK and linear-region rankings
/// are unaffected by a per-channel rescale, which is absorbed by the Kaiming
/// initialisation). The ReLU is applied by the caller so this type stays a
/// pure linear operator with a well-defined weight gradient.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConvLayer {
    weight: Tensor,
    spec: Conv2dSpec,
}

impl ConvLayer {
    /// Creates a convolution layer with freshly initialised weights.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        init: InitKind,
        seed: u64,
    ) -> Self {
        let weight = init.init(Shape::nchw(out_channels, in_channels, kernel, kernel), seed);
        Self {
            weight,
            spec: Conv2dSpec::new(kernel, stride, padding),
        }
    }

    /// The convolution geometry.
    pub fn spec(&self) -> Conv2dSpec {
        self.spec
    }

    /// The weight tensor (`[out_c, in_c, k, k]`).
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// Mutable access to the weights (used by perturbation ablations).
    pub fn weight_mut(&mut self) -> &mut Tensor {
        &mut self.weight
    }

    /// Number of trainable parameters.
    pub fn num_parameters(&self) -> usize {
        self.weight.numel()
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.weight.shape().dims()[0]
    }

    /// Forward pass.
    ///
    /// # Errors
    ///
    /// Propagates tensor-shape errors from the convolution kernel.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor> {
        self.forward_with(input, &mut Workspace::default())
    }

    /// Forward pass reusing an explicit scratch [`Workspace`].
    ///
    /// # Errors
    ///
    /// Propagates tensor-shape errors from the convolution kernel.
    pub fn forward_with(&self, input: &Tensor, workspace: &mut Workspace) -> Result<Tensor> {
        Ok(conv2d_with(input, &self.weight, self.spec, workspace)?)
    }

    /// Forward pass drawing the output tensor from the workspace recycling
    /// pool (see [`micronas_tensor::conv2d_pooled`]); numerically identical
    /// to [`ConvLayer::forward_with`].
    ///
    /// # Errors
    ///
    /// Propagates tensor-shape errors from the convolution kernel.
    pub fn forward_pooled(&self, input: &Tensor, workspace: &mut Workspace) -> Result<Tensor> {
        Ok(micronas_tensor::conv2d_pooled(
            input,
            &self.weight,
            self.spec,
            workspace,
        )?)
    }

    /// Forward pass dispatched through an execution backend. With the
    /// paper-default backend this is bitwise-identical to
    /// [`ConvLayer::forward_pooled`].
    ///
    /// # Errors
    ///
    /// Propagates tensor-shape errors from the backend kernel.
    pub fn forward_on(
        &self,
        backend: &dyn KernelBackend,
        input: &Tensor,
        workspace: &mut Workspace,
    ) -> Result<Tensor> {
        Ok(backend.conv2d(input, &self.weight, self.spec, workspace)?)
    }

    /// Backward pass dispatched through an execution backend: returns
    /// `(grad_weight, grad_input)`. With the paper-default backend the
    /// values are bitwise-identical to [`ConvLayer::backward_with`].
    ///
    /// # Errors
    ///
    /// Propagates tensor-shape errors, and the backend's gradients-
    /// unsupported error for inference-only backends.
    pub fn backward_on(
        &self,
        backend: &dyn KernelBackend,
        input: &Tensor,
        grad_out: &Tensor,
        workspace: &mut Workspace,
    ) -> Result<(Tensor, Tensor)> {
        let grad_w = backend.conv2d_backward_weight(
            input,
            grad_out,
            self.out_channels(),
            self.spec,
            workspace,
        )?;
        let grad_in = backend.conv2d_backward_input(
            &self.weight,
            grad_out,
            input.shape(),
            self.spec,
            workspace,
        )?;
        Ok((grad_w, grad_in))
    }

    /// Backward pass: returns `(grad_weight, grad_input)` for the upstream
    /// gradient `grad_out`.
    ///
    /// # Errors
    ///
    /// Propagates tensor-shape errors from the convolution kernels.
    pub fn backward(&self, input: &Tensor, grad_out: &Tensor) -> Result<(Tensor, Tensor)> {
        self.backward_with(input, grad_out, &mut Workspace::default())
    }

    /// Backward pass reusing an explicit scratch [`Workspace`].
    ///
    /// # Errors
    ///
    /// Propagates tensor-shape errors from the convolution kernels.
    pub fn backward_with(
        &self,
        input: &Tensor,
        grad_out: &Tensor,
        workspace: &mut Workspace,
    ) -> Result<(Tensor, Tensor)> {
        let grad_w = conv2d_backward_weight_with(
            input,
            grad_out,
            self.out_channels(),
            self.spec,
            workspace,
        )?;
        let grad_in = conv2d_backward_input_with(
            &self.weight,
            grad_out,
            input.shape(),
            self.spec,
            workspace,
        )?;
        Ok((grad_w, grad_in))
    }
}

/// A bias-free fully connected layer mapping `[N, in]` to `[N, out]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearLayer {
    /// Weight of shape `[out, in]`.
    weight: Tensor,
}

impl LinearLayer {
    /// Creates a linear layer with freshly initialised weights.
    pub fn new(in_features: usize, out_features: usize, init: InitKind, seed: u64) -> Self {
        Self {
            weight: init.init(Shape::d2(out_features, in_features), seed),
        }
    }

    /// Creates a linear layer from an explicit `[out, in]` weight matrix.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not rank 2.
    pub fn from_weight(weight: Tensor) -> Self {
        assert_eq!(weight.shape().rank(), 2, "linear weight must be [out, in]");
        Self { weight }
    }

    /// The weight tensor (`[out, in]`).
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// Number of trainable parameters.
    pub fn num_parameters(&self) -> usize {
        self.weight.numel()
    }

    /// Forward pass: `output = input · weightᵀ`.
    ///
    /// Runs as a single transpose-free `A · Bᵀ` GEMM (the weight is stored
    /// `[out, in]`, exactly the layout [`gemm_nt`] wants).
    ///
    /// # Errors
    ///
    /// Propagates tensor-shape errors.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor> {
        let (batch, in_features) = self.check_input(input)?;
        let out_features = self.weight.shape().dims()[0];
        let mut out = Tensor::zeros(Shape::d2(batch, out_features));
        gemm_nt(
            batch,
            in_features,
            out_features,
            input.data(),
            self.weight.data(),
            out.data_mut(),
            false,
        );
        Ok(out)
    }

    /// [`LinearLayer::forward`] dispatched through an execution backend
    /// (bitwise-identical under the paper default).
    ///
    /// # Errors
    ///
    /// Propagates tensor-shape errors.
    pub fn forward_on(&self, backend: &dyn KernelBackend, input: &Tensor) -> Result<Tensor> {
        let (batch, in_features) = self.check_input(input)?;
        let out_features = self.weight.shape().dims()[0];
        let mut out = Tensor::zeros(Shape::d2(batch, out_features));
        backend.gemm_nt(
            batch,
            in_features,
            out_features,
            input.data(),
            self.weight.data(),
            out.data_mut(),
            false,
        );
        Ok(out)
    }

    /// [`LinearLayer::backward`] dispatched through an execution backend
    /// (bitwise-identical under the paper default).
    ///
    /// # Errors
    ///
    /// Propagates tensor-shape errors.
    pub fn backward_on(
        &self,
        backend: &dyn KernelBackend,
        input: &Tensor,
        grad_out: &Tensor,
    ) -> Result<(Tensor, Tensor)> {
        let (batch, in_features) = self.check_input(input)?;
        let out_features = self.weight.shape().dims()[0];
        let gd = grad_out.shape().dims();
        if gd.len() != 2 || gd[0] != batch || gd[1] != out_features {
            return Err(crate::NnError::from(
                micronas_tensor::TensorError::IncompatibleShapes {
                    op: "linear backward",
                    lhs: gd.to_vec(),
                    rhs: vec![batch, out_features],
                },
            ));
        }
        let mut grad_w = Tensor::zeros(self.weight.shape().clone());
        backend.gemm_tn(
            out_features,
            batch,
            in_features,
            grad_out.data(),
            input.data(),
            grad_w.data_mut(),
            false,
        );
        let mut grad_in = Tensor::zeros(Shape::d2(batch, in_features));
        backend.gemm_nn(
            batch,
            out_features,
            in_features,
            grad_out.data(),
            self.weight.data(),
            grad_in.data_mut(),
            false,
        );
        Ok((grad_w, grad_in))
    }

    /// Backward pass: returns `(grad_weight, grad_input)`.
    ///
    /// # Errors
    ///
    /// Propagates tensor-shape errors.
    pub fn backward(&self, input: &Tensor, grad_out: &Tensor) -> Result<(Tensor, Tensor)> {
        let (batch, in_features) = self.check_input(input)?;
        let out_features = self.weight.shape().dims()[0];
        let gd = grad_out.shape().dims();
        if gd.len() != 2 || gd[0] != batch || gd[1] != out_features {
            return Err(crate::NnError::from(
                micronas_tensor::TensorError::IncompatibleShapes {
                    op: "linear backward",
                    lhs: gd.to_vec(),
                    rhs: vec![batch, out_features],
                },
            ));
        }
        // grad_w [out, in] = grad_outᵀ [out, N] · input [N, in]
        let mut grad_w = Tensor::zeros(self.weight.shape().clone());
        gemm_tn(
            out_features,
            batch,
            in_features,
            grad_out.data(),
            input.data(),
            grad_w.data_mut(),
            false,
        );
        // grad_in [N, in] = grad_out [N, out] · weight [out, in]
        let mut grad_in = Tensor::zeros(Shape::d2(batch, in_features));
        gemm_nn(
            batch,
            out_features,
            in_features,
            grad_out.data(),
            self.weight.data(),
            grad_in.data_mut(),
            false,
        );
        Ok((grad_w, grad_in))
    }

    fn check_input(&self, input: &Tensor) -> Result<(usize, usize)> {
        let id = input.shape().dims();
        let in_features = self.weight.shape().dims()[1];
        if id.len() != 2 || id[1] != in_features {
            return Err(crate::NnError::from(
                micronas_tensor::TensorError::IncompatibleShapes {
                    op: "linear forward",
                    lhs: id.to_vec(),
                    rhs: vec![id.first().copied().unwrap_or(0), in_features],
                },
            ));
        }
        Ok((id[0], in_features))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use micronas_tensor::DeterministicRng;

    fn random_tensor(shape: Shape, seed: u64) -> Tensor {
        let mut rng = DeterministicRng::new(seed);
        let data = (0..shape.numel()).map(|_| rng.normal()).collect();
        Tensor::from_vec(shape, data).unwrap()
    }

    #[test]
    fn conv_layer_shapes_and_params() {
        let layer = ConvLayer::new(3, 8, 3, 1, 1, InitKind::KaimingNormal, 1);
        assert_eq!(layer.num_parameters(), 8 * 3 * 3 * 3);
        assert_eq!(layer.out_channels(), 8);
        let input = random_tensor(Shape::nchw(2, 3, 8, 8), 2);
        let out = layer.forward(&input).unwrap();
        assert_eq!(out.shape().dims(), &[2, 8, 8, 8]);
    }

    #[test]
    fn conv_layer_backward_shapes() {
        let layer = ConvLayer::new(4, 6, 3, 1, 1, InitKind::KaimingNormal, 3);
        let input = random_tensor(Shape::nchw(1, 4, 5, 5), 4);
        let out = layer.forward(&input).unwrap();
        let grad_out = Tensor::ones(out.shape().clone());
        let (gw, gi) = layer.backward(&input, &grad_out).unwrap();
        assert_eq!(gw.shape(), layer.weight().shape());
        assert_eq!(gi.shape(), input.shape());
    }

    #[test]
    fn linear_forward_matches_manual() {
        let mut layer = LinearLayer::new(2, 2, InitKind::KaimingNormal, 5);
        // Overwrite weights with known values: [[1, 2], [3, 4]]
        layer.weight = Tensor::from_vec(Shape::d2(2, 2), vec![1., 2., 3., 4.]).unwrap();
        let input = Tensor::from_vec(Shape::d2(1, 2), vec![5., 6.]).unwrap();
        let out = layer.forward(&input).unwrap();
        assert_eq!(out.data(), &[17., 39.]);
    }

    #[test]
    fn linear_backward_finite_difference() {
        let layer = LinearLayer::new(6, 4, InitKind::XavierUniform, 7);
        let input = random_tensor(Shape::d2(3, 6), 8);
        let out = layer.forward(&input).unwrap();
        let grad_out = Tensor::ones(out.shape().clone());
        let (gw, gi) = layer.backward(&input, &grad_out).unwrap();
        assert_eq!(gw.shape().dims(), &[4, 6]);
        assert_eq!(gi.shape().dims(), &[3, 6]);

        // Finite difference on a few weight entries.
        let eps = 1e-2f32;
        let mut perturbed = layer.clone();
        for &idx in &[0usize, 5, 13, 23] {
            let orig = perturbed.weight.data()[idx];
            perturbed.weight.data_mut()[idx] = orig + eps;
            let plus = perturbed.forward(&input).unwrap().sum();
            perturbed.weight.data_mut()[idx] = orig - eps;
            let minus = perturbed.forward(&input).unwrap().sum();
            perturbed.weight.data_mut()[idx] = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            assert!((numeric - gw.data()[idx]).abs() < 1e-2 * (1.0 + numeric.abs()));
        }
    }

    #[test]
    fn deterministic_initialisation() {
        let a = ConvLayer::new(3, 4, 3, 1, 1, InitKind::KaimingNormal, 9);
        let b = ConvLayer::new(3, 4, 3, 1, 1, InitKind::KaimingNormal, 9);
        assert_eq!(a.weight(), b.weight());
        let c = ConvLayer::new(3, 4, 3, 1, 1, InitKind::KaimingNormal, 10);
        assert_ne!(a.weight(), c.weight());
    }
}
