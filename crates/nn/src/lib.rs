//! Minimal neural-network substrate for zero-cost proxy evaluation.
//!
//! MicroNAS never trains a network: every indicator is computed at random
//! initialisation. What the proxies *do* need is
//!
//! 1. a forward pass through the candidate cell (for ReLU activation
//!    patterns, i.e. the linear-region count), and
//! 2. per-sample gradients of the network output with respect to **all**
//!    parameters (for the neural-tangent-kernel Gram matrix).
//!
//! This crate therefore provides a compact, explicitly differentiated
//! implementation of the NAS-Bench-201 cell network: a stem convolution, a
//! configurable stack of searched cells, global average pooling and a linear
//! classifier. Backpropagation is hand-written layer by layer on top of the
//! kernels in [`micronas_tensor`]; no autograd tape is required because the
//! topology is fixed and small.
//!
//! # Example
//!
//! ```
//! use micronas_nn::{CellNetwork, ProxyNetworkConfig};
//! use micronas_searchspace::SearchSpace;
//! use micronas_tensor::{Shape, Tensor};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let space = SearchSpace::nas_bench_201();
//! let cell = space.cell(8_888)?;
//! let config = ProxyNetworkConfig::tiny(10);
//! let net = CellNetwork::new(&cell, &config, 42)?;
//!
//! let input = Tensor::zeros(Shape::nchw(2, 3, config.input_resolution, config.input_resolution));
//! let output = net.forward(&input)?;
//! assert_eq!(output.logits.shape().dims(), &[2, 10]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod config;
mod error;
mod gradient;
mod layers;
mod network;
mod plan;

pub use config::ProxyNetworkConfig;
pub use error::NnError;
pub use gradient::{ParameterGradients, PerSampleGradients};
pub use layers::{ConvLayer, LinearLayer};
pub use network::{
    pack_kernel_stats, CellNetwork, CellNetworkPack, ForwardOutput, PackKernelStats,
};

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, NnError>;
