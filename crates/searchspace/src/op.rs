use crate::SearchSpaceError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Number of candidate operations per edge (NAS-Bench-201 uses five).
pub const NUM_OPERATIONS: usize = 5;

/// The five candidate operations of the NAS-Bench-201 search space.
///
/// The discriminant order matches the canonical NAS-Bench-201 op list so that
/// architecture indices computed here agree with the reference enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Operation {
    /// The `none` (zeroize) operation: the edge outputs all zeros.
    None,
    /// Identity / skip connection.
    SkipConnect,
    /// 1×1 convolution (ReLU-Conv-BN block in the reference space).
    NorConv1x1,
    /// 3×3 convolution (ReLU-Conv-BN block in the reference space).
    NorConv3x3,
    /// 3×3 average pooling, stride 1, padding 1.
    AvgPool3x3,
}

/// All operations in canonical NAS-Bench-201 order.
pub const ALL_OPERATIONS: [Operation; NUM_OPERATIONS] = [
    Operation::None,
    Operation::SkipConnect,
    Operation::NorConv1x1,
    Operation::NorConv3x3,
    Operation::AvgPool3x3,
];

impl Operation {
    /// Canonical NAS-Bench-201 name of the operation.
    pub fn name(self) -> &'static str {
        match self {
            Operation::None => "none",
            Operation::SkipConnect => "skip_connect",
            Operation::NorConv1x1 => "nor_conv_1x1",
            Operation::NorConv3x3 => "nor_conv_3x3",
            Operation::AvgPool3x3 => "avg_pool_3x3",
        }
    }

    /// Index of the operation in [`ALL_OPERATIONS`].
    pub fn index(self) -> usize {
        match self {
            Operation::None => 0,
            Operation::SkipConnect => 1,
            Operation::NorConv1x1 => 2,
            Operation::NorConv3x3 => 3,
            Operation::AvgPool3x3 => 4,
        }
    }

    /// Operation corresponding to an index in [`ALL_OPERATIONS`].
    ///
    /// # Errors
    ///
    /// Returns [`SearchSpaceError::UnknownOperation`] for indices ≥ 5.
    pub fn from_index(index: usize) -> Result<Self, SearchSpaceError> {
        ALL_OPERATIONS
            .get(index)
            .copied()
            .ok_or_else(|| SearchSpaceError::UnknownOperation(format!("op index {index}")))
    }

    /// Whether the operation carries trainable parameters.
    pub fn is_parameterized(self) -> bool {
        matches!(self, Operation::NorConv1x1 | Operation::NorConv3x3)
    }

    /// Whether the operation passes information at all (everything except `none`).
    pub fn carries_signal(self) -> bool {
        !matches!(self, Operation::None)
    }

    /// Kernel size of the operation's spatial window (1 for skip/none).
    pub fn kernel_size(self) -> usize {
        match self {
            Operation::None | Operation::SkipConnect | Operation::NorConv1x1 => 1,
            Operation::NorConv3x3 | Operation::AvgPool3x3 => 3,
        }
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Operation {
    type Err = SearchSpaceError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "none" => Ok(Operation::None),
            "skip_connect" => Ok(Operation::SkipConnect),
            "nor_conv_1x1" => Ok(Operation::NorConv1x1),
            "nor_conv_3x3" => Ok(Operation::NorConv3x3),
            "avg_pool_3x3" => Ok(Operation::AvgPool3x3),
            other => Err(SearchSpaceError::UnknownOperation(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        for (i, op) in ALL_OPERATIONS.iter().enumerate() {
            assert_eq!(op.index(), i);
            assert_eq!(Operation::from_index(i).unwrap(), *op);
        }
        assert!(Operation::from_index(5).is_err());
    }

    #[test]
    fn roundtrip_name() {
        for op in ALL_OPERATIONS {
            assert_eq!(op.name().parse::<Operation>().unwrap(), op);
        }
        assert!("sep_conv_5x5".parse::<Operation>().is_err());
    }

    #[test]
    fn classification_flags() {
        assert!(Operation::NorConv3x3.is_parameterized());
        assert!(Operation::NorConv1x1.is_parameterized());
        assert!(!Operation::AvgPool3x3.is_parameterized());
        assert!(!Operation::None.carries_signal());
        assert!(Operation::SkipConnect.carries_signal());
    }

    #[test]
    fn kernel_sizes() {
        assert_eq!(Operation::NorConv3x3.kernel_size(), 3);
        assert_eq!(Operation::AvgPool3x3.kernel_size(), 3);
        assert_eq!(Operation::NorConv1x1.kernel_size(), 1);
        assert_eq!(Operation::SkipConnect.kernel_size(), 1);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Operation::NorConv3x3.to_string(), "nor_conv_3x3");
    }
}
