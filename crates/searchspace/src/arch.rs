use crate::{CellTopology, SearchSpace, SearchSpaceError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A concrete architecture: a cell plus its position in the space enumeration.
///
/// The index is the canonical handle used by the surrogate benchmark, the
/// hardware estimators and the search algorithms; the cell describes the
/// actual wiring.
///
/// # Example
///
/// ```
/// use micronas_searchspace::{Architecture, SearchSpace};
/// let space = SearchSpace::nas_bench_201();
/// let arch = Architecture::from_index(&space, 777).unwrap();
/// assert_eq!(arch.index(), 777);
/// println!("{arch}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Architecture {
    index: usize,
    cell: CellTopology,
}

impl Architecture {
    /// Creates an architecture from an already-decoded (index, cell) pair.
    ///
    /// The caller is responsible for the pair being consistent; use
    /// [`Architecture::from_index`] or [`Architecture::from_cell`] when in
    /// doubt.
    pub fn new(index: usize, cell: CellTopology) -> Self {
        Self { index, cell }
    }

    /// Decodes the architecture at `index` in `space`.
    ///
    /// # Errors
    ///
    /// Returns [`SearchSpaceError::IndexOutOfRange`] if the index is outside
    /// the space.
    pub fn from_index(space: &SearchSpace, index: usize) -> Result<Self, SearchSpaceError> {
        space.architecture(index)
    }

    /// Builds the architecture corresponding to a cell, computing its index.
    pub fn from_cell(space: &SearchSpace, cell: CellTopology) -> Self {
        Self {
            index: space.index_of(&cell),
            cell,
        }
    }

    /// Index of the architecture in the space enumeration.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The cell topology.
    pub fn cell(&self) -> &CellTopology {
        &self.cell
    }

    /// The canonical NAS-Bench-201 architecture string.
    pub fn arch_string(&self) -> String {
        self.cell.to_string()
    }
}

impl fmt::Display for Architecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{} {}", self.index, self.cell)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EdgeId, Operation};

    #[test]
    fn from_cell_matches_from_index() {
        let space = SearchSpace::nas_bench_201();
        let cell = space.cell(4242).unwrap();
        let a = Architecture::from_cell(&space, cell);
        let b = Architecture::from_index(&space, 4242).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn display_contains_index_and_string() {
        let space = SearchSpace::nas_bench_201();
        let arch = Architecture::from_index(&space, 3).unwrap();
        let s = arch.to_string();
        assert!(s.starts_with("#3 "));
        assert!(s.contains('~'));
    }

    #[test]
    fn arch_string_parses_back_to_same_cell() {
        let space = SearchSpace::nas_bench_201();
        let arch = Architecture::from_index(&space, 9_999).unwrap();
        let parsed: CellTopology = arch.arch_string().parse().unwrap();
        assert_eq!(&parsed, arch.cell());
    }

    #[test]
    fn modified_cell_changes_index() {
        let space = SearchSpace::nas_bench_201();
        let arch = Architecture::from_index(&space, 0).unwrap();
        let cell2 = arch
            .cell()
            .with_op(EdgeId(0), Operation::NorConv3x3)
            .unwrap();
        let arch2 = Architecture::from_cell(&space, cell2);
        assert_ne!(arch2.index(), arch.index());
        assert_eq!(arch2.index(), Operation::NorConv3x3.index());
    }
}
