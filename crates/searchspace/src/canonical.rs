//! Canonical (isomorphism-invariant) cell representatives.
//!
//! Two NAS-Bench-201 cells can describe the same architecture under a
//! relabeling of the *intermediate* nodes. The cell DAG fixes node 0 as the
//! cell input and node 3 as the cell output, so the only relabeling freedom
//! is swapping the intermediate nodes 1 and 2. That swap maps the internal
//! edge `1→2` onto the reversed pair `2→1`, which the encoding cannot
//! express — so the swap is a valid isomorphism exactly when edge `1→2`
//! carries the `none` operation (no signal, nothing to reverse).
//!
//! [`CellTopology::canonical_form`] picks one representative per isomorphism
//! orbit: the lexicographically smallest operation assignment (compared by
//! [`Operation::index`] over the canonical edge order). Every orbit has at
//! most two members, so canonicalisation is a single comparison.
//!
//! Canonical forms give every architecture a *content address*: a stable
//! digest of the canonical encoding identifies the architecture itself,
//! independent of which orbit member a search happened to visit. The
//! `micronas-store` crate builds its persistent evaluation keys on top of
//! this, and `micronas`'s `SearchContext` evaluates proxies on the canonical
//! representative so that isomorphic cells receive bitwise-identical scores.

use crate::{CellTopology, Operation, NUM_EDGES};

impl CellTopology {
    /// The cell obtained by swapping the intermediate nodes 1 and 2, when
    /// that swap is a valid isomorphism (edge `1→2` is `none`).
    ///
    /// In canonical edge order `[0→1, 0→2, 1→2, 0→3, 1→3, 2→3]` the swap
    /// exchanges the positions `0↔1` (the edges out of the input node) and
    /// `4↔5` (the edges into the output node).
    pub fn intermediate_swap(&self) -> Option<CellTopology> {
        let ops = self.edge_ops();
        if ops[2] != Operation::None {
            return None;
        }
        Some(CellTopology::new([
            ops[1], ops[0], ops[2], ops[3], ops[5], ops[4],
        ]))
    }

    /// The canonical representative of this cell's isomorphism orbit: the
    /// lexicographically smallest operation assignment among the cell and
    /// its valid intermediate-node relabelings.
    pub fn canonical_form(&self) -> CellTopology {
        match self.intermediate_swap() {
            Some(swapped) if encoding(&swapped) < encoding(self) => swapped,
            _ => *self,
        }
    }

    /// Whether this cell already is its orbit's canonical representative.
    pub fn is_canonical(&self) -> bool {
        self.canonical_form() == *self
    }

    /// Whether two cells describe the same architecture up to relabeling of
    /// the intermediate nodes.
    pub fn isomorphic_to(&self, other: &CellTopology) -> bool {
        self.canonical_form() == other.canonical_form()
    }
}

/// The cell's encoding as operation indices in canonical edge order, the
/// total order used to pick orbit representatives.
fn encoding(cell: &CellTopology) -> [usize; NUM_EDGES] {
    let mut out = [0usize; NUM_EDGES];
    for (slot, op) in out.iter_mut().zip(cell.edge_ops()) {
        *slot = op.index();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SearchSpace, ALL_OPERATIONS};
    use proptest::prelude::*;

    fn arb_cell() -> impl Strategy<Value = CellTopology> {
        proptest::array::uniform6(0usize..5).prop_map(|idx| {
            let mut ops = [Operation::None; NUM_EDGES];
            for (i, &k) in idx.iter().enumerate() {
                ops[i] = ALL_OPERATIONS[k];
            }
            CellTopology::new(ops)
        })
    }

    #[test]
    fn swap_requires_none_on_the_internal_edge() {
        let blocked = CellTopology::new([Operation::NorConv3x3; 6]);
        assert!(blocked.intermediate_swap().is_none());
        assert!(blocked.is_canonical());

        let open = CellTopology::new([
            Operation::NorConv3x3,
            Operation::SkipConnect,
            Operation::None,
            Operation::AvgPool3x3,
            Operation::NorConv1x1,
            Operation::None,
        ]);
        let swapped = open.intermediate_swap().unwrap();
        assert_eq!(
            swapped,
            CellTopology::new([
                Operation::SkipConnect,
                Operation::NorConv3x3,
                Operation::None,
                Operation::AvgPool3x3,
                Operation::None,
                Operation::NorConv1x1,
            ])
        );
    }

    #[test]
    fn canonical_form_picks_the_smaller_encoding() {
        // skip(1) on 0→1 beats conv3x3(3): the swapped form is canonical.
        let cell = CellTopology::new([
            Operation::NorConv3x3,
            Operation::SkipConnect,
            Operation::None,
            Operation::AvgPool3x3,
            Operation::NorConv1x1,
            Operation::None,
        ]);
        assert!(!cell.is_canonical());
        let canon = cell.canonical_form();
        assert_eq!(canon, cell.intermediate_swap().unwrap());
        assert!(canon.is_canonical());
        assert!(cell.isomorphic_to(&canon));
    }

    #[test]
    fn orbit_size_over_the_whole_space() {
        // Every orbit has one or two members; counting representatives over
        // all 15 625 cells gives the number of distinct architectures under
        // intermediate-node relabeling.
        let space = SearchSpace::nas_bench_201();
        let mut canonical = 0usize;
        for i in 0..space.len() {
            if space.cell(i).unwrap().is_canonical() {
                canonical += 1;
            }
        }
        assert!(canonical < space.len());
        // 5^5 cells have `none` on edge 1→2; of those, the ones where the
        // swapped encoding differs pair up. Orbits of size two: for e12=none,
        // pairs with (e01,e13) != (e02,e23). 5^5 - pairs... just pin the
        // counted value as a regression guard:
        assert_eq!(canonical, 14_125);
    }

    proptest! {
        #[test]
        fn canonicalisation_is_idempotent(cell in arb_cell()) {
            let canon = cell.canonical_form();
            prop_assert!(canon.is_canonical());
            prop_assert_eq!(canon.canonical_form(), canon);
        }

        #[test]
        fn swap_is_an_involution(cell in arb_cell()) {
            if let Some(swapped) = cell.intermediate_swap() {
                prop_assert_eq!(swapped.intermediate_swap().unwrap(), cell);
                prop_assert!(cell.isomorphic_to(&swapped));
            }
        }

        #[test]
        fn orbit_members_share_invariants(cell in arb_cell()) {
            let canon = cell.canonical_form();
            prop_assert_eq!(canon.op_histogram(), cell.op_histogram());
            prop_assert_eq!(
                canon.has_input_output_path(),
                cell.has_input_output_path()
            );
            prop_assert_eq!(canon.longest_path_edges(), cell.longest_path_edges());
            prop_assert_eq!(canon.effective_depth(), cell.effective_depth());
        }
    }
}
