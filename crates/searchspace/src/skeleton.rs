use crate::{CellTopology, Operation, SearchSpaceError};
use serde::{Deserialize, Serialize};

/// Coarse classification of a primitive layer instance, used by the FLOPs,
/// latency and memory estimators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// A convolution (includes the stem, cell convolutions and residual-block convolutions).
    Conv,
    /// An average-pooling operation.
    Pool,
    /// An identity / skip connection (data movement only).
    Identity,
    /// The `none` operation: produces zeros, negligible cost but kept for completeness.
    Zero,
    /// The final fully connected classifier.
    Linear,
    /// The global average pooling before the classifier.
    GlobalPool,
    /// Element-wise addition that merges node inputs or residual branches.
    Add,
}

/// Where in the macro skeleton a primitive layer instance lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerRole {
    /// The 3×3 stem convolution.
    Stem,
    /// An operation on one edge of one cell.
    Cell {
        /// Stage index (0, 1 or 2).
        stage: usize,
        /// Cell index within the stage.
        cell: usize,
        /// Edge index within the cell (0..6).
        edge: usize,
    },
    /// Part of a residual reduction block between stages.
    Reduction {
        /// Which reduction block (0 between stages 0/1, 1 between stages 1/2).
        block: usize,
    },
    /// The classifier head (global pool + linear).
    Head,
}

/// One primitive operation instance with its concrete tensor geometry.
///
/// The hardware estimators consume a flat list of these; they carry enough
/// information (kernel, stride, channels, input resolution) to compute FLOPs,
/// parameter count, activation sizes and per-op latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OpInstance {
    /// Which part of the network this instance belongs to.
    pub role: LayerRole,
    /// Operation class for cost modelling.
    pub class: OpClass,
    /// The originating cell operation, if this instance comes from a cell edge.
    pub cell_op: Option<Operation>,
    /// Square kernel size (1 for identity / linear / zero).
    pub kernel: usize,
    /// Spatial stride.
    pub stride: usize,
    /// Input channels.
    pub c_in: usize,
    /// Output channels.
    pub c_out: usize,
    /// Input height.
    pub h_in: usize,
    /// Input width.
    pub w_in: usize,
}

impl OpInstance {
    /// Output spatial height after applying this op.
    pub fn h_out(&self) -> usize {
        match self.class {
            OpClass::Linear | OpClass::GlobalPool => 1,
            _ => self.h_in.div_ceil(self.stride),
        }
    }

    /// Output spatial width after applying this op.
    pub fn w_out(&self) -> usize {
        match self.class {
            OpClass::Linear | OpClass::GlobalPool => 1,
            _ => self.w_in.div_ceil(self.stride),
        }
    }

    /// Number of input activation elements.
    pub fn input_elements(&self) -> usize {
        self.c_in * self.h_in * self.w_in
    }

    /// Number of output activation elements.
    pub fn output_elements(&self) -> usize {
        self.c_out * self.h_out() * self.w_out()
    }
}

/// Per-stage description of the macro skeleton.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StageSpec {
    /// Channel width of the stage.
    pub channels: usize,
    /// Spatial resolution (height = width) at the input of the stage.
    pub resolution: usize,
    /// Number of stacked cells.
    pub cells: usize,
}

/// The fixed NAS-Bench-201 macro skeleton into which the searched cell is
/// stacked.
///
/// Defaults follow the reference: a 3→16 stem, three stages of five cells
/// with 16/32/64 channels at 32/16/8 resolution, residual reduction blocks in
/// between and a global-pool + linear head.
///
/// # Example
///
/// ```
/// use micronas_searchspace::{MacroSkeleton, SearchSpace};
/// let space = SearchSpace::nas_bench_201();
/// let skeleton = MacroSkeleton::nas_bench_201(10);
/// let cell = space.cell(4321).unwrap();
/// let instances = skeleton.instantiate(&cell);
/// assert!(instances.len() > 90); // 15 cells x 6 edges + stem + reductions + head
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MacroSkeleton {
    input_channels: usize,
    input_resolution: usize,
    num_classes: usize,
    stages: Vec<StageSpec>,
}

impl MacroSkeleton {
    /// The standard CIFAR-sized NAS-Bench-201 skeleton (32×32×3 input,
    /// 16/32/64 channels, 5 cells per stage).
    pub fn nas_bench_201(num_classes: usize) -> Self {
        Self {
            input_channels: 3,
            input_resolution: 32,
            num_classes,
            stages: vec![
                StageSpec {
                    channels: 16,
                    resolution: 32,
                    cells: 5,
                },
                StageSpec {
                    channels: 32,
                    resolution: 16,
                    cells: 5,
                },
                StageSpec {
                    channels: 64,
                    resolution: 8,
                    cells: 5,
                },
            ],
        }
    }

    /// The ImageNet16-120 variant: 16×16 input resolution, 120 classes.
    pub fn imagenet16() -> Self {
        Self {
            input_channels: 3,
            input_resolution: 16,
            num_classes: 120,
            stages: vec![
                StageSpec {
                    channels: 16,
                    resolution: 16,
                    cells: 5,
                },
                StageSpec {
                    channels: 32,
                    resolution: 8,
                    cells: 5,
                },
                StageSpec {
                    channels: 64,
                    resolution: 4,
                    cells: 5,
                },
            ],
        }
    }

    /// A custom skeleton.
    ///
    /// # Errors
    ///
    /// Returns [`SearchSpaceError::InvalidSkeleton`] if any dimension is zero
    /// or the stage list is empty.
    pub fn custom(
        input_channels: usize,
        input_resolution: usize,
        num_classes: usize,
        stages: Vec<StageSpec>,
    ) -> Result<Self, SearchSpaceError> {
        if input_channels == 0 || input_resolution == 0 || num_classes == 0 {
            return Err(SearchSpaceError::InvalidSkeleton(
                "input channels, resolution and class count must be positive".into(),
            ));
        }
        if stages.is_empty() {
            return Err(SearchSpaceError::InvalidSkeleton(
                "at least one stage is required".into(),
            ));
        }
        if stages
            .iter()
            .any(|s| s.channels == 0 || s.resolution == 0 || s.cells == 0)
        {
            return Err(SearchSpaceError::InvalidSkeleton(
                "every stage needs positive channels, resolution and cell count".into(),
            ));
        }
        Ok(Self {
            input_channels,
            input_resolution,
            num_classes,
            stages,
        })
    }

    /// Number of classes predicted by the head.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Input image resolution (height = width).
    pub fn input_resolution(&self) -> usize {
        self.input_resolution
    }

    /// Input channel count.
    pub fn input_channels(&self) -> usize {
        self.input_channels
    }

    /// The per-stage specifications.
    pub fn stages(&self) -> &[StageSpec] {
        &self.stages
    }

    /// Total number of stacked cells across all stages.
    pub fn total_cells(&self) -> usize {
        self.stages.iter().map(|s| s.cells).sum()
    }

    /// Flattens the skeleton, with `cell` substituted into every cell slot,
    /// into a list of primitive operation instances for cost estimation.
    pub fn instantiate(&self, cell: &CellTopology) -> Vec<OpInstance> {
        let mut out = Vec::new();

        // Stem: 3x3 conv, input_channels -> first stage channels.
        let first = &self.stages[0];
        out.push(OpInstance {
            role: LayerRole::Stem,
            class: OpClass::Conv,
            cell_op: None,
            kernel: 3,
            stride: 1,
            c_in: self.input_channels,
            c_out: first.channels,
            h_in: self.input_resolution,
            w_in: self.input_resolution,
        });

        for (stage_idx, stage) in self.stages.iter().enumerate() {
            // Residual reduction block between stages.
            if stage_idx > 0 {
                let prev = &self.stages[stage_idx - 1];
                let block = stage_idx - 1;
                // conv3x3 stride 2
                out.push(OpInstance {
                    role: LayerRole::Reduction { block },
                    class: OpClass::Conv,
                    cell_op: None,
                    kernel: 3,
                    stride: 2,
                    c_in: prev.channels,
                    c_out: stage.channels,
                    h_in: prev.resolution,
                    w_in: prev.resolution,
                });
                // conv3x3 stride 1
                out.push(OpInstance {
                    role: LayerRole::Reduction { block },
                    class: OpClass::Conv,
                    cell_op: None,
                    kernel: 3,
                    stride: 1,
                    c_in: stage.channels,
                    c_out: stage.channels,
                    h_in: stage.resolution,
                    w_in: stage.resolution,
                });
                // 1x1 shortcut (avg-pool + conv in the reference; modelled as strided 1x1 conv)
                out.push(OpInstance {
                    role: LayerRole::Reduction { block },
                    class: OpClass::Conv,
                    cell_op: None,
                    kernel: 1,
                    stride: 2,
                    c_in: prev.channels,
                    c_out: stage.channels,
                    h_in: prev.resolution,
                    w_in: prev.resolution,
                });
                // Residual addition.
                out.push(OpInstance {
                    role: LayerRole::Reduction { block },
                    class: OpClass::Add,
                    cell_op: None,
                    kernel: 1,
                    stride: 1,
                    c_in: stage.channels,
                    c_out: stage.channels,
                    h_in: stage.resolution,
                    w_in: stage.resolution,
                });
            }

            // Stacked cells.
            for cell_idx in 0..stage.cells {
                for (edge_idx, &op) in cell.edge_ops().iter().enumerate() {
                    let class = match op {
                        Operation::None => OpClass::Zero,
                        Operation::SkipConnect => OpClass::Identity,
                        Operation::NorConv1x1 | Operation::NorConv3x3 => OpClass::Conv,
                        Operation::AvgPool3x3 => OpClass::Pool,
                    };
                    out.push(OpInstance {
                        role: LayerRole::Cell {
                            stage: stage_idx,
                            cell: cell_idx,
                            edge: edge_idx,
                        },
                        class,
                        cell_op: Some(op),
                        kernel: op.kernel_size(),
                        stride: 1,
                        c_in: stage.channels,
                        c_out: stage.channels,
                        h_in: stage.resolution,
                        w_in: stage.resolution,
                    });
                }
                // Node-merge additions inside the cell (nodes 1..3 sum their inputs).
                out.push(OpInstance {
                    role: LayerRole::Cell {
                        stage: stage_idx,
                        cell: cell_idx,
                        edge: usize::MAX,
                    },
                    class: OpClass::Add,
                    cell_op: None,
                    kernel: 1,
                    stride: 1,
                    c_in: stage.channels,
                    c_out: stage.channels,
                    h_in: stage.resolution,
                    w_in: stage.resolution,
                });
            }
        }

        // Head: global average pool + linear classifier.
        let last = self
            .stages
            .last()
            .expect("constructor guarantees at least one stage");
        out.push(OpInstance {
            role: LayerRole::Head,
            class: OpClass::GlobalPool,
            cell_op: None,
            kernel: 1,
            stride: 1,
            c_in: last.channels,
            c_out: last.channels,
            h_in: last.resolution,
            w_in: last.resolution,
        });
        out.push(OpInstance {
            role: LayerRole::Head,
            class: OpClass::Linear,
            cell_op: None,
            kernel: 1,
            stride: 1,
            c_in: last.channels,
            c_out: self.num_classes,
            h_in: 1,
            w_in: 1,
        });
        out
    }
}

impl Default for MacroSkeleton {
    fn default() -> Self {
        Self::nas_bench_201(10)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SearchSpace;

    #[test]
    fn default_skeleton_matches_nas_bench_201() {
        let sk = MacroSkeleton::default();
        assert_eq!(sk.num_classes(), 10);
        assert_eq!(sk.input_resolution(), 32);
        assert_eq!(sk.total_cells(), 15);
        assert_eq!(sk.stages().len(), 3);
        assert_eq!(sk.stages()[2].channels, 64);
    }

    #[test]
    fn imagenet16_variant() {
        let sk = MacroSkeleton::imagenet16();
        assert_eq!(sk.num_classes(), 120);
        assert_eq!(sk.input_resolution(), 16);
        assert_eq!(sk.stages()[2].resolution, 4);
    }

    #[test]
    fn custom_validation() {
        assert!(MacroSkeleton::custom(3, 32, 10, vec![]).is_err());
        assert!(MacroSkeleton::custom(
            0,
            32,
            10,
            vec![StageSpec {
                channels: 8,
                resolution: 8,
                cells: 1
            }]
        )
        .is_err());
        assert!(MacroSkeleton::custom(
            3,
            32,
            10,
            vec![StageSpec {
                channels: 8,
                resolution: 0,
                cells: 1
            }]
        )
        .is_err());
        assert!(MacroSkeleton::custom(
            3,
            32,
            10,
            vec![StageSpec {
                channels: 8,
                resolution: 8,
                cells: 2
            }]
        )
        .is_ok());
    }

    #[test]
    fn instantiate_counts_add_up() {
        let space = SearchSpace::nas_bench_201();
        let sk = MacroSkeleton::nas_bench_201(10);
        let cell = space.cell(100).unwrap();
        let instances = sk.instantiate(&cell);
        // 1 stem + 2 reductions x 4 + 15 cells x (6 edges + 1 add) + 2 head = 1 + 8 + 105 + 2
        assert_eq!(instances.len(), 1 + 8 + 15 * 7 + 2);
        assert_eq!(instances.first().unwrap().role, LayerRole::Stem);
        assert_eq!(instances.last().unwrap().class, OpClass::Linear);
    }

    #[test]
    fn cell_edges_inherit_stage_geometry() {
        let space = SearchSpace::nas_bench_201();
        let sk = MacroSkeleton::nas_bench_201(10);
        // An all-conv3x3 cell.
        let cell = space.cell(space.len() - 1).unwrap(); // all avg_pool
        let instances = sk.instantiate(&cell);
        let stage2_edges: Vec<&OpInstance> = instances
            .iter()
            .filter(|i| matches!(i.role, LayerRole::Cell { stage: 2, .. }) && i.cell_op.is_some())
            .collect();
        assert!(!stage2_edges.is_empty());
        for inst in stage2_edges {
            assert_eq!(inst.c_in, 64);
            assert_eq!(inst.h_in, 8);
            assert_eq!(inst.class, OpClass::Pool);
        }
    }

    #[test]
    fn op_instance_geometry_helpers() {
        let inst = OpInstance {
            role: LayerRole::Stem,
            class: OpClass::Conv,
            cell_op: None,
            kernel: 3,
            stride: 2,
            c_in: 3,
            c_out: 16,
            h_in: 32,
            w_in: 32,
        };
        assert_eq!(inst.h_out(), 16);
        assert_eq!(inst.w_out(), 16);
        assert_eq!(inst.input_elements(), 3 * 32 * 32);
        assert_eq!(inst.output_elements(), 16 * 16 * 16);
        let linear = OpInstance {
            role: LayerRole::Head,
            class: OpClass::Linear,
            cell_op: None,
            kernel: 1,
            stride: 1,
            c_in: 64,
            c_out: 10,
            h_in: 1,
            w_in: 1,
        };
        assert_eq!(linear.output_elements(), 10);
    }

    #[test]
    fn zero_op_classified_as_zero() {
        let space = SearchSpace::nas_bench_201();
        let sk = MacroSkeleton::nas_bench_201(10);
        let cell = space.cell(0).unwrap(); // all none
        let instances = sk.instantiate(&cell);
        let zero_count = instances
            .iter()
            .filter(|i| i.class == OpClass::Zero)
            .count();
        assert_eq!(zero_count, 15 * 6);
    }
}
