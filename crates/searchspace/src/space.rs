use crate::{
    Architecture, CellTopology, Operation, SearchSpaceError, ALL_OPERATIONS, NUM_EDGES,
    NUM_OPERATIONS,
};
use serde::{Deserialize, Serialize};

/// The enumerable cell search space (NAS-Bench-201: 5⁶ = 15 625 cells).
///
/// A `SearchSpace` value carries the operation alphabet and the number of
/// edges; all architecture indexing is base-`|ops|` positional encoding over
/// the edge list, matching the canonical NAS-Bench-201 enumeration.
///
/// # Example
///
/// ```
/// use micronas_searchspace::SearchSpace;
/// let space = SearchSpace::nas_bench_201();
/// assert_eq!(space.len(), 15_625);
/// let arch = space.architecture(12_345).unwrap();
/// assert_eq!(space.index_of(arch.cell()), 12_345);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchSpace {
    name: String,
    num_edges: usize,
}

impl SearchSpace {
    /// The standard NAS-Bench-201 space evaluated in the paper.
    pub fn nas_bench_201() -> Self {
        Self {
            name: "NAS-Bench-201".to_string(),
            num_edges: NUM_EDGES,
        }
    }

    /// Human-readable name of the space.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of edges per cell.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Number of architectures in the space.
    pub fn len(&self) -> usize {
        NUM_OPERATIONS.pow(self.num_edges as u32)
    }

    /// Always false: the space is never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Decodes an architecture index into a cell.
    ///
    /// # Errors
    ///
    /// Returns [`SearchSpaceError::IndexOutOfRange`] if `index >= len()`.
    pub fn cell(&self, index: usize) -> Result<CellTopology, SearchSpaceError> {
        if index >= self.len() {
            return Err(SearchSpaceError::IndexOutOfRange {
                index,
                len: self.len(),
            });
        }
        let mut ops = [Operation::None; NUM_EDGES];
        let mut rem = index;
        for slot in ops.iter_mut() {
            *slot = ALL_OPERATIONS[rem % NUM_OPERATIONS];
            rem /= NUM_OPERATIONS;
        }
        Ok(CellTopology::new(ops))
    }

    /// Decodes an architecture index into an [`Architecture`].
    ///
    /// # Errors
    ///
    /// Returns [`SearchSpaceError::IndexOutOfRange`] if `index >= len()`.
    pub fn architecture(&self, index: usize) -> Result<Architecture, SearchSpaceError> {
        Ok(Architecture::new(index, self.cell(index)?))
    }

    /// Index of a cell in the enumeration (inverse of [`SearchSpace::cell`]).
    pub fn index_of(&self, cell: &CellTopology) -> usize {
        let mut index = 0usize;
        for (i, op) in cell.edge_ops().iter().enumerate() {
            index += op.index() * NUM_OPERATIONS.pow(i as u32);
        }
        index
    }

    /// Iterates over every architecture in the space in index order.
    pub fn iter(&self) -> impl Iterator<Item = Architecture> + '_ {
        (0..self.len()).map(move |i| {
            Architecture::new(
                i,
                self.cell(i).expect("index is within range by construction"),
            )
        })
    }
}

impl Default for SearchSpace {
    fn default() -> Self {
        Self::nas_bench_201()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn space_size_is_15625() {
        let space = SearchSpace::nas_bench_201();
        assert_eq!(space.len(), 15_625);
        assert!(!space.is_empty());
        assert_eq!(space.name(), "NAS-Bench-201");
        assert_eq!(space.num_edges(), 6);
    }

    #[test]
    fn index_zero_is_all_none() {
        let space = SearchSpace::nas_bench_201();
        let cell = space.cell(0).unwrap();
        assert!(cell.edge_ops().iter().all(|&op| op == Operation::None));
    }

    #[test]
    fn last_index_is_all_avg_pool() {
        let space = SearchSpace::nas_bench_201();
        let cell = space.cell(space.len() - 1).unwrap();
        assert!(cell
            .edge_ops()
            .iter()
            .all(|&op| op == Operation::AvgPool3x3));
    }

    #[test]
    fn out_of_range_rejected() {
        let space = SearchSpace::nas_bench_201();
        assert!(space.cell(15_625).is_err());
        assert!(space.architecture(usize::MAX).is_err());
    }

    #[test]
    fn index_roundtrip_exhaustive_sample() {
        let space = SearchSpace::nas_bench_201();
        for index in (0..space.len()).step_by(97) {
            let cell = space.cell(index).unwrap();
            assert_eq!(space.index_of(&cell), index);
        }
    }

    #[test]
    fn iter_yields_all_unique() {
        let space = SearchSpace::nas_bench_201();
        let mut count = 0usize;
        let mut last_index = None;
        for arch in space.iter().take(500) {
            assert_eq!(space.index_of(arch.cell()), arch.index());
            if let Some(prev) = last_index {
                assert_eq!(arch.index(), prev + 1);
            }
            last_index = Some(arch.index());
            count += 1;
        }
        assert_eq!(count, 500);
    }

    proptest! {
        #[test]
        fn roundtrip_random_indices(index in 0usize..15_625) {
            let space = SearchSpace::nas_bench_201();
            let cell = space.cell(index).unwrap();
            prop_assert_eq!(space.index_of(&cell), index);
        }
    }
}
