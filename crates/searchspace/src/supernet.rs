use crate::{
    Architecture, CellTopology, EdgeId, Operation, SearchSpace, SearchSpaceError, ALL_OPERATIONS,
    NUM_EDGES,
};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The state of the pruning-based search: every edge holds a *set* of
/// still-alive candidate operations.
///
/// MicroNAS (like TE-NAS) starts from the full supernet — every edge carries
/// all five operations — and repeatedly removes the operation whose deletion
/// harms the hybrid objective the least, until exactly one operation is left
/// per edge, at which point the supernet [`collapses`](Supernet::collapse)
/// into a single [`Architecture`].
///
/// # Example
///
/// ```
/// use micronas_searchspace::{EdgeId, Operation, Supernet};
///
/// let mut supernet = Supernet::full();
/// assert_eq!(supernet.remaining_ops(), 30);
/// supernet.prune(EdgeId(0), Operation::None).unwrap();
/// assert_eq!(supernet.candidates(EdgeId(0)).unwrap().len(), 4);
/// assert!(!supernet.is_collapsed());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Supernet {
    /// Bitmask of alive operations per edge, indexed by `Operation::index()`.
    alive: [u8; NUM_EDGES],
}

impl Supernet {
    /// The full supernet with every operation alive on every edge.
    pub fn full() -> Self {
        let all_mask = (1u8 << ALL_OPERATIONS.len()) - 1;
        Self {
            alive: [all_mask; NUM_EDGES],
        }
    }

    /// A supernet in which each edge carries only the operation of `cell`.
    pub fn from_cell(cell: &CellTopology) -> Self {
        let mut alive = [0u8; NUM_EDGES];
        for (i, op) in cell.edge_ops().iter().enumerate() {
            alive[i] = 1 << op.index();
        }
        Self { alive }
    }

    /// The operations still alive on an edge.
    ///
    /// # Errors
    ///
    /// Returns [`SearchSpaceError::InvalidEdge`] for edge ids ≥ 6.
    pub fn candidates(&self, edge: EdgeId) -> Result<Vec<Operation>, SearchSpaceError> {
        let mask = self
            .alive
            .get(edge.0)
            .ok_or(SearchSpaceError::InvalidEdge(edge.0))?;
        Ok(ALL_OPERATIONS
            .iter()
            .copied()
            .filter(|op| mask & (1 << op.index()) != 0)
            .collect())
    }

    /// Whether `op` is still alive on `edge`.
    pub fn is_alive(&self, edge: EdgeId, op: Operation) -> bool {
        self.alive
            .get(edge.0)
            .is_some_and(|m| m & (1 << op.index()) != 0)
    }

    /// Total number of (edge, operation) pairs still alive.
    pub fn remaining_ops(&self) -> usize {
        self.alive.iter().map(|m| m.count_ones() as usize).sum()
    }

    /// Number of architectures representable by the current state
    /// (the product of per-edge candidate counts).
    pub fn num_subnetworks(&self) -> usize {
        self.alive.iter().map(|m| m.count_ones() as usize).product()
    }

    /// Removes one operation from one edge.
    ///
    /// # Errors
    ///
    /// Returns [`SearchSpaceError::InvalidPrune`] if the operation is not
    /// alive on that edge or it is the last operation left, and
    /// [`SearchSpaceError::InvalidEdge`] for edge ids ≥ 6.
    pub fn prune(&mut self, edge: EdgeId, op: Operation) -> Result<(), SearchSpaceError> {
        let mask = self
            .alive
            .get_mut(edge.0)
            .ok_or(SearchSpaceError::InvalidEdge(edge.0))?;
        let bit = 1u8 << op.index();
        if *mask & bit == 0 {
            return Err(SearchSpaceError::InvalidPrune {
                edge: edge.0,
                reason: format!("{op} is not alive on this edge"),
            });
        }
        if mask.count_ones() == 1 {
            return Err(SearchSpaceError::InvalidPrune {
                edge: edge.0,
                reason: "cannot prune the last operation on an edge".to_string(),
            });
        }
        *mask &= !bit;
        Ok(())
    }

    /// Whether every edge has exactly one alive operation.
    pub fn is_collapsed(&self) -> bool {
        self.alive.iter().all(|m| m.count_ones() == 1)
    }

    /// Edges that still have more than one candidate.
    pub fn undecided_edges(&self) -> Vec<EdgeId> {
        (0..NUM_EDGES)
            .filter(|&i| self.alive[i].count_ones() > 1)
            .map(EdgeId)
            .collect()
    }

    /// Collapses the supernet into a single architecture.
    ///
    /// # Errors
    ///
    /// Returns [`SearchSpaceError::InvalidPrune`] if any edge still has more
    /// than one candidate.
    pub fn collapse(&self, space: &SearchSpace) -> Result<Architecture, SearchSpaceError> {
        if !self.is_collapsed() {
            let undecided = self.undecided_edges();
            return Err(SearchSpaceError::InvalidPrune {
                edge: undecided.first().map(|e| e.0).unwrap_or(0),
                reason: format!("{} edges are still undecided", undecided.len()),
            });
        }
        let mut ops = [Operation::None; NUM_EDGES];
        for (i, mask) in self.alive.iter().enumerate() {
            let idx = mask.trailing_zeros() as usize;
            ops[i] = Operation::from_index(idx)?;
        }
        Ok(Architecture::from_cell(space, CellTopology::new(ops)))
    }

    /// A representative single-path cell for the current state: on each edge
    /// the alive operation with the given per-edge preference is chosen. Used
    /// by proxies that need a concrete network while the supernet is still
    /// being pruned.
    ///
    /// The preference ranks operations by `Operation::index()` descending
    /// (conv3x3 > conv1x1 > ... ) when `prefer_heavy` is true, ascending
    /// otherwise.
    pub fn representative_cell(&self, prefer_heavy: bool) -> CellTopology {
        let mut ops = [Operation::None; NUM_EDGES];
        for (i, mask) in self.alive.iter().enumerate() {
            let mut candidates: Vec<Operation> = ALL_OPERATIONS
                .iter()
                .copied()
                .filter(|op| mask & (1 << op.index()) != 0)
                .collect();
            if prefer_heavy {
                candidates.sort_by_key(|op| std::cmp::Reverse(op_weight(*op)));
            } else {
                candidates.sort_by_key(|op| op_weight(*op));
            }
            ops[i] = candidates[0];
        }
        CellTopology::new(ops)
    }
}

/// Rough "computational weight" ordering used to pick representative cells.
fn op_weight(op: Operation) -> usize {
    match op {
        Operation::None => 0,
        Operation::SkipConnect => 1,
        Operation::AvgPool3x3 => 2,
        Operation::NorConv1x1 => 3,
        Operation::NorConv3x3 => 4,
    }
}

impl Default for Supernet {
    fn default() -> Self {
        Self::full()
    }
}

impl fmt::Display for Supernet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Supernet[")?;
        for (i, mask) in self.alive.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "e{}:{}", i, mask.count_ones())?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn full_supernet_counts() {
        let s = Supernet::full();
        assert_eq!(s.remaining_ops(), 30);
        assert_eq!(s.num_subnetworks(), 15_625);
        assert!(!s.is_collapsed());
        assert_eq!(s.undecided_edges().len(), 6);
    }

    #[test]
    fn prune_reduces_candidates() {
        let mut s = Supernet::full();
        s.prune(EdgeId(2), Operation::AvgPool3x3).unwrap();
        assert_eq!(s.candidates(EdgeId(2)).unwrap().len(), 4);
        assert!(!s.is_alive(EdgeId(2), Operation::AvgPool3x3));
        assert_eq!(s.num_subnetworks(), 5 * 5 * 4 * 5 * 5 * 5);
        // Pruning the same op twice fails.
        assert!(s.prune(EdgeId(2), Operation::AvgPool3x3).is_err());
    }

    #[test]
    fn cannot_prune_last_op() {
        let mut s = Supernet::full();
        for op in [
            Operation::None,
            Operation::SkipConnect,
            Operation::NorConv1x1,
            Operation::NorConv3x3,
        ] {
            s.prune(EdgeId(0), op).unwrap();
        }
        assert_eq!(
            s.candidates(EdgeId(0)).unwrap(),
            vec![Operation::AvgPool3x3]
        );
        assert!(s.prune(EdgeId(0), Operation::AvgPool3x3).is_err());
    }

    #[test]
    fn invalid_edge_rejected() {
        let mut s = Supernet::full();
        assert!(s.prune(EdgeId(6), Operation::None).is_err());
        assert!(s.candidates(EdgeId(7)).is_err());
        assert!(!s.is_alive(EdgeId(9), Operation::None));
    }

    #[test]
    fn collapse_after_full_pruning() {
        let space = SearchSpace::nas_bench_201();
        let target = space.cell(1234).unwrap();
        let mut s = Supernet::full();
        assert!(s.collapse(&space).is_err());
        for (i, &keep) in target.edge_ops().iter().enumerate() {
            for op in ALL_OPERATIONS {
                if op != keep {
                    s.prune(EdgeId(i), op).unwrap();
                }
            }
        }
        assert!(s.is_collapsed());
        let arch = s.collapse(&space).unwrap();
        assert_eq!(arch.index(), 1234);
    }

    #[test]
    fn from_cell_is_collapsed() {
        let space = SearchSpace::nas_bench_201();
        let cell = space.cell(777).unwrap();
        let s = Supernet::from_cell(&cell);
        assert!(s.is_collapsed());
        assert_eq!(s.collapse(&space).unwrap().index(), 777);
        assert_eq!(s.num_subnetworks(), 1);
    }

    #[test]
    fn representative_cell_respects_preference() {
        let s = Supernet::full();
        let heavy = s.representative_cell(true);
        assert!(heavy
            .edge_ops()
            .iter()
            .all(|&op| op == Operation::NorConv3x3));
        let light = s.representative_cell(false);
        assert!(light.edge_ops().iter().all(|&op| op == Operation::None));
    }

    #[test]
    fn display_shows_per_edge_counts() {
        let s = Supernet::full();
        assert!(s.to_string().contains("e0:5"));
    }

    proptest! {
        #[test]
        fn num_subnetworks_matches_product(prunes in proptest::collection::vec((0usize..6, 0usize..5), 0..12)) {
            let mut s = Supernet::full();
            for (edge, op) in prunes {
                // Ignore invalid prunes; we only check the invariant after the fact.
                let _ = s.prune(EdgeId(edge), ALL_OPERATIONS[op]);
            }
            let expected: usize = (0..6)
                .map(|i| s.candidates(EdgeId(i)).unwrap().len())
                .product();
            prop_assert_eq!(s.num_subnetworks(), expected);
            // No edge is ever empty.
            for i in 0..6 {
                prop_assert!(!s.candidates(EdgeId(i)).unwrap().is_empty());
            }
        }
    }
}
