use std::fmt;

/// Errors produced while constructing or decoding architectures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchSpaceError {
    /// An architecture index outside `0..space.len()` was requested.
    IndexOutOfRange {
        /// The offending index.
        index: usize,
        /// The number of architectures in the space.
        len: usize,
    },
    /// An architecture string could not be parsed.
    ParseArch {
        /// The offending string.
        input: String,
        /// What went wrong.
        reason: String,
    },
    /// An unknown operation name was encountered.
    UnknownOperation(String),
    /// An edge id outside the cell was referenced.
    InvalidEdge(usize),
    /// A supernet operation was invalid (e.g. pruning the last op on an edge).
    InvalidPrune {
        /// Edge on which the prune was attempted.
        edge: usize,
        /// Explanation.
        reason: String,
    },
    /// A macro-skeleton parameter was invalid.
    InvalidSkeleton(String),
}

impl fmt::Display for SearchSpaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SearchSpaceError::IndexOutOfRange { index, len } => {
                write!(
                    f,
                    "architecture index {index} out of range for space of {len}"
                )
            }
            SearchSpaceError::ParseArch { input, reason } => {
                write!(f, "could not parse architecture string {input:?}: {reason}")
            }
            SearchSpaceError::UnknownOperation(name) => write!(f, "unknown operation {name:?}"),
            SearchSpaceError::InvalidEdge(e) => write!(f, "edge {e} does not exist in the cell"),
            SearchSpaceError::InvalidPrune { edge, reason } => {
                write!(f, "invalid prune on edge {edge}: {reason}")
            }
            SearchSpaceError::InvalidSkeleton(msg) => write!(f, "invalid macro skeleton: {msg}"),
        }
    }
}

impl std::error::Error for SearchSpaceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_key_information() {
        let e = SearchSpaceError::IndexOutOfRange {
            index: 20_000,
            len: 15_625,
        };
        assert!(e.to_string().contains("20000"));
        let e = SearchSpaceError::UnknownOperation("conv_7x7".into());
        assert!(e.to_string().contains("conv_7x7"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SearchSpaceError>();
    }
}
