//! The NAS-Bench-201 style cell-based search space used by MicroNAS.
//!
//! An architecture in this space is a single **cell**: a densely connected
//! directed acyclic graph with four feature-map nodes where each of the six
//! edges carries one of five candidate operations (`none`, `skip_connect`,
//! `nor_conv_1x1`, `nor_conv_3x3`, `avg_pool_3x3`). The full space therefore
//! contains 5⁶ = 15 625 architectures. The same cell is stacked inside a
//! fixed macro skeleton (stem → 3 stages of N cells with residual reduction
//! blocks in between → global pool → linear classifier), exactly as in
//! NAS-Bench-201.
//!
//! This crate provides:
//!
//! * [`Operation`] — the candidate operation set;
//! * [`CellTopology`] — a concrete assignment of operations to edges, with
//!   the canonical NAS-Bench-201 architecture-string encoding and the
//!   isomorphism-orbit canonical form used for content-addressed identity
//!   (see [`CellTopology::canonical_form`]);
//! * [`Architecture`] — a cell plus its index in the enumeration of the space;
//! * [`SearchSpace`] — enumeration, sampling and indexing of all 15 625 cells;
//! * [`Supernet`] — the pruning-search state in which every edge still holds
//!   a *set* of candidate operations;
//! * [`MacroSkeleton`] / [`OpInstance`] — the fixed outer network, flattened
//!   into per-operation instances for FLOPs / latency / memory estimation.
//!
//! # Example
//!
//! ```
//! use micronas_searchspace::{Architecture, Operation, SearchSpace};
//!
//! let space = SearchSpace::nas_bench_201();
//! assert_eq!(space.len(), 15_625);
//!
//! let arch = Architecture::from_index(&space, 0).unwrap();
//! assert_eq!(arch.cell().edge_ops().len(), 6);
//! assert!(arch.cell().edge_ops().iter().all(|&op| op == Operation::None));
//! ```

#![warn(missing_docs)]

mod arch;
mod canonical;
mod cell;
mod error;
mod neighbors;
mod op;
mod skeleton;
mod space;
mod supernet;

pub use arch::Architecture;
pub use cell::{CellTopology, EdgeId, NUM_EDGES, NUM_NODES};
pub use error::SearchSpaceError;
pub use neighbors::{all_neighbors, mutate, random_architecture};
pub use op::{Operation, ALL_OPERATIONS, NUM_OPERATIONS};
pub use skeleton::{LayerRole, MacroSkeleton, OpClass, OpInstance, StageSpec};
pub use space::SearchSpace;
pub use supernet::Supernet;

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, SearchSpaceError>;
