//! Neighbourhood and mutation utilities used by the evolutionary baseline
//! (µNAS-style aging evolution) and by local-search ablations.

use crate::{
    Architecture, CellTopology, EdgeId, Operation, SearchSpace, ALL_OPERATIONS, NUM_EDGES,
};
use rand::Rng;

/// All architectures that differ from `arch` by exactly one edge operation.
///
/// Each of the 6 edges can take 4 alternative operations, so the
/// neighbourhood always contains 24 architectures.
pub fn all_neighbors(space: &SearchSpace, arch: &Architecture) -> Vec<Architecture> {
    let mut out = Vec::with_capacity(NUM_EDGES * (ALL_OPERATIONS.len() - 1));
    for edge in EdgeId::all() {
        let current = arch.cell().edge_ops()[edge.0];
        for op in ALL_OPERATIONS {
            if op != current {
                let cell = arch
                    .cell()
                    .with_op(edge, op)
                    .expect("edge ids from EdgeId::all() are always valid");
                out.push(Architecture::from_cell(space, cell));
            }
        }
    }
    out
}

/// Mutates one uniformly chosen edge to a different uniformly chosen
/// operation.
pub fn mutate<R: Rng>(space: &SearchSpace, arch: &Architecture, rng: &mut R) -> Architecture {
    let edge = EdgeId(rng.gen_range(0..NUM_EDGES));
    let current = arch.cell().edge_ops()[edge.0];
    let alternatives: Vec<Operation> = ALL_OPERATIONS
        .iter()
        .copied()
        .filter(|&op| op != current)
        .collect();
    let op = alternatives[rng.gen_range(0..alternatives.len())];
    let cell = arch.cell().with_op(edge, op).expect("edge id in range");
    Architecture::from_cell(space, cell)
}

/// Samples a uniformly random architecture from the space.
pub fn random_architecture<R: Rng>(space: &SearchSpace, rng: &mut R) -> Architecture {
    let mut ops = [Operation::None; NUM_EDGES];
    for slot in ops.iter_mut() {
        *slot = ALL_OPERATIONS[rng.gen_range(0..ALL_OPERATIONS.len())];
    }
    Architecture::from_cell(space, CellTopology::new(ops))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::collections::HashSet;

    #[test]
    fn neighborhood_has_24_unique_members() {
        let space = SearchSpace::nas_bench_201();
        let arch = space.architecture(5000).unwrap();
        let neighbors = all_neighbors(&space, &arch);
        assert_eq!(neighbors.len(), 24);
        let unique: HashSet<usize> = neighbors.iter().map(|a| a.index()).collect();
        assert_eq!(unique.len(), 24);
        assert!(!unique.contains(&arch.index()));
    }

    #[test]
    fn neighbors_differ_in_exactly_one_edge() {
        let space = SearchSpace::nas_bench_201();
        let arch = space.architecture(123).unwrap();
        for n in all_neighbors(&space, &arch) {
            let diff = arch
                .cell()
                .edge_ops()
                .iter()
                .zip(n.cell().edge_ops())
                .filter(|(a, b)| a != b)
                .count();
            assert_eq!(diff, 1);
        }
    }

    #[test]
    fn mutation_changes_exactly_one_edge() {
        let space = SearchSpace::nas_bench_201();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let arch = space.architecture(777).unwrap();
        for _ in 0..32 {
            let m = mutate(&space, &arch, &mut rng);
            let diff = arch
                .cell()
                .edge_ops()
                .iter()
                .zip(m.cell().edge_ops())
                .filter(|(a, b)| a != b)
                .count();
            assert_eq!(diff, 1);
        }
    }

    #[test]
    fn random_architecture_is_in_range_and_varied() {
        let space = SearchSpace::nas_bench_201();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let samples: HashSet<usize> = (0..64)
            .map(|_| random_architecture(&space, &mut rng).index())
            .collect();
        assert!(samples.iter().all(|&i| i < space.len()));
        // With 64 draws from 15 625 architectures, collisions are very unlikely.
        assert!(samples.len() > 50);
    }
}
