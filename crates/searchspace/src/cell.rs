use crate::{Operation, SearchSpaceError};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Number of feature-map nodes in a NAS-Bench-201 cell (including input node).
pub const NUM_NODES: usize = 4;

/// Number of directed edges in the densely connected cell DAG:
/// every node `j > 0` receives one edge from every node `i < j`.
pub const NUM_EDGES: usize = 6;

/// Identifier of one edge of the cell DAG.
///
/// Edges are stored in the canonical NAS-Bench-201 order:
/// `(0→1), (0→2), (1→2), (0→3), (1→3), (2→3)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeId(pub usize);

impl EdgeId {
    /// The (source, destination) node pair of the edge.
    ///
    /// # Panics
    ///
    /// Panics if the edge id is ≥ [`NUM_EDGES`].
    pub fn endpoints(self) -> (usize, usize) {
        EDGE_ENDPOINTS[self.0]
    }

    /// All edges in canonical order.
    pub fn all() -> [EdgeId; NUM_EDGES] {
        [
            EdgeId(0),
            EdgeId(1),
            EdgeId(2),
            EdgeId(3),
            EdgeId(4),
            EdgeId(5),
        ]
    }
}

/// Canonical edge order: grouped by destination node, source ascending.
const EDGE_ENDPOINTS: [(usize, usize); NUM_EDGES] =
    [(0, 1), (0, 2), (1, 2), (0, 3), (1, 3), (2, 3)];

/// A concrete cell: one [`Operation`] assigned to each of the six edges.
///
/// # Example
///
/// ```
/// use micronas_searchspace::{CellTopology, Operation};
///
/// let cell: CellTopology = "|nor_conv_3x3~0|+|none~0|skip_connect~1|+|none~0|none~1|nor_conv_1x1~2|"
///     .parse()
///     .unwrap();
/// assert_eq!(cell.edge_ops()[0], Operation::NorConv3x3);
/// assert_eq!(cell.to_string(),
///     "|nor_conv_3x3~0|+|none~0|skip_connect~1|+|none~0|none~1|nor_conv_1x1~2|");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CellTopology {
    ops: [Operation; NUM_EDGES],
}

impl CellTopology {
    /// Creates a cell from the six edge operations in canonical order.
    pub fn new(ops: [Operation; NUM_EDGES]) -> Self {
        Self { ops }
    }

    /// The cell in which every edge is the `none` operation.
    pub fn all_none() -> Self {
        Self {
            ops: [Operation::None; NUM_EDGES],
        }
    }

    /// Operations on all edges in canonical order.
    pub fn edge_ops(&self) -> &[Operation; NUM_EDGES] {
        &self.ops
    }

    /// Operation on one edge.
    ///
    /// # Errors
    ///
    /// Returns [`SearchSpaceError::InvalidEdge`] for edge ids ≥ 6.
    pub fn op(&self, edge: EdgeId) -> Result<Operation, SearchSpaceError> {
        self.ops
            .get(edge.0)
            .copied()
            .ok_or(SearchSpaceError::InvalidEdge(edge.0))
    }

    /// Returns a copy of the cell with one edge replaced.
    ///
    /// # Errors
    ///
    /// Returns [`SearchSpaceError::InvalidEdge`] for edge ids ≥ 6.
    pub fn with_op(&self, edge: EdgeId, op: Operation) -> Result<Self, SearchSpaceError> {
        if edge.0 >= NUM_EDGES {
            return Err(SearchSpaceError::InvalidEdge(edge.0));
        }
        let mut ops = self.ops;
        ops[edge.0] = op;
        Ok(Self { ops })
    }

    /// Number of edges carrying each operation kind, indexed by
    /// [`Operation::index`].
    pub fn op_histogram(&self) -> [usize; crate::NUM_OPERATIONS] {
        let mut hist = [0usize; crate::NUM_OPERATIONS];
        for op in self.ops {
            hist[op.index()] += 1;
        }
        hist
    }

    /// Whether any computational path exists from the input node (0) to the
    /// output node (3) through edges that carry signal (i.e. are not `none`).
    pub fn has_input_output_path(&self) -> bool {
        // reachable[i] = node i receives signal originating at node 0.
        let mut reachable = [false; NUM_NODES];
        reachable[0] = true;
        for (edge_idx, &(src, dst)) in EDGE_ENDPOINTS.iter().enumerate() {
            if reachable[src] && self.ops[edge_idx].carries_signal() {
                reachable[dst] = true;
            }
        }
        reachable[NUM_NODES - 1]
    }

    /// Length of the longest signal-carrying path from node 0 to node 3,
    /// counted in edges. Returns 0 when no path exists.
    pub fn longest_path_edges(&self) -> usize {
        let mut best = [0usize; NUM_NODES];
        let mut reachable = [false; NUM_NODES];
        reachable[0] = true;
        for (edge_idx, &(src, dst)) in EDGE_ENDPOINTS.iter().enumerate() {
            if reachable[src] && self.ops[edge_idx].carries_signal() {
                reachable[dst] = true;
                best[dst] = best[dst].max(best[src] + 1);
            }
        }
        if reachable[NUM_NODES - 1] {
            best[NUM_NODES - 1]
        } else {
            0
        }
    }

    /// Length of the longest path counting only *parameterized* (convolution)
    /// edges. This approximates the effective trainable depth of the cell.
    pub fn effective_depth(&self) -> usize {
        let mut best = [0usize; NUM_NODES];
        let mut reachable = [false; NUM_NODES];
        reachable[0] = true;
        for (edge_idx, &(src, dst)) in EDGE_ENDPOINTS.iter().enumerate() {
            let op = self.ops[edge_idx];
            if reachable[src] && op.carries_signal() {
                reachable[dst] = true;
                let gain = usize::from(op.is_parameterized());
                best[dst] = best[dst].max(best[src] + gain);
            }
        }
        if reachable[NUM_NODES - 1] {
            best[NUM_NODES - 1]
        } else {
            0
        }
    }
}

impl Default for CellTopology {
    fn default() -> Self {
        Self::all_none()
    }
}

impl fmt::Display for CellTopology {
    /// Formats the cell using the canonical NAS-Bench-201 architecture string
    /// `|op~0|+|op~0|op~1|+|op~0|op~1|op~2|`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut edge = 0usize;
        for dst in 1..NUM_NODES {
            if dst > 1 {
                write!(f, "+")?;
            }
            write!(f, "|")?;
            for src in 0..dst {
                write!(f, "{}~{}|", self.ops[edge], src)?;
                edge += 1;
            }
        }
        Ok(())
    }
}

impl FromStr for CellTopology {
    type Err = SearchSpaceError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parse_err = |reason: &str| SearchSpaceError::ParseArch {
            input: s.to_string(),
            reason: reason.to_string(),
        };
        let groups: Vec<&str> = s.split('+').collect();
        if groups.len() != NUM_NODES - 1 {
            return Err(parse_err("expected three '+'-separated node groups"));
        }
        let mut ops = [Operation::None; NUM_EDGES];
        let mut edge = 0usize;
        for (dst_minus_one, group) in groups.iter().enumerate() {
            let dst = dst_minus_one + 1;
            let trimmed = group.trim_matches('|');
            let entries: Vec<&str> = trimmed.split('|').filter(|e| !e.is_empty()).collect();
            if entries.len() != dst {
                return Err(parse_err(&format!(
                    "node {dst} should have {dst} incoming edges"
                )));
            }
            for (expected_src, entry) in entries.iter().enumerate() {
                let (op_name, src_str) = entry
                    .rsplit_once('~')
                    .ok_or_else(|| parse_err("edge entry missing '~source' suffix"))?;
                let src: usize = src_str
                    .parse()
                    .map_err(|_| parse_err("edge source is not a number"))?;
                if src != expected_src {
                    return Err(parse_err(&format!(
                        "edge sources must appear in order (expected {expected_src}, got {src})"
                    )));
                }
                ops[edge] = op_name.parse()?;
                edge += 1;
            }
        }
        Ok(CellTopology::new(ops))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ALL_OPERATIONS;
    use proptest::prelude::*;

    #[test]
    fn edge_endpoints_are_canonical() {
        assert_eq!(EdgeId(0).endpoints(), (0, 1));
        assert_eq!(EdgeId(2).endpoints(), (1, 2));
        assert_eq!(EdgeId(5).endpoints(), (2, 3));
        assert_eq!(EdgeId::all().len(), NUM_EDGES);
    }

    #[test]
    fn display_and_parse_roundtrip() {
        let cell = CellTopology::new([
            Operation::NorConv3x3,
            Operation::None,
            Operation::SkipConnect,
            Operation::None,
            Operation::None,
            Operation::NorConv1x1,
        ]);
        let s = cell.to_string();
        assert_eq!(
            s,
            "|nor_conv_3x3~0|+|none~0|skip_connect~1|+|none~0|none~1|nor_conv_1x1~2|"
        );
        let parsed: CellTopology = s.parse().unwrap();
        assert_eq!(parsed, cell);
    }

    #[test]
    fn parse_rejects_malformed_strings() {
        assert!("".parse::<CellTopology>().is_err());
        assert!("|none~0|".parse::<CellTopology>().is_err());
        assert!("|bogus~0|+|none~0|none~1|+|none~0|none~1|none~2|"
            .parse::<CellTopology>()
            .is_err());
        // Wrong source numbering.
        assert!("|none~1|+|none~0|none~1|+|none~0|none~1|none~2|"
            .parse::<CellTopology>()
            .is_err());
        // Missing '~'.
        assert!("|none|+|none~0|none~1|+|none~0|none~1|none~2|"
            .parse::<CellTopology>()
            .is_err());
    }

    #[test]
    fn with_op_and_accessors() {
        let cell = CellTopology::all_none();
        assert_eq!(cell.op(EdgeId(3)).unwrap(), Operation::None);
        let cell2 = cell.with_op(EdgeId(3), Operation::NorConv3x3).unwrap();
        assert_eq!(cell2.op(EdgeId(3)).unwrap(), Operation::NorConv3x3);
        assert!(cell.with_op(EdgeId(6), Operation::None).is_err());
        assert!(cell.op(EdgeId(9)).is_err());
    }

    #[test]
    fn histogram_counts_every_edge() {
        let cell = CellTopology::new([
            Operation::NorConv3x3,
            Operation::NorConv3x3,
            Operation::SkipConnect,
            Operation::AvgPool3x3,
            Operation::None,
            Operation::NorConv1x1,
        ]);
        let hist = cell.op_histogram();
        assert_eq!(hist[Operation::NorConv3x3.index()], 2);
        assert_eq!(hist[Operation::None.index()], 1);
        assert_eq!(hist.iter().sum::<usize>(), NUM_EDGES);
    }

    #[test]
    fn path_detection() {
        // All none: no path.
        assert!(!CellTopology::all_none().has_input_output_path());
        // Direct edge 0→3 only (edge index 3).
        let direct = CellTopology::all_none()
            .with_op(EdgeId(3), Operation::SkipConnect)
            .unwrap();
        assert!(direct.has_input_output_path());
        assert_eq!(direct.longest_path_edges(), 1);
        // Path 0→1→2→3 through convs: effective depth 3.
        let chain = CellTopology::new([
            Operation::NorConv3x3, // 0→1
            Operation::None,       // 0→2
            Operation::NorConv3x3, // 1→2
            Operation::None,       // 0→3
            Operation::None,       // 1→3
            Operation::NorConv3x3, // 2→3
        ]);
        assert!(chain.has_input_output_path());
        assert_eq!(chain.longest_path_edges(), 3);
        assert_eq!(chain.effective_depth(), 3);
    }

    #[test]
    fn effective_depth_ignores_pool_and_skip() {
        let cell = CellTopology::new([
            Operation::SkipConnect,
            Operation::None,
            Operation::AvgPool3x3,
            Operation::None,
            Operation::None,
            Operation::NorConv1x1,
        ]);
        // Path 0→1→2→3 exists with one parameterized edge (2→3 conv1x1).
        assert_eq!(cell.effective_depth(), 1);
        assert_eq!(cell.longest_path_edges(), 3);
    }

    #[test]
    fn isolated_output_when_final_edges_are_none() {
        // Signal reaches nodes 1 and 2, but all edges into node 3 are none.
        let cell = CellTopology::new([
            Operation::NorConv3x3,
            Operation::NorConv3x3,
            Operation::SkipConnect,
            Operation::None,
            Operation::None,
            Operation::None,
        ]);
        assert!(!cell.has_input_output_path());
        assert_eq!(cell.longest_path_edges(), 0);
        assert_eq!(cell.effective_depth(), 0);
    }

    fn arb_cell() -> impl Strategy<Value = CellTopology> {
        proptest::array::uniform6(0usize..5).prop_map(|idx| {
            let mut ops = [Operation::None; NUM_EDGES];
            for (i, &k) in idx.iter().enumerate() {
                ops[i] = ALL_OPERATIONS[k];
            }
            CellTopology::new(ops)
        })
    }

    proptest! {
        #[test]
        fn display_parse_roundtrip_all(cell in arb_cell()) {
            let parsed: CellTopology = cell.to_string().parse().unwrap();
            prop_assert_eq!(parsed, cell);
        }

        #[test]
        fn histogram_sums_to_six(cell in arb_cell()) {
            prop_assert_eq!(cell.op_histogram().iter().sum::<usize>(), NUM_EDGES);
        }

        #[test]
        fn effective_depth_bounded_by_path_length(cell in arb_cell()) {
            prop_assert!(cell.effective_depth() <= cell.longest_path_edges());
            prop_assert!(cell.longest_path_edges() <= 3);
        }
    }
}
