//! The fusing compiler's rewrite passes.
//!
//! [`optimize`] rewrites a lowered graph into a cheaper schedule:
//!
//! 1. **Dead-code elimination** — drops every node whose outputs never
//!    reach a graph output (the eager path computes unreachable edges and,
//!    in gradient mode, the whole logits head; the graph knows better).
//! 2. **Backward-pair fusion** — the per-sample weight gradient, the input
//!    gradient, and the ReLU mask of one conv edge collapse into a single
//!    [`OpKind::FusedConvBackward`] dispatch over one shared ReLU-fused
//!    im2col lowering.
//! 3. **Conv→ReLU fusion** — `conv2d(relu(pre), w)` becomes
//!    [`OpKind::FusedConvRelu`], applying the activation inside the im2col
//!    gather instead of materialising it.
//! 4. **Accumulation collapse** — a zero-fill followed by its sole `axpy`
//!    contribution becomes a plain alias (when the contribution is dead
//!    afterwards) or a [`OpKind::CopyScaled`], eliminating a memset and a
//!    full accumulation pass per cell node.
//!
//! The rewrites are *numerically divergent* from the eager schedule
//! (always-GEMM dispatch, `0.0 + -0.0` folding), which is why the fusing
//! compiler folds its identity into the store namespace.

use crate::ir::{Graph, Node, OpKind, ValueId};

/// Runs the full fusing pass pipeline on `graph` and returns the rewritten
/// graph. Pure function: the input graph is untouched, so callers can
/// render fused-vs-unfused dumps side by side.
pub fn optimize(graph: &Graph) -> Graph {
    let mut g = graph.clone();
    dce(&mut g);
    while fuse_one_backward_pair(&mut g) {}
    while fuse_one_conv_relu(&mut g) {}
    dce(&mut g);
    while collapse_one_accumulation(&mut g) {}
    dce(&mut g);
    g
}

/// Removes nodes whose outputs can never reach a graph output. `Input`
/// nodes are always kept so the plan's input arity stays stable.
fn dce(g: &mut Graph) {
    let mut live = vec![false; g.values.len()];
    for (_, v) in &g.outputs {
        live[v.index()] = true;
    }
    let mut keep = vec![false; g.nodes.len()];
    for (i, node) in g.nodes.iter().enumerate().rev() {
        let needed =
            matches!(node.op, OpKind::Input { .. }) || node.outputs.iter().any(|v| live[v.index()]);
        if needed {
            keep[i] = true;
            for v in &node.inputs {
                live[v.index()] = true;
            }
        }
    }
    let mut idx = 0;
    g.nodes.retain(|_| {
        let k = keep[idx];
        idx += 1;
        k
    });
}

/// Per-value producer node index.
fn producers(g: &Graph) -> Vec<Option<usize>> {
    let mut p = vec![None; g.values.len()];
    for (i, node) in g.nodes.iter().enumerate() {
        for v in &node.outputs {
            p[v.index()] = Some(i);
        }
    }
    p
}

/// Per-value list of consuming node indices (one entry per read).
fn consumers(g: &Graph) -> Vec<Vec<usize>> {
    let mut c = vec![Vec::new(); g.values.len()];
    for (i, node) in g.nodes.iter().enumerate() {
        for v in &node.inputs {
            c[v.index()].push(i);
        }
    }
    c
}

fn is_output(g: &Graph, v: ValueId) -> bool {
    g.outputs.iter().any(|(_, o)| *o == v)
}

/// Finds and rewrites one backward weight+input pair:
///
/// ```text
/// act = relu(pre)
/// m'  = per_sample_grad_w(act, up, m)     # node i
/// gin = conv2d_bwd_input(w, up)           # node j
/// gin' = relu_mask(gin, pre)              # node k
/// ```
///
/// becomes `(m', gin') = fused_conv_bwd(pre, up, w, m)` at position `i`,
/// keeping the original output [`ValueId`]s so no other node moves.
fn fuse_one_backward_pair(g: &mut Graph) -> bool {
    let prod = producers(g);
    let cons = consumers(g);
    for i in 0..g.nodes.len() {
        let (spec, c_out, row_stride, offset) = match g.nodes[i].op {
            OpKind::PerSampleGradW {
                spec,
                c_out,
                row_stride,
                offset,
            } => (spec, c_out, row_stride, offset),
            _ => continue,
        };
        let (act, up, m) = (
            g.nodes[i].inputs[0],
            g.nodes[i].inputs[1],
            g.nodes[i].inputs[2],
        );
        let m2 = g.nodes[i].outputs[0];
        // The activation must come from a ReLU so the fused kernel can
        // rebuild it from the pre-activation during the im2col gather.
        let pre = match prod[act.index()].map(|r| &g.nodes[r]) {
            Some(relu) if matches!(relu.op, OpKind::Relu) => relu.inputs[0],
            _ => continue,
        };
        // Find the matching input-gradient node feeding a mask on `pre`.
        let mut found = None;
        for j in (i + 1)..g.nodes.len() {
            let spec_j = match g.nodes[j].op {
                OpKind::Conv2dBackwardInput { spec } => spec,
                _ => continue,
            };
            if spec_j != spec || g.nodes[j].inputs[1] != up {
                continue;
            }
            let gin = g.nodes[j].outputs[0];
            if is_output(g, gin) {
                continue;
            }
            let gin_cons = &cons[gin.index()];
            if gin_cons.len() != 1 {
                continue;
            }
            let k = gin_cons[0];
            let mask = &g.nodes[k];
            if !matches!(mask.op, OpKind::ReluMask) || mask.inputs[1] != pre {
                continue;
            }
            found = Some((j, k));
            break;
        }
        let Some((j, k)) = found else { continue };
        let w = g.nodes[j].inputs[0];
        let gin2 = g.nodes[k].outputs[0];
        // `w` and `pre` are defined before the ReLU/grad pair, so hoisting
        // the whole computation to position `i` preserves SSA order.
        g.nodes[i] = Node {
            op: OpKind::FusedConvBackward {
                spec,
                c_out,
                row_stride,
                offset,
            },
            inputs: vec![pre, up, w, m],
            outputs: vec![m2, gin2],
        };
        // Remove k first: k > j > i.
        g.nodes.remove(k);
        g.nodes.remove(j);
        return true;
    }
    false
}

/// Finds and rewrites one `conv2d(relu(pre), w)` whose activation has no
/// other reader into `fused_conv_relu(pre, w)`.
fn fuse_one_conv_relu(g: &mut Graph) -> bool {
    let prod = producers(g);
    let cons = consumers(g);
    for i in 0..g.nodes.len() {
        let spec = match g.nodes[i].op {
            OpKind::Conv2d { spec } => spec,
            _ => continue,
        };
        let (act, w) = (g.nodes[i].inputs[0], g.nodes[i].inputs[1]);
        if cons[act.index()].len() != 1 || is_output(g, act) {
            continue;
        }
        let pre = match prod[act.index()].map(|r| &g.nodes[r]) {
            Some(relu) if matches!(relu.op, OpKind::Relu) => relu.inputs[0],
            _ => continue,
        };
        g.nodes[i].op = OpKind::FusedConvRelu { spec };
        g.nodes[i].inputs = vec![pre, w];
        return true;
    }
    false
}

/// Finds and rewrites one zero-fill + sole-contribution accumulation:
/// `acc1 = axpy(fill(0), x, alpha)` becomes `x` itself (alias, when `x` is
/// an owned value with no later reader) or `copy_scaled(x, alpha)`.
fn collapse_one_accumulation(g: &mut Graph) -> bool {
    let prod = producers(g);
    let cons = consumers(g);
    for a in 0..g.nodes.len() {
        let alpha = match g.nodes[a].op {
            OpKind::Axpy { alpha } => alpha,
            _ => continue,
        };
        let (acc0, x) = (g.nodes[a].inputs[0], g.nodes[a].inputs[1]);
        let acc1 = g.nodes[a].outputs[0];
        let f = match prod[acc0.index()] {
            Some(f) if matches!(g.nodes[f].op, OpKind::Fill { value } if value == 0.0) => f,
            _ => continue,
        };
        let x_producer = prod[x.index()];
        let x_owned = x_producer
            .map(|p| !matches!(g.nodes[p].op, OpKind::Input { .. }))
            .unwrap_or(false);
        let x_dead_after = cons[x.index()].iter().all(|&c| c <= a) && !is_output(g, x);
        if alpha == 1.0 && x_owned && x_dead_after {
            // Alias: acc1 IS x. Later consumers (including in-place axpys)
            // take over x's buffer directly.
            for node in g.nodes.iter_mut() {
                for v in node.inputs.iter_mut() {
                    if *v == acc1 {
                        *v = x;
                    }
                }
            }
            for (_, v) in g.outputs.iter_mut() {
                if *v == acc1 {
                    *v = x;
                }
            }
            g.nodes.remove(a.max(f));
            g.nodes.remove(a.min(f));
        } else {
            g.nodes[a] = Node {
                op: OpKind::CopyScaled { alpha },
                inputs: vec![x],
                outputs: vec![acc1],
            };
            g.nodes.remove(f);
        }
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use micronas_tensor::{Conv2dSpec, Shape};

    /// Forward: stem conv, one relu+conv edge, accumulation, pooling head.
    fn forward_graph() -> Graph {
        let mut g = Graph::new();
        let x = g.input("x", Shape::nchw(2, 3, 8, 8));
        let sw = g.input("stem_w", Shape::nchw(4, 3, 3, 3));
        let ew = g.input("edge_w", Shape::nchw(4, 4, 3, 3));
        let spec = Conv2dSpec::new(3, 1, 1);
        let stem = g.conv2d(x, sw, spec);
        let act = g.relu(stem);
        let c = g.conv2d(act, ew, spec);
        let acc = g.fill(0.0, Shape::nchw(2, 4, 8, 8));
        let acc = g.axpy(acc, c, 1.0);
        let feat = g.global_avg_pool(acc);
        g.mark_output("features", feat);
        // A dead side computation DCE must remove.
        let dead = g.relu(stem);
        let _ = g.global_avg_pool(dead);
        g
    }

    #[test]
    fn optimize_fuses_conv_relu_and_kills_dead_code() {
        let g = forward_graph();
        let fused = optimize(&g);
        assert!(fused.validate().is_ok(), "{:?}", fused.validate());
        let ops: Vec<&str> = fused.nodes().iter().map(|n| n.op().name()).collect();
        assert!(ops.contains(&"fused_conv_relu"), "{ops:?}");
        assert!(!ops.contains(&"relu"), "relu must fuse away: {ops:?}");
        // fill + axpy collapsed to an alias of the conv output.
        assert!(!ops.contains(&"fill"), "{ops:?}");
        assert!(!ops.contains(&"axpy"), "{ops:?}");
        // The dead head is gone, and the fused graph is strictly smaller.
        assert!(fused.nodes().len() < g.nodes().len());
        assert_eq!(fused.fused_dispatch_count(), 1);
    }

    #[test]
    fn optimize_fuses_the_backward_pair() {
        let mut g = Graph::new();
        let pre = g.input("pre", Shape::nchw(2, 4, 8, 8));
        let up = g.input("up", Shape::nchw(2, 4, 8, 8));
        let w = g.input("w", Shape::nchw(4, 4, 3, 3));
        let matrix = g.input("m0", Shape::d2(2, 144));
        let spec = Conv2dSpec::new(3, 1, 1);
        let act = g.relu(pre);
        let m = g.per_sample_grad_w(act, up, matrix, 4, spec, 72, 0);
        let gin = g.conv2d_backward_input(w, up, Shape::nchw(2, 4, 8, 8), spec);
        let gin = g.relu_mask(gin, pre);
        g.mark_output("matrix", m);
        g.mark_output("grad_in", gin);
        let fused = optimize(&g);
        assert!(fused.validate().is_ok(), "{:?}", fused.validate());
        let ops: Vec<&str> = fused.nodes().iter().map(|n| n.op().name()).collect();
        assert!(ops.contains(&"fused_conv_bwd"), "{ops:?}");
        assert!(!ops.contains(&"per_sample_grad_w"), "{ops:?}");
        assert!(!ops.contains(&"conv2d_bwd_input"), "{ops:?}");
        assert!(!ops.contains(&"relu_mask"), "{ops:?}");
        assert!(!ops.contains(&"relu"), "{ops:?}");
    }

    #[test]
    fn skip_connect_contribution_becomes_copy_not_alias() {
        // x feeds both the accumulator and a later read: aliasing would let
        // an in-place consumer clobber the other reader, so the collapse
        // must fall back to a copy.
        let mut g = Graph::new();
        let x = g.input("x", Shape::d2(2, 2));
        let c = g.relu(x);
        let acc = g.fill(0.0, Shape::d2(2, 2));
        let acc = g.axpy(acc, c, 1.0);
        let later = g.relu(c);
        g.mark_output("acc", acc);
        g.mark_output("later", later);
        let fused = optimize(&g);
        assert!(fused.validate().is_ok(), "{:?}", fused.validate());
        let ops: Vec<&str> = fused.nodes().iter().map(|n| n.op().name()).collect();
        assert!(ops.contains(&"copy_scaled"), "{ops:?}");
        assert!(!ops.contains(&"fill"), "{ops:?}");
    }
}
