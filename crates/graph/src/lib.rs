//! Kernel-graph IR and CPU compilers for the MicroNAS execution pipeline.
//!
//! This crate expresses a cell network's forward and backward passes as a
//! small static [`Graph`] of tensor ops — convolutions (forward, backward
//! weight/input, per-sample gradients), GEMMs, the NTK Gram, pooling, ReLU,
//! quantize/dequantize — with explicit SSA value nodes, and compiles that
//! graph to an executable plan behind the [`Compiler`] trait
//! (`compile(&Graph) -> Runnable`).
//!
//! Two compilers ship:
//!
//! * [`InterpreterCompiler`] — the reference interpreter. It executes the
//!   graph node by node through the existing
//!   [`micronas_tensor::KernelBackend`] seam, replaying exactly the kernel
//!   sequence the eager path runs, in the same order, with the same
//!   accumulation discipline — so its results are **bitwise identical** to
//!   the eager path under every backend, and it shares the paper store
//!   namespace.
//! * [`FusingCompiler`] — an optimising compiler whose passes eliminate dead
//!   subgraphs, fuse conv→ReLU epilogues into the im2col gather, merge the
//!   backward weight+input pair into a single dispatch over one shared
//!   lowering, and collapse zero-init + single-contribution accumulations.
//!   Its schedules are numerically **divergent** (always-GEMM conv dispatch,
//!   `-0.0`-visible alias rewrites), so its `(id, fingerprint)` folds into
//!   the store namespace exactly like a divergent kernel backend — old logs
//!   refuse to open rather than silently serving drifted numerics.
//!
//! The graph layer is also the seam the eventual GPU backend plugs into: a
//! wgpu compiler is a third [`Compiler`] impl over the same IR, conformance
//! tested against the interpreter.

#![warn(missing_docs)]

mod compiler;
mod exec;
mod fuse;
mod ir;

pub use compiler::{
    Compiler, CompilerKind, FusingCompiler, GraphError, InterpreterCompiler, Runnable,
};
pub use exec::{RunOutput, RunOutputs};
pub use fuse::optimize;
pub use ir::{Graph, Node, OpKind, ValueId, ValueKind};
