//! The [`Compiler`] trait, its two shipped implementations, and the
//! [`CompilerKind`] configuration knob.

use crate::exec::{Executor, RunOutputs};
use crate::fuse::optimize;
use crate::ir::Graph;
use micronas_tensor::{hash_mix, KernelBackend, Tensor, TensorError, Workspace};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::{Arc, OnceLock};

/// Errors from graph validation, compilation, or plan execution.
#[derive(Debug)]
pub enum GraphError {
    /// The graph violates SSA well-formedness (see [`Graph::validate`]).
    Invalid(String),
    /// The caller supplied the wrong number of inputs.
    InputArity {
        /// Inputs the plan declares.
        expected: usize,
        /// Inputs the caller passed.
        got: usize,
    },
    /// A supplied input tensor does not match the declared shape.
    InputShape {
        /// The offending input slot.
        slot: usize,
        /// The declared dimensions.
        expected: Vec<usize>,
        /// The supplied dimensions.
        got: Vec<usize>,
    },
    /// A declared graph output was never produced at run time.
    MissingOutput(String),
    /// A kernel failed underneath the executor.
    Tensor(TensorError),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Invalid(msg) => write!(f, "invalid graph: {msg}"),
            GraphError::InputArity { expected, got } => {
                write!(f, "plan expected {expected} input(s), got {got}")
            }
            GraphError::InputShape {
                slot,
                expected,
                got,
            } => write!(
                f,
                "input slot {slot} has shape {got:?}, plan expects {expected:?}"
            ),
            GraphError::MissingOutput(name) => {
                write!(f, "graph output {name:?} was never produced")
            }
            GraphError::Tensor(e) => write!(f, "kernel error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for GraphError {
    fn from(e: TensorError) -> Self {
        GraphError::Tensor(e)
    }
}

/// A compiled, immutable execution plan.
///
/// The kernel backend is supplied at *run* time: the plan captures only the
/// schedule, so one compiled plan serves every [`KernelBackend`] (and the
/// interpreter's bitwise guarantee holds per backend, since it replays the
/// identical kernel call sequence).
pub trait Runnable: fmt::Debug + Send + Sync {
    /// Executes the plan against `backend`, binding `inputs` in the
    /// graph's declared input order.
    ///
    /// # Errors
    ///
    /// Fails on input arity/shape mismatches or kernel errors.
    fn run(
        &self,
        backend: &dyn KernelBackend,
        inputs: &[&Tensor],
        ws: &mut Workspace,
    ) -> Result<RunOutputs, GraphError>;

    /// Number of fused dispatches this plan issues per run (0 for the
    /// reference interpreter).
    fn fused_dispatches(&self) -> u64;

    /// The (possibly rewritten) graph this plan executes.
    fn graph(&self) -> &Graph;
}

impl Runnable for Executor {
    fn run(
        &self,
        backend: &dyn KernelBackend,
        inputs: &[&Tensor],
        ws: &mut Workspace,
    ) -> Result<RunOutputs, GraphError> {
        Executor::run(self, backend, inputs, ws)
    }

    fn fused_dispatches(&self) -> u64 {
        Executor::fused_dispatches(self)
    }

    fn graph(&self) -> &Graph {
        Executor::graph(self)
    }
}

/// Compiles a kernel [`Graph`] into a [`Runnable`] plan.
///
/// Implementations whose plans are not bitwise-identical to the eager
/// paper pipeline must report it via
/// [`Compiler::bitwise_paper_identical`]: the `(id, fingerprint)` pair then
/// folds into the evaluation-store namespace exactly like a divergent
/// kernel backend, so persisted logs written under one schedule refuse to
/// open under another.
pub trait Compiler: fmt::Debug + Send + Sync {
    /// Stable string id, folded into store namespaces for divergent
    /// compilers.
    fn id(&self) -> &'static str;

    /// Fingerprint of everything that changes this compiler's emitted
    /// numerics (pass roster, schedule versions).
    fn config_fingerprint(&self) -> u64;

    /// Whether plans from this compiler produce bitwise-identical results
    /// to the eager paper pipeline. Defaults to `false` (conservative).
    fn bitwise_paper_identical(&self) -> bool {
        false
    }

    /// Compiles `graph` into an executable plan.
    ///
    /// # Errors
    ///
    /// Fails when `graph` does not validate.
    fn compile(&self, graph: &Graph) -> Result<Box<dyn Runnable>, GraphError>;
}

fn compiler_fingerprint(id: &str, version: u64, params: &[u64]) -> u64 {
    // "MicroNAS" xor-tagged for the compiler domain (distinct from the
    // backend domain tag in `backend_fingerprint`).
    let seed = 0x4D69_6372_6F4E_4153u64 ^ 0x636F_6D70_696C_6572;
    let mut h = hash_mix(seed, id.len() as u64);
    for b in id.bytes() {
        h = hash_mix(h, b as u64);
    }
    h = hash_mix(h, version);
    for &p in params {
        h = hash_mix(h, p);
    }
    h
}

/// The reference interpreter: executes the lowered graph node by node,
/// replaying exactly the kernel sequence the eager path runs — bitwise
/// identical under every backend, shares the paper store namespace.
#[derive(Debug, Default, Clone, Copy)]
pub struct InterpreterCompiler;

impl Compiler for InterpreterCompiler {
    fn id(&self) -> &'static str {
        "interpreter"
    }

    fn config_fingerprint(&self) -> u64 {
        compiler_fingerprint("interpreter", 1, &[])
    }

    fn bitwise_paper_identical(&self) -> bool {
        true
    }

    fn compile(&self, graph: &Graph) -> Result<Box<dyn Runnable>, GraphError> {
        let _span = micronas_telemetry::span!("graph.compile");
        Ok(Box::new(Executor::new(graph.clone())?))
    }
}

/// The fusing compiler: rewrites the graph through [`optimize`] (DCE,
/// conv→ReLU fusion, backward-pair fusion, accumulation collapse) before
/// handing it to the executor. Numerically divergent; folds into the store
/// namespace.
#[derive(Debug, Default, Clone, Copy)]
pub struct FusingCompiler;

impl Compiler for FusingCompiler {
    fn id(&self) -> &'static str {
        "fusing"
    }

    fn config_fingerprint(&self) -> u64 {
        // Version bumps whenever a pass changes emitted numerics.
        compiler_fingerprint("fusing", 1, &[4])
    }

    fn compile(&self, graph: &Graph) -> Result<Box<dyn Runnable>, GraphError> {
        let _span = micronas_telemetry::span!("graph.compile");
        Ok(Box::new(Executor::new(optimize(graph))?))
    }
}

/// The shipped compiler families, as a serialisable configuration value —
/// the knob `MicroNasConfig` / `SearchSession::builder().compiler(..)`
/// carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CompilerKind {
    /// [`InterpreterCompiler`] — bitwise reference, paper namespace.
    Interpreter,
    /// [`FusingCompiler`] — fused schedules, divergent namespace.
    Fusing,
}

impl CompilerKind {
    /// All shipped kinds, in id order.
    pub fn all() -> [CompilerKind; 2] {
        [CompilerKind::Interpreter, CompilerKind::Fusing]
    }

    /// The compiler's stable string id.
    pub fn id(self) -> &'static str {
        match self {
            CompilerKind::Interpreter => "interpreter",
            CompilerKind::Fusing => "fusing",
        }
    }

    /// Parses a stable string id back into a kind.
    pub fn from_id(id: &str) -> Option<Self> {
        Self::all().into_iter().find(|k| k.id() == id)
    }

    /// Parses a stable string id, listing the valid ids on failure.
    ///
    /// # Errors
    ///
    /// Returns a message naming every shipped compiler id.
    pub fn parse(id: &str) -> Result<Self, String> {
        Self::from_id(id).ok_or_else(|| {
            let valid: Vec<&str> = Self::all().iter().map(|k| k.id()).collect();
            format!(
                "unknown compiler id {id:?}; valid ids: {}",
                valid.join(", ")
            )
        })
    }

    /// Whether this kind's plans are bitwise-identical to the eager paper
    /// pipeline.
    pub fn bitwise_paper_identical(self) -> bool {
        matches!(self, CompilerKind::Interpreter)
    }

    /// The kind's configuration fingerprint (what folds into store
    /// namespaces for divergent kinds).
    pub fn fingerprint(self) -> u64 {
        self.instantiate().config_fingerprint()
    }

    /// Instantiates the compiler as a cached shared instance.
    pub fn instantiate(self) -> Arc<dyn Compiler> {
        static INTERPRETER: OnceLock<Arc<dyn Compiler>> = OnceLock::new();
        static FUSING: OnceLock<Arc<dyn Compiler>> = OnceLock::new();
        match self {
            CompilerKind::Interpreter => INTERPRETER
                .get_or_init(|| Arc::new(InterpreterCompiler))
                .clone(),
            CompilerKind::Fusing => FUSING.get_or_init(|| Arc::new(FusingCompiler)).clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_roundtrip_and_classify() {
        for kind in CompilerKind::all() {
            assert_eq!(CompilerKind::from_id(kind.id()), Some(kind));
            assert_eq!(CompilerKind::parse(kind.id()), Ok(kind));
            assert_eq!(kind.instantiate().id(), kind.id());
            assert_eq!(
                kind.bitwise_paper_identical(),
                kind.instantiate().bitwise_paper_identical()
            );
        }
        assert!(CompilerKind::from_id("wgpu").is_none());
    }

    #[test]
    fn parse_error_lists_every_valid_id() {
        let err = CompilerKind::parse("wgpu").unwrap_err();
        assert!(err.contains("unknown compiler id \"wgpu\""), "{err}");
        for kind in CompilerKind::all() {
            assert!(err.contains(kind.id()), "{err} missing {}", kind.id());
        }
    }

    #[test]
    fn fingerprints_separate_the_compilers() {
        assert_ne!(
            CompilerKind::Interpreter.fingerprint(),
            CompilerKind::Fusing.fingerprint()
        );
    }
}
