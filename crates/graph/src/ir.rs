//! The kernel-graph IR: ops, SSA values and the [`Graph`] container.
//!
//! A [`Graph`] is a topologically ordered list of [`Node`]s over explicit
//! SSA values. Every value has a static shape and element kind; in-place
//! kernels (accumulation, masking, per-sample matrix writes) *consume* one
//! input version and emit a fresh [`ValueId`] aliasing the same buffer, so
//! the node list stays a proper DAG while still expressing the eager path's
//! zero-copy accumulation discipline.

use micronas_tensor::{hash_mix, Conv2dSpec, Shape};
use std::fmt::Write as _;

/// Handle to one SSA value in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ValueId(pub(crate) u32);

impl ValueId {
    /// The value's index into the graph's value table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Element kind of a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueKind {
    /// A dense `f32` tensor.
    F32,
    /// A flat `f64` buffer (the Gram accumulator).
    F64,
}

/// Static metadata of one SSA value.
#[derive(Debug, Clone)]
pub(crate) struct ValueMeta {
    pub(crate) shape: Shape,
    pub(crate) kind: ValueKind,
}

/// The operation performed by one [`Node`].
///
/// Input/output arities are fixed per variant; see each variant's doc for
/// the operand order. Ops marked *in-place* consume one input version (its
/// buffer is reused) and emit a fresh value aliasing it.
#[derive(Debug, Clone, PartialEq)]
pub enum OpKind {
    /// Graph input bound at run time from the caller's slot `slot`.
    Input {
        /// Position in the caller-supplied input list.
        slot: usize,
    },
    /// A tensor filled with `value` (zero-filled buffers come from the
    /// workspace's zeroed pool, matching the eager path bit-for-bit).
    Fill {
        /// The fill constant.
        value: f32,
    },
    /// `[x, w] -> y`: forward convolution through the backend seam.
    Conv2d {
        /// Convolution geometry.
        spec: Conv2dSpec,
    },
    /// `[w, grad_out] -> grad_in`: input gradient (output shape is the
    /// node's result shape).
    Conv2dBackwardInput {
        /// Convolution geometry.
        spec: Conv2dSpec,
    },
    /// `[x, grad_out] -> grad_w`: weight gradient summed over the batch.
    Conv2dBackwardWeight {
        /// Convolution geometry.
        spec: Conv2dSpec,
        /// Output channels of the convolution.
        c_out: usize,
    },
    /// `[x, grad_out, matrix] -> matrix'` (*in-place* on `matrix`):
    /// per-sample weight gradients written into rows of the `[N, P]`
    /// gradient matrix at `offset` with stride `row_stride`.
    PerSampleGradW {
        /// Convolution geometry.
        spec: Conv2dSpec,
        /// Output channels of the convolution.
        c_out: usize,
        /// Row stride of the destination matrix (the parameter count `P`).
        row_stride: usize,
        /// This layer's parameter offset within a row.
        offset: usize,
    },
    /// `[features, matrix] -> matrix'` (*in-place* on `matrix`): the
    /// classifier's per-sample gradient rows — a pure outer product with
    /// the all-ones logit gradient, written directly.
    ClassifierRows {
        /// Number of classifier outputs.
        num_classes: usize,
        /// Number of classifier inputs (feature channels).
        channels: usize,
        /// Row stride of the destination matrix.
        row_stride: usize,
        /// Classifier parameter offset within a row.
        offset: usize,
    },
    /// `[x] -> y`: average pooling (count-include-pad).
    AvgPool2d {
        /// Square window size.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        padding: usize,
    },
    /// `[grad_out] -> grad_in`: backward of [`OpKind::AvgPool2d`] (output
    /// shape is the node's result shape).
    AvgPool2dBackward {
        /// Square window size.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        padding: usize,
    },
    /// `[x] -> relu(x)`.
    Relu,
    /// `[g, pre] -> g'` (*in-place* on `g`): zeroes `g` where `pre <= 0` —
    /// the ReLU backward mask.
    ReluMask,
    /// `[acc, x] -> acc'` (*in-place* on `acc`): `acc += alpha * x`.
    Axpy {
        /// Scale applied to `x`.
        alpha: f32,
    },
    /// `[x] -> alpha * x` into a fresh buffer. Produced only by the fusing
    /// compiler (replaces a zero-fill + first accumulation); numerically
    /// divergent from `0 + alpha*x` on `-0.0`.
    CopyScaled {
        /// Scale applied to `x`.
        alpha: f32,
    },
    /// `[x] -> [n, c]`: spatial global average pooling.
    GlobalAvgPool,
    /// `[grad_features] -> grad_x`: spreads each feature gradient uniformly
    /// over its plane (`g / hw`) — the backward of global average pooling.
    SpreadPlanes,
    /// `[a, b] -> c = a·b` (`a` `[m,k]`, `b` `[k,n]`).
    GemmNn {
        /// Rows of `a` and `c`.
        m: usize,
        /// Inner dimension.
        k: usize,
        /// Columns of `b` and `c`.
        n: usize,
    },
    /// `[a, b] -> c = a·bᵀ` (`a` `[m,k]`, `b` `[n,k]`).
    GemmNt {
        /// Rows of `a` and `c`.
        m: usize,
        /// Inner dimension.
        k: usize,
        /// Rows of `b` / columns of `c`.
        n: usize,
    },
    /// `[a, b] -> c = aᵀ·b` (`a` `[k,m]`, `b` `[k,n]`).
    GemmTn {
        /// Columns of `a` / rows of `c`.
        m: usize,
        /// Inner dimension.
        k: usize,
        /// Columns of `b` and `c`.
        n: usize,
    },
    /// `[j] -> G = j·jᵀ` in `f64` (`j` `[n, p]`, `G` `[n, n]`).
    GramNtF64 {
        /// Rows of the Jacobian panel.
        n: usize,
        /// Columns (parameters).
        p: usize,
    },
    /// `[x] -> clamp(round(x / scale), ±127)`: symmetric int8 quantization
    /// kept in `f32` storage, matching the int8 MCU backend's convention.
    Quantize {
        /// Quantization scale (`max_abs / 127` in the int8 backend).
        scale: f32,
    },
    /// `[q] -> q * scale`: inverse of [`OpKind::Quantize`].
    Dequantize {
        /// Quantization scale.
        scale: f32,
    },
    /// `[pre, w] -> conv(relu(pre), w)`: forward conv with the ReLU fused
    /// into the im2col gather, always on the GEMM schedule. Produced only
    /// by the fusing compiler.
    FusedConvRelu {
        /// Convolution geometry.
        spec: Conv2dSpec,
    },
    /// `[pre, grad_out, w, matrix] -> (matrix', grad_in_masked)`
    /// (*in-place* on `matrix`): the fused backward pair — per-sample
    /// weight gradients and the masked input gradient in one dispatch over
    /// one shared ReLU-fused im2col lowering. Produced only by the fusing
    /// compiler.
    FusedConvBackward {
        /// Convolution geometry.
        spec: Conv2dSpec,
        /// Output channels of the convolution.
        c_out: usize,
        /// Row stride of the destination matrix.
        row_stride: usize,
        /// This layer's parameter offset within a row.
        offset: usize,
    },
}

impl OpKind {
    /// Index of the input this op consumes in place (its buffer is reused
    /// for the first output), if any.
    pub fn consumed_input(&self) -> Option<usize> {
        match self {
            OpKind::PerSampleGradW { .. } => Some(2),
            OpKind::ClassifierRows { .. } => Some(1),
            OpKind::ReluMask => Some(0),
            OpKind::Axpy { .. } => Some(0),
            OpKind::FusedConvBackward { .. } => Some(3),
            _ => None,
        }
    }

    /// Whether this op is emitted only by the fusing compiler's passes.
    pub fn is_fused(&self) -> bool {
        matches!(
            self,
            OpKind::FusedConvRelu { .. }
                | OpKind::FusedConvBackward { .. }
                | OpKind::CopyScaled { .. }
        )
    }

    /// Short stable name for dumps and fingerprints.
    pub fn name(&self) -> &'static str {
        match self {
            OpKind::Input { .. } => "input",
            OpKind::Fill { .. } => "fill",
            OpKind::Conv2d { .. } => "conv2d",
            OpKind::Conv2dBackwardInput { .. } => "conv2d_bwd_input",
            OpKind::Conv2dBackwardWeight { .. } => "conv2d_bwd_weight",
            OpKind::PerSampleGradW { .. } => "per_sample_grad_w",
            OpKind::ClassifierRows { .. } => "classifier_rows",
            OpKind::AvgPool2d { .. } => "avg_pool2d",
            OpKind::AvgPool2dBackward { .. } => "avg_pool2d_bwd",
            OpKind::Relu => "relu",
            OpKind::ReluMask => "relu_mask",
            OpKind::Axpy { .. } => "axpy",
            OpKind::CopyScaled { .. } => "copy_scaled",
            OpKind::GlobalAvgPool => "global_avg_pool",
            OpKind::SpreadPlanes => "spread_planes",
            OpKind::GemmNn { .. } => "gemm_nn",
            OpKind::GemmNt { .. } => "gemm_nt",
            OpKind::GemmTn { .. } => "gemm_tn",
            OpKind::GramNtF64 { .. } => "gram_nt_f64",
            OpKind::Quantize { .. } => "quantize",
            OpKind::Dequantize { .. } => "dequantize",
            OpKind::FusedConvRelu { .. } => "fused_conv_relu",
            OpKind::FusedConvBackward { .. } => "fused_conv_bwd",
        }
    }

    fn fingerprint_params(&self) -> Vec<u64> {
        match *self {
            OpKind::Input { slot } => vec![slot as u64],
            OpKind::Fill { value } => vec![value.to_bits() as u64],
            OpKind::Conv2d { spec }
            | OpKind::Conv2dBackwardInput { spec }
            | OpKind::FusedConvRelu { spec } => spec_params(spec),
            OpKind::Conv2dBackwardWeight { spec, c_out } => {
                let mut p = spec_params(spec);
                p.push(c_out as u64);
                p
            }
            OpKind::PerSampleGradW {
                spec,
                c_out,
                row_stride,
                offset,
            }
            | OpKind::FusedConvBackward {
                spec,
                c_out,
                row_stride,
                offset,
            } => {
                let mut p = spec_params(spec);
                p.extend([c_out as u64, row_stride as u64, offset as u64]);
                p
            }
            OpKind::ClassifierRows {
                num_classes,
                channels,
                row_stride,
                offset,
            } => vec![
                num_classes as u64,
                channels as u64,
                row_stride as u64,
                offset as u64,
            ],
            OpKind::AvgPool2d {
                kernel,
                stride,
                padding,
            }
            | OpKind::AvgPool2dBackward {
                kernel,
                stride,
                padding,
            } => vec![kernel as u64, stride as u64, padding as u64],
            OpKind::Relu | OpKind::ReluMask | OpKind::GlobalAvgPool | OpKind::SpreadPlanes => {
                vec![]
            }
            OpKind::Axpy { alpha } | OpKind::CopyScaled { alpha } => {
                vec![alpha.to_bits() as u64]
            }
            OpKind::GemmNn { m, k, n }
            | OpKind::GemmNt { m, k, n }
            | OpKind::GemmTn { m, k, n } => {
                vec![m as u64, k as u64, n as u64]
            }
            OpKind::GramNtF64 { n, p } => vec![n as u64, p as u64],
            OpKind::Quantize { scale } | OpKind::Dequantize { scale } => {
                vec![scale.to_bits() as u64]
            }
        }
    }
}

fn spec_params(spec: Conv2dSpec) -> Vec<u64> {
    vec![spec.kernel as u64, spec.stride as u64, spec.padding as u64]
}

/// One operation over SSA values.
#[derive(Debug, Clone)]
pub struct Node {
    pub(crate) op: OpKind,
    pub(crate) inputs: Vec<ValueId>,
    pub(crate) outputs: Vec<ValueId>,
}

impl Node {
    /// The node's operation.
    pub fn op(&self) -> &OpKind {
        &self.op
    }

    /// The node's input values, in operand order.
    pub fn inputs(&self) -> &[ValueId] {
        &self.inputs
    }

    /// The node's output values.
    pub fn outputs(&self) -> &[ValueId] {
        &self.outputs
    }
}

/// A topologically ordered kernel graph with named inputs and outputs.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    pub(crate) nodes: Vec<Node>,
    pub(crate) values: Vec<ValueMeta>,
    pub(crate) inputs: Vec<(String, ValueId)>,
    pub(crate) outputs: Vec<(String, ValueId)>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// The nodes in execution order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of SSA values (including superseded in-place versions).
    pub fn num_values(&self) -> usize {
        self.values.len()
    }

    /// The named graph inputs in binding order.
    pub fn input_bindings(&self) -> &[(String, ValueId)] {
        &self.inputs
    }

    /// The named graph outputs in declaration order.
    pub fn output_bindings(&self) -> &[(String, ValueId)] {
        &self.outputs
    }

    /// A value's static shape.
    pub fn value_shape(&self, v: ValueId) -> &Shape {
        &self.values[v.index()].shape
    }

    /// A value's element kind.
    pub fn value_kind(&self, v: ValueId) -> ValueKind {
        self.values[v.index()].kind
    }

    pub(crate) fn new_value(&mut self, shape: Shape, kind: ValueKind) -> ValueId {
        let id = ValueId(self.values.len() as u32);
        self.values.push(ValueMeta { shape, kind });
        id
    }

    fn push(&mut self, op: OpKind, inputs: Vec<ValueId>, out_shape: Shape) -> ValueId {
        let out = self.new_value(out_shape, ValueKind::F32);
        self.nodes.push(Node {
            op,
            inputs,
            outputs: vec![out],
        });
        out
    }

    /// Declares a named graph input of the given shape, bound at run time
    /// from the next caller slot.
    pub fn input(&mut self, name: &str, shape: Shape) -> ValueId {
        let slot = self.inputs.len();
        let v = self.push(OpKind::Input { slot }, vec![], shape);
        self.inputs.push((name.to_string(), v));
        v
    }

    /// Marks `value` as a named graph output.
    pub fn mark_output(&mut self, name: &str, value: ValueId) {
        self.outputs.push((name.to_string(), value));
    }

    /// A tensor filled with `value`.
    pub fn fill(&mut self, value: f32, shape: Shape) -> ValueId {
        self.push(OpKind::Fill { value }, vec![], shape)
    }

    /// Forward convolution `conv(x, w)`.
    pub fn conv2d(&mut self, x: ValueId, w: ValueId, spec: Conv2dSpec) -> ValueId {
        let xd = self.value_shape(x).dims().to_vec();
        let c_out = self.value_shape(w).dims()[0];
        let (oh, ow) = spec.output_hw(xd[2], xd[3]);
        self.push(
            OpKind::Conv2d { spec },
            vec![x, w],
            Shape::nchw(xd[0], c_out, oh, ow),
        )
    }

    /// Input gradient of a convolution; `input_shape` is the shape of the
    /// forward input the gradient flows back to.
    pub fn conv2d_backward_input(
        &mut self,
        w: ValueId,
        grad_out: ValueId,
        input_shape: Shape,
        spec: Conv2dSpec,
    ) -> ValueId {
        self.push(
            OpKind::Conv2dBackwardInput { spec },
            vec![w, grad_out],
            input_shape,
        )
    }

    /// Batch-summed weight gradient of a convolution.
    pub fn conv2d_backward_weight(
        &mut self,
        x: ValueId,
        grad_out: ValueId,
        c_out: usize,
        spec: Conv2dSpec,
    ) -> ValueId {
        let c_in = self.value_shape(x).dims()[1];
        self.push(
            OpKind::Conv2dBackwardWeight { spec, c_out },
            vec![x, grad_out],
            Shape::nchw(c_out, c_in, spec.kernel, spec.kernel),
        )
    }

    /// Per-sample weight gradients written in place into `matrix`; returns
    /// the new matrix version.
    #[allow(clippy::too_many_arguments)]
    pub fn per_sample_grad_w(
        &mut self,
        x: ValueId,
        grad_out: ValueId,
        matrix: ValueId,
        c_out: usize,
        spec: Conv2dSpec,
        row_stride: usize,
        offset: usize,
    ) -> ValueId {
        let shape = self.value_shape(matrix).clone();
        self.push(
            OpKind::PerSampleGradW {
                spec,
                c_out,
                row_stride,
                offset,
            },
            vec![x, grad_out, matrix],
            shape,
        )
    }

    /// Classifier per-sample gradient rows written in place into `matrix`;
    /// returns the new matrix version.
    pub fn classifier_rows(
        &mut self,
        features: ValueId,
        matrix: ValueId,
        num_classes: usize,
        channels: usize,
        row_stride: usize,
        offset: usize,
    ) -> ValueId {
        let shape = self.value_shape(matrix).clone();
        self.push(
            OpKind::ClassifierRows {
                num_classes,
                channels,
                row_stride,
                offset,
            },
            vec![features, matrix],
            shape,
        )
    }

    /// Average pooling.
    pub fn avg_pool2d(
        &mut self,
        x: ValueId,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> ValueId {
        let xd = self.value_shape(x).dims().to_vec();
        let spec = Conv2dSpec::new(kernel, stride, padding);
        let (oh, ow) = spec.output_hw(xd[2], xd[3]);
        self.push(
            OpKind::AvgPool2d {
                kernel,
                stride,
                padding,
            },
            vec![x],
            Shape::nchw(xd[0], xd[1], oh, ow),
        )
    }

    /// Backward of average pooling into `input_shape`.
    pub fn avg_pool2d_backward(
        &mut self,
        grad_out: ValueId,
        input_shape: Shape,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> ValueId {
        self.push(
            OpKind::AvgPool2dBackward {
                kernel,
                stride,
                padding,
            },
            vec![grad_out],
            input_shape,
        )
    }

    /// Elementwise ReLU.
    pub fn relu(&mut self, x: ValueId) -> ValueId {
        let shape = self.value_shape(x).clone();
        self.push(OpKind::Relu, vec![x], shape)
    }

    /// In-place ReLU backward mask: zeroes `g` where `pre <= 0`.
    pub fn relu_mask(&mut self, g: ValueId, pre: ValueId) -> ValueId {
        let shape = self.value_shape(g).clone();
        self.push(OpKind::ReluMask, vec![g, pre], shape)
    }

    /// In-place accumulation `acc += alpha * x`; returns the new version.
    pub fn axpy(&mut self, acc: ValueId, x: ValueId, alpha: f32) -> ValueId {
        let shape = self.value_shape(acc).clone();
        self.push(OpKind::Axpy { alpha }, vec![acc, x], shape)
    }

    /// `alpha * x` into a fresh buffer (fusing-compiler op).
    pub fn copy_scaled(&mut self, x: ValueId, alpha: f32) -> ValueId {
        let shape = self.value_shape(x).clone();
        self.push(OpKind::CopyScaled { alpha }, vec![x], shape)
    }

    /// Spatial global average pooling to `[n, c]`.
    pub fn global_avg_pool(&mut self, x: ValueId) -> ValueId {
        let xd = self.value_shape(x).dims().to_vec();
        self.push(OpKind::GlobalAvgPool, vec![x], Shape::d2(xd[0], xd[1]))
    }

    /// Spreads `[n, c]` feature gradients uniformly over `out_shape` planes.
    pub fn spread_planes(&mut self, grad_features: ValueId, out_shape: Shape) -> ValueId {
        self.push(OpKind::SpreadPlanes, vec![grad_features], out_shape)
    }

    /// `c = a·b`.
    pub fn gemm_nn(&mut self, a: ValueId, b: ValueId, m: usize, k: usize, n: usize) -> ValueId {
        self.push(OpKind::GemmNn { m, k, n }, vec![a, b], Shape::d2(m, n))
    }

    /// `c = a·bᵀ`.
    pub fn gemm_nt(&mut self, a: ValueId, b: ValueId, m: usize, k: usize, n: usize) -> ValueId {
        self.push(OpKind::GemmNt { m, k, n }, vec![a, b], Shape::d2(m, n))
    }

    /// `c = aᵀ·b`.
    pub fn gemm_tn(&mut self, a: ValueId, b: ValueId, m: usize, k: usize, n: usize) -> ValueId {
        self.push(OpKind::GemmTn { m, k, n }, vec![a, b], Shape::d2(m, n))
    }

    /// The NTK Gram `G = j·jᵀ` with `f64` accumulation.
    pub fn gram_nt_f64(&mut self, j: ValueId, n: usize, p: usize) -> ValueId {
        let out = self.new_value(Shape::d2(n, n), ValueKind::F64);
        self.nodes.push(Node {
            op: OpKind::GramNtF64 { n, p },
            inputs: vec![j],
            outputs: vec![out],
        });
        out
    }

    /// Symmetric int8 quantization kept in `f32` storage.
    pub fn quantize(&mut self, x: ValueId, scale: f32) -> ValueId {
        let shape = self.value_shape(x).clone();
        self.push(OpKind::Quantize { scale }, vec![x], shape)
    }

    /// Inverse of [`Graph::quantize`].
    pub fn dequantize(&mut self, q: ValueId, scale: f32) -> ValueId {
        let shape = self.value_shape(q).clone();
        self.push(OpKind::Dequantize { scale }, vec![q], shape)
    }

    /// Forward conv with fused ReLU epilogue (fusing-compiler op).
    pub fn fused_conv_relu(&mut self, pre: ValueId, w: ValueId, spec: Conv2dSpec) -> ValueId {
        let xd = self.value_shape(pre).dims().to_vec();
        let c_out = self.value_shape(w).dims()[0];
        let (oh, ow) = spec.output_hw(xd[2], xd[3]);
        self.push(
            OpKind::FusedConvRelu { spec },
            vec![pre, w],
            Shape::nchw(xd[0], c_out, oh, ow),
        )
    }

    /// Fused backward weight+input pair (fusing-compiler op); returns
    /// `(matrix', grad_in_masked)`.
    #[allow(clippy::too_many_arguments)]
    pub fn fused_conv_backward(
        &mut self,
        pre: ValueId,
        grad_out: ValueId,
        w: ValueId,
        matrix: ValueId,
        c_out: usize,
        spec: Conv2dSpec,
        row_stride: usize,
        offset: usize,
    ) -> (ValueId, ValueId) {
        let matrix_shape = self.value_shape(matrix).clone();
        let grad_shape = self.value_shape(pre).clone();
        let matrix_out = self.new_value(matrix_shape, ValueKind::F32);
        let grad_out_v = self.new_value(grad_shape, ValueKind::F32);
        self.nodes.push(Node {
            op: OpKind::FusedConvBackward {
                spec,
                c_out,
                row_stride,
                offset,
            },
            inputs: vec![pre, grad_out, w, matrix],
            outputs: vec![matrix_out, grad_out_v],
        });
        (matrix_out, grad_out_v)
    }

    /// Number of fused-dispatch nodes (the fusing compiler's headline ops).
    pub fn fused_dispatch_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| {
                matches!(
                    n.op,
                    OpKind::FusedConvRelu { .. } | OpKind::FusedConvBackward { .. }
                )
            })
            .count()
    }

    /// Structural fingerprint over ops, parameters, operand wiring, shapes
    /// and output bindings — stable across processes.
    pub fn fingerprint(&self) -> u64 {
        let mut h = hash_mix(0x6772_6170_685f_6972, self.nodes.len() as u64);
        for node in &self.nodes {
            for b in node.op.name().bytes() {
                h = hash_mix(h, b as u64);
            }
            for p in node.op.fingerprint_params() {
                h = hash_mix(h, p);
            }
            for v in &node.inputs {
                h = hash_mix(h, v.0 as u64);
            }
            for v in &node.outputs {
                h = hash_mix(h, v.0 as u64);
                for &d in self.value_shape(*v).dims() {
                    h = hash_mix(h, d as u64);
                }
            }
        }
        for (name, v) in &self.outputs {
            for b in name.bytes() {
                h = hash_mix(h, b as u64);
            }
            h = hash_mix(h, v.0 as u64);
        }
        h
    }

    /// Verifies SSA well-formedness: every value is defined before use,
    /// defined exactly once, in-place-consumed versions are never read
    /// after consumption, and every graph output is produced.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        let mut def: Vec<Option<usize>> = vec![None; self.values.len()];
        let mut consumed_at: Vec<Option<usize>> = vec![None; self.values.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            for v in &node.inputs {
                match def[v.index()] {
                    None => {
                        return Err(format!(
                            "node {i} ({}) reads undefined value {v:?}",
                            node.op.name()
                        ))
                    }
                    Some(d) if d >= i => {
                        return Err(format!(
                            "node {i} reads value {v:?} defined later (node {d})"
                        ))
                    }
                    _ => {}
                }
                if let Some(c) = consumed_at[v.index()] {
                    return Err(format!(
                        "node {i} ({}) reads value {v:?} already consumed in place by node {c}",
                        node.op.name()
                    ));
                }
            }
            if let Some(ci) = node.op.consumed_input() {
                let v = node.inputs[ci];
                consumed_at[v.index()] = Some(i);
            }
            for v in &node.outputs {
                if def[v.index()].is_some() {
                    return Err(format!("value {v:?} defined twice (again at node {i})"));
                }
                def[v.index()] = Some(i);
            }
        }
        for (name, v) in &self.outputs {
            if def[v.index()].is_none() {
                return Err(format!("graph output {name:?} ({v:?}) is never produced"));
            }
            if let Some(c) = consumed_at[v.index()] {
                return Err(format!(
                    "graph output {name:?} ({v:?}) is consumed in place by node {c}"
                ));
            }
        }
        Ok(())
    }

    /// Renders the graph in Graphviz DOT format: one box per node labelled
    /// with its op and result shape, edges following value flow, graph
    /// inputs/outputs as ovals.
    pub fn to_dot(&self, title: &str) -> String {
        let mut producer: Vec<Option<usize>> = vec![None; self.values.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            for v in &node.outputs {
                producer[v.index()] = Some(i);
            }
        }
        let mut dot = String::new();
        let _ = writeln!(dot, "digraph {{");
        let _ = writeln!(dot, "  label=\"{title}\"; labelloc=t;");
        let _ = writeln!(dot, "  node [shape=box, fontsize=10];");
        for (i, node) in self.nodes.iter().enumerate() {
            let shape = self
                .value_shape(node.outputs[0])
                .dims()
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("x");
            let style = if node.op.is_fused() {
                ", style=filled, fillcolor=lightgoldenrod"
            } else if matches!(node.op, OpKind::Input { .. }) {
                ", shape=oval"
            } else {
                ""
            };
            let _ = writeln!(
                dot,
                "  n{i} [label=\"{}\\n[{shape}]\"{style}];",
                node.op.name()
            );
            for v in &node.inputs {
                if let Some(p) = producer[v.index()] {
                    let _ = writeln!(dot, "  n{p} -> n{i};");
                }
            }
        }
        for (idx, (name, v)) in self.outputs.iter().enumerate() {
            let _ = writeln!(dot, "  out{idx} [label=\"{name}\", shape=oval];");
            if let Some(p) = producer[v.index()] {
                let _ = writeln!(dot, "  n{p} -> out{idx};");
            }
        }
        let _ = writeln!(dot, "}}");
        dot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_catches_use_after_consume() {
        let mut g = Graph::new();
        let a = g.input("a", Shape::d2(2, 2));
        let b = g.input("b", Shape::d2(2, 2));
        let acc = g.fill(0.0, Shape::d2(2, 2));
        let acc2 = g.axpy(acc, a, 1.0);
        g.mark_output("out", acc2);
        assert!(g.validate().is_ok());
        // Reading the consumed first version is a violation.
        let bad = g.axpy(acc, b, 1.0);
        g.mark_output("bad", bad);
        let err = g.validate().unwrap_err();
        assert!(err.contains("consumed"), "{err}");
    }

    #[test]
    fn fingerprint_is_stable_and_structure_sensitive() {
        let build = |alpha: f32| {
            let mut g = Graph::new();
            let a = g.input("a", Shape::d2(2, 3));
            let acc = g.fill(0.0, Shape::d2(2, 3));
            let out = g.axpy(acc, a, alpha);
            g.mark_output("out", out);
            g
        };
        assert_eq!(build(1.0).fingerprint(), build(1.0).fingerprint());
        assert_ne!(build(1.0).fingerprint(), build(2.0).fingerprint());
    }

    #[test]
    fn dot_dump_names_every_node() {
        let mut g = Graph::new();
        let x = g.input("x", Shape::nchw(1, 2, 4, 4));
        let w = g.input("w", Shape::nchw(3, 2, 3, 3));
        let y = g.conv2d(x, w, Conv2dSpec::new(3, 1, 1));
        let r = g.relu(y);
        g.mark_output("y", r);
        let dot = g.to_dot("tiny");
        assert!(dot.contains("conv2d"));
        assert!(dot.contains("relu"));
        assert!(dot.contains("digraph"));
        assert!(dot.contains("label=\"tiny\""));
    }
}
