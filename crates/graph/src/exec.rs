//! The graph executor: runs a validated [`Graph`] node by node against a
//! [`KernelBackend`].
//!
//! Both shipped compilers lower to this executor — the interpreter runs the
//! graph exactly as lowered (replaying the eager kernel sequence), the
//! fusing compiler runs the graph after its rewrite passes (which introduce
//! the fused ops). The backend is supplied at *run* time, so one compiled
//! plan serves every backend.

use crate::compiler::GraphError;
use crate::ir::{Graph, OpKind, ValueId};
use micronas_tensor::{fused, global_avg_pool, KernelBackend, Tensor, Workspace};

/// One named output of a plan run.
#[derive(Debug)]
pub enum RunOutput {
    /// A dense `f32` tensor.
    Tensor(Tensor),
    /// A flat `f64` buffer (the Gram accumulator).
    F64(Vec<f64>),
}

/// The named outputs of one plan run, in the graph's declaration order.
#[derive(Debug, Default)]
pub struct RunOutputs {
    named: Vec<(String, RunOutput)>,
}

impl RunOutputs {
    /// Borrows the tensor output called `name`, if present.
    pub fn tensor(&self, name: &str) -> Option<&Tensor> {
        self.named.iter().find_map(|(n, o)| match o {
            RunOutput::Tensor(t) if n == name => Some(t),
            _ => None,
        })
    }

    /// Removes and returns the tensor output called `name`, if present.
    pub fn take_tensor(&mut self, name: &str) -> Option<Tensor> {
        let idx = self
            .named
            .iter()
            .position(|(n, o)| n == name && matches!(o, RunOutput::Tensor(_)))?;
        match self.named.remove(idx).1 {
            RunOutput::Tensor(t) => Some(t),
            RunOutput::F64(_) => unreachable!(),
        }
    }

    /// Removes and returns the `f64` output called `name`, if present.
    pub fn take_f64(&mut self, name: &str) -> Option<Vec<f64>> {
        let idx = self
            .named
            .iter()
            .position(|(n, o)| n == name && matches!(o, RunOutput::F64(_)))?;
        match self.named.remove(idx).1 {
            RunOutput::F64(v) => Some(v),
            RunOutput::Tensor(_) => unreachable!(),
        }
    }

    /// All named outputs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &RunOutput)> {
        self.named.iter().map(|(n, o)| (n.as_str(), o))
    }
}

/// Runtime storage for one SSA value.
enum Slot<'a> {
    Empty,
    Input(&'a Tensor),
    Owned(Tensor),
    F64(Vec<f64>),
}

impl Slot<'_> {
    fn tensor(&self) -> Result<&Tensor, GraphError> {
        match self {
            Slot::Input(t) => Ok(t),
            Slot::Owned(t) => Ok(t),
            _ => Err(GraphError::Invalid(
                "executor read a value slot that holds no tensor".into(),
            )),
        }
    }
}

/// A compiled plan: the (possibly rewritten) graph plus precomputed
/// liveness, executed node by node.
#[derive(Debug)]
pub(crate) struct Executor {
    graph: Graph,
    /// Per value: index of the last node that reads it (`usize::MAX` for
    /// graph outputs, which must survive the whole run).
    last_use: Vec<usize>,
    fused_dispatches: u64,
}

impl Executor {
    pub(crate) fn new(graph: Graph) -> Result<Self, GraphError> {
        graph.validate().map_err(GraphError::Invalid)?;
        let mut last_use = vec![0usize; graph.num_values()];
        for (i, node) in graph.nodes().iter().enumerate() {
            for v in node.inputs() {
                last_use[v.index()] = i;
            }
        }
        for (_, v) in graph.output_bindings() {
            last_use[v.index()] = usize::MAX;
        }
        let fused_dispatches = graph.fused_dispatch_count() as u64;
        Ok(Self {
            graph,
            last_use,
            fused_dispatches,
        })
    }

    pub(crate) fn graph(&self) -> &Graph {
        &self.graph
    }

    pub(crate) fn fused_dispatches(&self) -> u64 {
        self.fused_dispatches
    }

    pub(crate) fn run(
        &self,
        backend: &dyn KernelBackend,
        inputs: &[&Tensor],
        ws: &mut Workspace,
    ) -> Result<RunOutputs, GraphError> {
        let _span = micronas_telemetry::span!("graph.exec");
        if self.fused_dispatches > 0 {
            micronas_telemetry::counter_add("graph.fused_dispatches", self.fused_dispatches);
        }
        let expected = self.graph.input_bindings().len();
        if inputs.len() != expected {
            return Err(GraphError::InputArity {
                expected,
                got: inputs.len(),
            });
        }
        let mut slots: Vec<Slot> = Vec::with_capacity(self.graph.num_values());
        slots.resize_with(self.graph.num_values(), || Slot::Empty);

        for (i, node) in self.graph.nodes().iter().enumerate() {
            self.step(backend, inputs, ws, &mut slots, i, node.inputs(), node.op())?;
            // Return buffers whose last reader has now run to the pool —
            // the same recycling discipline the eager path follows.
            for v in node.inputs() {
                if self.last_use[v.index()] == i {
                    if let Slot::Owned(t) = std::mem::replace(&mut slots[v.index()], Slot::Empty) {
                        ws.recycle(t.into_vec());
                    }
                }
            }
        }

        let bindings = self.graph.output_bindings();
        let mut named = Vec::with_capacity(bindings.len());
        for (i, (name, v)) in bindings.iter().enumerate() {
            // The same value may be bound under several output names (e.g.
            // one node feeding two conv edges is collected once per edge);
            // move it out only at its final binding and clone before that.
            let moves_out = !bindings[i + 1..].iter().any(|(_, v2)| v2 == v);
            let out = if moves_out {
                match std::mem::replace(&mut slots[v.index()], Slot::Empty) {
                    Slot::Owned(t) => RunOutput::Tensor(t),
                    Slot::Input(t) => RunOutput::Tensor(t.clone()),
                    Slot::F64(b) => RunOutput::F64(b),
                    Slot::Empty => {
                        return Err(GraphError::MissingOutput(name.clone()));
                    }
                }
            } else {
                match &slots[v.index()] {
                    Slot::Owned(t) => RunOutput::Tensor(t.clone()),
                    Slot::Input(t) => RunOutput::Tensor((*t).clone()),
                    Slot::F64(b) => RunOutput::F64(b.clone()),
                    Slot::Empty => {
                        return Err(GraphError::MissingOutput(name.clone()));
                    }
                }
            };
            named.push((name.clone(), out));
        }
        Ok(RunOutputs { named })
    }

    #[allow(clippy::too_many_arguments)]
    fn step<'a>(
        &self,
        backend: &dyn KernelBackend,
        inputs: &[&'a Tensor],
        ws: &mut Workspace,
        slots: &mut Vec<Slot<'a>>,
        node_idx: usize,
        ins: &[ValueId],
        op: &OpKind,
    ) -> Result<(), GraphError> {
        let node = &self.graph.nodes()[node_idx];
        let out0 = node.outputs()[0];
        let out_shape = self.graph.value_shape(out0).clone();
        match *op {
            OpKind::Input { slot } => {
                let t = inputs[slot];
                if t.shape().dims() != out_shape.dims() {
                    return Err(GraphError::InputShape {
                        slot,
                        expected: out_shape.dims().to_vec(),
                        got: t.shape().dims().to_vec(),
                    });
                }
                slots[out0.index()] = Slot::Input(t);
            }
            OpKind::Fill { value } => {
                let numel = out_shape.numel();
                let buf = if value == 0.0 {
                    ws.take_zeroed(numel)
                } else {
                    let mut b = ws.take(numel);
                    b.fill(value);
                    b
                };
                slots[out0.index()] = Slot::Owned(Tensor::from_vec(out_shape, buf)?);
            }
            OpKind::Conv2d { spec } => {
                let x = slots[ins[0].index()].tensor()?;
                let w = slots[ins[1].index()].tensor()?;
                let y = backend.conv2d(x, w, spec, ws)?;
                slots[out0.index()] = Slot::Owned(y);
            }
            OpKind::Conv2dBackwardInput { spec } => {
                let w = slots[ins[0].index()].tensor()?;
                let g = slots[ins[1].index()].tensor()?;
                let y = backend.conv2d_backward_input(w, g, &out_shape, spec, ws)?;
                slots[out0.index()] = Slot::Owned(y);
            }
            OpKind::Conv2dBackwardWeight { spec, c_out } => {
                let x = slots[ins[0].index()].tensor()?;
                let g = slots[ins[1].index()].tensor()?;
                let y = backend.conv2d_backward_weight(x, g, c_out, spec, ws)?;
                slots[out0.index()] = Slot::Owned(y);
            }
            OpKind::PerSampleGradW {
                spec,
                c_out,
                row_stride,
                offset,
            } => {
                let mut matrix = take_owned(slots, ins[2])?;
                let x = slots[ins[0].index()].tensor()?;
                let g = slots[ins[1].index()].tensor()?;
                backend.conv2d_backward_weight_per_sample_into(
                    x,
                    g,
                    c_out,
                    spec,
                    ws,
                    matrix.data_mut(),
                    row_stride,
                    offset,
                )?;
                slots[out0.index()] = Slot::Owned(matrix);
            }
            OpKind::ClassifierRows {
                num_classes,
                channels,
                row_stride,
                offset,
            } => {
                let mut matrix = take_owned(slots, ins[1])?;
                let features = slots[ins[0].index()].tensor()?;
                let fd = features.data();
                let n = features.shape().dims()[0];
                let m = matrix.data_mut();
                for b in 0..n {
                    let start = b * row_stride + offset;
                    let row = &mut m[start..start + num_classes * channels];
                    for o in 0..num_classes {
                        for i in 0..channels {
                            row[o * channels + i] = fd[b * channels + i];
                        }
                    }
                }
                slots[out0.index()] = Slot::Owned(matrix);
            }
            OpKind::AvgPool2d {
                kernel,
                stride,
                padding,
            } => {
                let x = slots[ins[0].index()].tensor()?;
                let y = backend.avg_pool2d(x, kernel, stride, padding, ws)?;
                slots[out0.index()] = Slot::Owned(y);
            }
            OpKind::AvgPool2dBackward {
                kernel,
                stride,
                padding,
            } => {
                let g = slots[ins[0].index()].tensor()?;
                let y = backend.avg_pool2d_backward(g, &out_shape, kernel, stride, padding, ws)?;
                slots[out0.index()] = Slot::Owned(y);
            }
            OpKind::Relu => {
                let x = slots[ins[0].index()].tensor()?;
                let mut buf = ws.take(x.numel());
                for (dst, &v) in buf.iter_mut().zip(x.data()) {
                    *dst = if v > 0.0 { v } else { 0.0 };
                }
                slots[out0.index()] = Slot::Owned(Tensor::from_vec(out_shape, buf)?);
            }
            OpKind::ReluMask => {
                let mut g = take_owned(slots, ins[0])?;
                let pre = slots[ins[1].index()].tensor()?;
                for (gv, &x) in g.data_mut().iter_mut().zip(pre.data()) {
                    if x <= 0.0 {
                        *gv = 0.0;
                    }
                }
                slots[out0.index()] = Slot::Owned(g);
            }
            OpKind::Axpy { alpha } => {
                let mut acc = take_owned(slots, ins[0])?;
                let x = slots[ins[1].index()].tensor()?;
                acc.axpy(alpha, x)?;
                slots[out0.index()] = Slot::Owned(acc);
            }
            OpKind::CopyScaled { alpha } => {
                let x = slots[ins[0].index()].tensor()?;
                let mut buf = ws.take(x.numel());
                for (dst, &v) in buf.iter_mut().zip(x.data()) {
                    *dst = alpha * v;
                }
                slots[out0.index()] = Slot::Owned(Tensor::from_vec(out_shape, buf)?);
            }
            OpKind::GlobalAvgPool => {
                let x = slots[ins[0].index()].tensor()?;
                let y = global_avg_pool(x)?;
                slots[out0.index()] = Slot::Owned(y);
            }
            OpKind::SpreadPlanes => {
                let gf = slots[ins[0].index()].tensor()?;
                let hw = out_shape.dims()[2] * out_shape.dims()[3];
                let mut buf = ws.take(out_shape.numel());
                for (&g, plane) in gf.data().iter().zip(buf.chunks_exact_mut(hw)) {
                    plane.fill(g / hw as f32);
                }
                slots[out0.index()] = Slot::Owned(Tensor::from_vec(out_shape, buf)?);
            }
            OpKind::GemmNn { m, k, n } => {
                let a = slots[ins[0].index()].tensor()?;
                let b = slots[ins[1].index()].tensor()?;
                let mut c = ws.take_zeroed(m * n);
                backend.gemm_nn(m, k, n, a.data(), b.data(), &mut c, false);
                slots[out0.index()] = Slot::Owned(Tensor::from_vec(out_shape, c)?);
            }
            OpKind::GemmNt { m, k, n } => {
                let a = slots[ins[0].index()].tensor()?;
                let b = slots[ins[1].index()].tensor()?;
                let mut c = ws.take_zeroed(m * n);
                backend.gemm_nt(m, k, n, a.data(), b.data(), &mut c, false);
                slots[out0.index()] = Slot::Owned(Tensor::from_vec(out_shape, c)?);
            }
            OpKind::GemmTn { m, k, n } => {
                let a = slots[ins[0].index()].tensor()?;
                let b = slots[ins[1].index()].tensor()?;
                let mut c = ws.take_zeroed(m * n);
                backend.gemm_tn(m, k, n, a.data(), b.data(), &mut c, false);
                slots[out0.index()] = Slot::Owned(Tensor::from_vec(out_shape, c)?);
            }
            OpKind::GramNtF64 { n, p } => {
                let j = slots[ins[0].index()].tensor()?;
                let mut out = vec![0.0f64; n * n];
                backend.gram_nt_f64(n, p, j.data(), &mut out);
                slots[out0.index()] = Slot::F64(out);
            }
            OpKind::Quantize { scale } => {
                let x = slots[ins[0].index()].tensor()?;
                let mut buf = ws.take(x.numel());
                for (dst, &v) in buf.iter_mut().zip(x.data()) {
                    *dst = (v / scale).round().clamp(-127.0, 127.0);
                }
                slots[out0.index()] = Slot::Owned(Tensor::from_vec(out_shape, buf)?);
            }
            OpKind::Dequantize { scale } => {
                let x = slots[ins[0].index()].tensor()?;
                let mut buf = ws.take(x.numel());
                for (dst, &v) in buf.iter_mut().zip(x.data()) {
                    *dst = v * scale;
                }
                slots[out0.index()] = Slot::Owned(Tensor::from_vec(out_shape, buf)?);
            }
            OpKind::FusedConvRelu { spec } => {
                let pre = slots[ins[0].index()].tensor()?;
                let w = slots[ins[1].index()].tensor()?;
                let y = fused::conv2d_relu_gemm(pre, w, spec, ws)?;
                slots[out0.index()] = Slot::Owned(y);
            }
            OpKind::FusedConvBackward {
                spec,
                c_out,
                row_stride,
                offset,
            } => {
                let mut matrix = take_owned(slots, ins[3])?;
                let pre = slots[ins[0].index()].tensor()?;
                let g = slots[ins[1].index()].tensor()?;
                let w = slots[ins[2].index()].tensor()?;
                let grad_in = fused::conv2d_backward_fused(
                    pre,
                    g,
                    w,
                    c_out,
                    spec,
                    ws,
                    matrix.data_mut(),
                    row_stride,
                    offset,
                )?;
                slots[node.outputs()[0].index()] = Slot::Owned(matrix);
                slots[node.outputs()[1].index()] = Slot::Owned(grad_in);
            }
        }
        Ok(())
    }
}

/// Moves an in-place-consumed value out of its slot; it must be owned (the
/// lowering guarantees consumed values are never graph inputs).
fn take_owned<'a>(slots: &mut [Slot<'a>], v: ValueId) -> Result<Tensor, GraphError> {
    match std::mem::replace(&mut slots[v.index()], Slot::Empty) {
        Slot::Owned(t) => Ok(t),
        other => {
            slots[v.index()] = other;
            Err(GraphError::Invalid(
                "in-place op consumed a value that is not an owned tensor".into(),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Graph;
    use micronas_tensor::{paper_default_backend, Conv2dSpec, Shape};

    fn run_graph(g: Graph, inputs: &[&Tensor]) -> RunOutputs {
        let exec = Executor::new(g).unwrap();
        let mut ws = Workspace::new();
        exec.run(paper_default_backend().as_ref(), inputs, &mut ws)
            .unwrap()
    }

    #[test]
    fn axpy_chain_matches_manual_accumulation() {
        let mut g = Graph::new();
        let a = g.input("a", Shape::d2(2, 2));
        let b = g.input("b", Shape::d2(2, 2));
        let acc = g.fill(0.0, Shape::d2(2, 2));
        let acc = g.axpy(acc, a, 1.0);
        let acc = g.axpy(acc, b, 2.0);
        g.mark_output("sum", acc);
        let ta = Tensor::from_vec(Shape::d2(2, 2), vec![1., 2., 3., 4.]).unwrap();
        let tb = Tensor::from_vec(Shape::d2(2, 2), vec![10., 20., 30., 40.]).unwrap();
        let out = run_graph(g, &[&ta, &tb]);
        assert_eq!(out.tensor("sum").unwrap().data(), &[21., 42., 63., 84.]);
    }

    #[test]
    fn conv_relu_graph_matches_direct_kernels() {
        let mut g = Graph::new();
        let x = g.input("x", Shape::nchw(1, 2, 5, 5));
        let w = g.input("w", Shape::nchw(3, 2, 3, 3));
        let spec = Conv2dSpec::new(3, 1, 1);
        let y = g.conv2d(x, w, spec);
        let r = g.relu(y);
        g.mark_output("y", r);

        let mut rng = micronas_tensor::DeterministicRng::new(7);
        let tx = Tensor::from_vec(
            Shape::nchw(1, 2, 5, 5),
            (0..50).map(|_| rng.next_f32() - 0.5).collect(),
        )
        .unwrap();
        let tw = Tensor::from_vec(
            Shape::nchw(3, 2, 3, 3),
            (0..54).map(|_| rng.next_f32() - 0.5).collect(),
        )
        .unwrap();
        let out = run_graph(g, &[&tx, &tw]);

        let mut ws = Workspace::new();
        let expect = paper_default_backend()
            .conv2d(&tx, &tw, spec, &mut ws)
            .unwrap();
        let expect: Vec<f32> = expect
            .data()
            .iter()
            .map(|&v| if v > 0.0 { v } else { 0.0 })
            .collect();
        assert_eq!(out.tensor("y").unwrap().data(), &expect[..]);
    }

    #[test]
    fn quantize_dequantize_round_trips_on_grid_values() {
        let mut g = Graph::new();
        let x = g.input("x", Shape::d1(4));
        let q = g.quantize(x, 0.5);
        let d = g.dequantize(q, 0.5);
        g.mark_output("q", q);
        g.mark_output("d", d);
        let tx = Tensor::from_vec(Shape::d1(4), vec![1.0, -0.5, 63.5, -200.0]).unwrap();
        let out = run_graph(g, &[&tx]);
        assert_eq!(out.tensor("q").unwrap().data(), &[2.0, -1.0, 127.0, -127.0]);
        assert_eq!(
            out.tensor("d").unwrap().data(),
            &[1.0, -0.5, 63.5, -63.5],
            "dequantize saturates at the clamp edge"
        );
    }

    #[test]
    fn gram_graph_matches_backend_gram() {
        let (n, p) = (3usize, 5usize);
        let mut g = Graph::new();
        let j = g.input("j", Shape::d2(n, p));
        let gram = g.gram_nt_f64(j, n, p);
        g.mark_output("gram", gram);
        let mut rng = micronas_tensor::DeterministicRng::new(11);
        let tj = Tensor::from_vec(
            Shape::d2(n, p),
            (0..n * p).map(|_| rng.next_f32() - 0.5).collect(),
        )
        .unwrap();
        let mut out = run_graph(g, &[&tj]);
        let got = out.take_f64("gram").unwrap();
        let mut expect = vec![0.0f64; n * n];
        paper_default_backend().gram_nt_f64(n, p, tj.data(), &mut expect);
        assert_eq!(got, expect);
    }

    #[test]
    fn arity_and_shape_mismatches_are_reported() {
        let mut g = Graph::new();
        let x = g.input("x", Shape::d2(2, 2));
        g.mark_output("x", x);
        let exec = Executor::new(g).unwrap();
        let mut ws = Workspace::new();
        let err = exec
            .run(paper_default_backend().as_ref(), &[], &mut ws)
            .unwrap_err();
        assert!(err.to_string().contains("expected 1 input"), "{err}");
        let bad = Tensor::zeros(Shape::d2(3, 3));
        let err = exec
            .run(paper_default_backend().as_ref(), &[&bad], &mut ws)
            .unwrap_err();
        assert!(err.to_string().contains("slot 0"), "{err}");
    }
}
