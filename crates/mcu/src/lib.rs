//! Cycle-approximate model of the target microcontroller.
//!
//! The paper profiles every candidate operation on a physical STM32
//! NUCLEO-F746ZG board (Arm Cortex-M7 @ 216 MHz) to build its latency lookup
//! table. No board is available in this environment, so this crate provides
//! the substitute required by the reproduction: an analytic, cycle-level cost
//! model of a Cortex-M7-class core executing CMSIS-NN-style convolution,
//! pooling and fully connected kernels.
//!
//! The model captures the effects that give the paper's latency estimator its
//! MCU-specific bias:
//!
//! * single-precision MAC throughput with limited dual-issue,
//! * flash wait-states on weight fetches vs. fast SRAM/DTCM activations,
//! * per-output-element loop overhead (much heavier, relatively, for 1×1
//!   convolutions and pooling than for 3×3 convolutions),
//! * a fixed per-layer invocation overhead (kernel dispatch, im2col setup),
//!   which the paper models as the "constant hardware latency overhead".
//!
//! The absolute cycle counts are approximations, but the *relative* cost of
//! the five candidate operations — which is what drives the hardware-aware
//! search — follows the published CMSIS-NN characterisation of Cortex-M7.
//!
//! # Example
//!
//! ```
//! use micronas_mcu::{McuSimulator, McuSpec};
//! use micronas_searchspace::{MacroSkeleton, SearchSpace};
//!
//! let space = SearchSpace::nas_bench_201();
//! let cell = space.cell(4_000).unwrap();
//! let skeleton = MacroSkeleton::nas_bench_201(10);
//! let sim = McuSimulator::new(McuSpec::stm32f746zg());
//! let report = sim.simulate(&skeleton.instantiate(&cell));
//! assert!(report.total_latency_ms() > 0.0);
//! ```

#![warn(missing_docs)]

mod cycles;
mod simulator;
mod spec;

pub use cycles::{CycleModel, LayerTiming};
pub use simulator::{InferenceReport, McuSimulator};
pub use spec::McuSpec;
