use crate::McuSpec;
use micronas_searchspace::{OpClass, OpInstance};
use serde::{Deserialize, Serialize};

/// Timing estimate for one primitive layer instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerTiming {
    /// Cycles spent in arithmetic (MACs / additions).
    pub compute_cycles: f64,
    /// Cycles spent moving activations and weights.
    pub memory_cycles: f64,
    /// Fixed invocation overhead cycles.
    pub overhead_cycles: f64,
    /// Total modelled cycles for the layer.
    pub total_cycles: f64,
}

impl LayerTiming {
    /// Latency of the layer in milliseconds on the given device.
    pub fn latency_ms(&self, spec: &McuSpec) -> f64 {
        spec.cycles_to_ms(self.total_cycles)
    }
}

/// The analytic cycle model for one device.
///
/// The model treats every layer as a compute phase overlapped with a memory
/// phase (the slower of the two dominates, with a small serialisation
/// penalty) plus a fixed invocation overhead. Multiply–accumulate counts and
/// byte traffic are derived from the layer geometry in [`OpInstance`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CycleModel {
    spec: McuSpec,
}

impl CycleModel {
    /// Creates a cycle model for the given device.
    pub fn new(spec: McuSpec) -> Self {
        Self { spec }
    }

    /// The device description backing this model.
    pub fn spec(&self) -> &McuSpec {
        &self.spec
    }

    /// Number of multiply–accumulate operations performed by the layer.
    pub fn macs(&self, op: &OpInstance) -> u64 {
        let out_elems = op.output_elements() as u64;
        match op.class {
            OpClass::Conv => out_elems * (op.c_in * op.kernel * op.kernel) as u64,
            OpClass::Linear => (op.c_in * op.c_out) as u64,
            // Pooling and additions perform one add per window element / element.
            OpClass::Pool => out_elems * (op.kernel * op.kernel) as u64,
            OpClass::Add => out_elems,
            OpClass::GlobalPool => op.input_elements() as u64,
            OpClass::Identity | OpClass::Zero => 0,
        }
    }

    /// Bytes of weight data streamed from flash for the layer.
    pub fn weight_bytes(&self, op: &OpInstance) -> u64 {
        let params = match op.class {
            OpClass::Conv => op.c_in * op.c_out * op.kernel * op.kernel,
            OpClass::Linear => op.c_in * op.c_out,
            _ => 0,
        };
        (params * 4) as u64
    }

    /// Bytes of activation traffic (reads + writes) for the layer.
    pub fn activation_bytes(&self, op: &OpInstance) -> u64 {
        let io = match op.class {
            OpClass::Zero => op.output_elements(),
            _ => op.input_elements() + op.output_elements(),
        };
        (io * 4) as u64
    }

    /// Estimated timing of one layer.
    pub fn layer_timing(&self, op: &OpInstance) -> LayerTiming {
        if matches!(op.class, OpClass::Zero) {
            // The `none` operation compiles away entirely.
            return LayerTiming {
                compute_cycles: 0.0,
                memory_cycles: 0.0,
                overhead_cycles: 0.0,
                total_cycles: 0.0,
            };
        }

        let macs = self.macs(op) as f64;
        let out_elems = op.output_elements() as f64;
        let compute_cycles =
            macs / self.spec.macs_per_cycle + out_elems * self.spec.per_element_overhead_cycles;

        // Weights come from flash (wait states), activations from SRAM.
        let weight_cycles = self.weight_bytes(op) as f64 / self.spec.bus_width_bytes
            * (1.0 + self.spec.flash_wait_states);
        let activation_cycles = self.activation_bytes(op) as f64 / self.spec.bus_width_bytes;
        let memory_cycles = weight_cycles + activation_cycles;

        let overhead_cycles = match op.class {
            OpClass::Identity => self.spec.layer_invocation_cycles * 0.25,
            _ => self.spec.layer_invocation_cycles,
        };

        // Compute and memory partially overlap on the M7 (store buffer +
        // prefetch); the slower phase dominates and 30% of the faster phase
        // leaks through as serialisation.
        let overlapped =
            compute_cycles.max(memory_cycles) + 0.3 * compute_cycles.min(memory_cycles);
        LayerTiming {
            compute_cycles,
            memory_cycles,
            overhead_cycles,
            total_cycles: overlapped + overhead_cycles,
        }
    }
}

impl Default for CycleModel {
    fn default() -> Self {
        Self::new(McuSpec::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use micronas_searchspace::{LayerRole, Operation};

    fn conv_instance(kernel: usize, c: usize, r: usize) -> OpInstance {
        OpInstance {
            role: LayerRole::Cell {
                stage: 0,
                cell: 0,
                edge: 0,
            },
            class: OpClass::Conv,
            cell_op: Some(if kernel == 3 {
                Operation::NorConv3x3
            } else {
                Operation::NorConv1x1
            }),
            kernel,
            stride: 1,
            c_in: c,
            c_out: c,
            h_in: r,
            w_in: r,
        }
    }

    fn instance_of(class: OpClass, kernel: usize, c: usize, r: usize) -> OpInstance {
        OpInstance {
            role: LayerRole::Cell {
                stage: 0,
                cell: 0,
                edge: 0,
            },
            class,
            cell_op: None,
            kernel,
            stride: 1,
            c_in: c,
            c_out: c,
            h_in: r,
            w_in: r,
        }
    }

    #[test]
    fn mac_counts_match_analytic_formulas() {
        let model = CycleModel::default();
        let conv3 = conv_instance(3, 16, 32);
        // out 16*32*32, per output 16*9 macs
        assert_eq!(model.macs(&conv3), (16 * 32 * 32) as u64 * (16 * 9) as u64);
        let conv1 = conv_instance(1, 16, 32);
        assert_eq!(model.macs(&conv1), (16 * 32 * 32) as u64 * 16);
        let skip = instance_of(OpClass::Identity, 1, 16, 32);
        assert_eq!(model.macs(&skip), 0);
    }

    #[test]
    fn conv3x3_slower_than_conv1x1_slower_than_pool() {
        let model = CycleModel::default();
        let t3 = model.layer_timing(&conv_instance(3, 16, 32)).total_cycles;
        let t1 = model.layer_timing(&conv_instance(1, 16, 32)).total_cycles;
        let tp = model
            .layer_timing(&instance_of(OpClass::Pool, 3, 16, 32))
            .total_cycles;
        let ts = model
            .layer_timing(&instance_of(OpClass::Identity, 1, 16, 32))
            .total_cycles;
        let tz = model
            .layer_timing(&instance_of(OpClass::Zero, 1, 16, 32))
            .total_cycles;
        assert!(t3 > t1, "3x3 conv should cost more than 1x1 conv");
        assert!(
            t1 > tp,
            "1x1 conv should cost more than 3x3 avg pool at same width"
        );
        assert!(tp > ts, "pooling should cost more than a skip connection");
        assert_eq!(tz, 0.0, "the none op costs nothing");
    }

    #[test]
    fn conv3x3_vs_1x1_ratio_is_less_than_flops_ratio() {
        // The MCU-specific bias: per-element overhead and memory traffic mean
        // a 3x3 conv is NOT 9x slower than a 1x1 conv even though it has 9x
        // the FLOPs. This is exactly why the paper's latency-guided search
        // beats the FLOPs-guided one.
        let model = CycleModel::default();
        let t3 = model.layer_timing(&conv_instance(3, 16, 32)).total_cycles;
        let t1 = model.layer_timing(&conv_instance(1, 16, 32)).total_cycles;
        let ratio = t3 / t1;
        assert!(
            ratio < 9.0,
            "latency ratio {ratio} should be below the 9x FLOPs ratio"
        );
        assert!(
            ratio > 2.0,
            "latency ratio {ratio} should still clearly favour 1x1"
        );
    }

    #[test]
    fn faster_clock_reduces_latency_not_cycles() {
        let f7 = CycleModel::new(McuSpec::stm32f746zg());
        let h7 = CycleModel::new(McuSpec::stm32h743());
        let inst = conv_instance(3, 16, 32);
        let t_f7 = f7.layer_timing(&inst);
        let t_h7 = h7.layer_timing(&inst);
        assert!(t_h7.latency_ms(h7.spec()) < t_f7.latency_ms(f7.spec()));
    }

    #[test]
    fn weight_and_activation_bytes() {
        let model = CycleModel::default();
        let conv = conv_instance(3, 8, 16);
        assert_eq!(model.weight_bytes(&conv), (8 * 8 * 9 * 4) as u64);
        assert_eq!(
            model.activation_bytes(&conv),
            ((8 * 16 * 16) * 2 * 4) as u64
        );
        let skip = instance_of(OpClass::Identity, 1, 8, 16);
        assert_eq!(model.weight_bytes(&skip), 0);
    }

    #[test]
    fn timings_are_positive_and_consistent() {
        let model = CycleModel::default();
        let inst = conv_instance(3, 16, 32);
        let t = model.layer_timing(&inst);
        assert!(t.total_cycles >= t.compute_cycles.max(t.memory_cycles));
        assert!(t.total_cycles > 0.0);
        assert!(t.latency_ms(model.spec()) > 0.0);
    }
}
