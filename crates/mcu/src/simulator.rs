use crate::{CycleModel, LayerTiming, McuSpec};
use micronas_searchspace::{OpClass, OpInstance};
use serde::{Deserialize, Serialize};

/// Full-network inference estimate produced by the [`McuSimulator`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferenceReport {
    /// Per-layer timings in the order the layers were supplied.
    pub layers: Vec<LayerTiming>,
    /// Total cycles including the fixed per-inference overhead.
    pub total_cycles: f64,
    /// Fixed per-inference overhead cycles included in `total_cycles`.
    pub inference_overhead_cycles: f64,
    /// Peak activation working-set estimate in bytes (largest single
    /// input + output footprint across layers).
    pub peak_activation_bytes: u64,
    /// Total weight storage in bytes.
    pub weight_bytes: u64,
    /// Device the estimate was produced for.
    pub device: String,
    /// Core clock used for the time conversion, in MHz.
    pub clock_mhz: f64,
}

impl InferenceReport {
    /// Total inference latency in milliseconds.
    pub fn total_latency_ms(&self) -> f64 {
        self.total_cycles / self.clock_mhz / 1_000.0
    }

    /// Whether the model fits the given SRAM/flash budget (in KiB).
    pub fn fits(&self, sram_kib: usize, flash_kib: usize) -> bool {
        self.peak_activation_bytes <= (sram_kib * 1024) as u64
            && self.weight_bytes <= (flash_kib * 1024) as u64
    }
}

/// Cycle-approximate whole-network simulator for a single MCU.
///
/// This plays the role of the physical board in the paper's workflow: the
/// latency lookup table in `micronas-hw` is *profiled* against this simulator
/// rather than against real hardware.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct McuSimulator {
    model: CycleModel,
}

impl McuSimulator {
    /// Creates a simulator for the given device.
    pub fn new(spec: McuSpec) -> Self {
        Self {
            model: CycleModel::new(spec),
        }
    }

    /// The underlying cycle model.
    pub fn cycle_model(&self) -> &CycleModel {
        &self.model
    }

    /// The device description.
    pub fn spec(&self) -> &McuSpec {
        self.model.spec()
    }

    /// Profiles a single primitive operation, as the paper does when building
    /// its per-operation latency lookup table.
    pub fn profile_op(&self, op: &OpInstance) -> LayerTiming {
        self.model.layer_timing(op)
    }

    /// Simulates a full inference over the flattened layer list of a network.
    pub fn simulate(&self, ops: &[OpInstance]) -> InferenceReport {
        let spec = self.model.spec();
        let mut layers = Vec::with_capacity(ops.len());
        let mut total = spec.inference_overhead_cycles;
        let mut peak_activation = 0u64;
        let mut weight_bytes = 0u64;
        for op in ops {
            let timing = self.model.layer_timing(op);
            total += timing.total_cycles;
            weight_bytes += self.model.weight_bytes(op);
            if !matches!(op.class, OpClass::Zero) {
                let working_set = ((op.input_elements() + op.output_elements()) * 4) as u64;
                peak_activation = peak_activation.max(working_set);
            }
            layers.push(timing);
        }
        InferenceReport {
            layers,
            total_cycles: total,
            inference_overhead_cycles: spec.inference_overhead_cycles,
            peak_activation_bytes: peak_activation,
            weight_bytes,
            device: spec.name.clone(),
            clock_mhz: spec.clock_mhz,
        }
    }
}

impl Default for McuSimulator {
    fn default() -> Self {
        Self::new(McuSpec::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use micronas_searchspace::{MacroSkeleton, Operation, SearchSpace};

    fn space_and_skeleton() -> (SearchSpace, MacroSkeleton) {
        (
            SearchSpace::nas_bench_201(),
            MacroSkeleton::nas_bench_201(10),
        )
    }

    #[test]
    fn all_conv_network_is_slowest_all_none_fastest() {
        let (space, skeleton) = space_and_skeleton();
        let sim = McuSimulator::default();
        let all_none = sim.simulate(&skeleton.instantiate(&space.cell(0).unwrap()));
        // Index of the all-conv3x3 cell: every edge = op index 3.
        let all_conv_idx = (0..6).fold(0usize, |acc, i| acc + 3 * 5usize.pow(i as u32));
        let all_conv = sim.simulate(&skeleton.instantiate(&space.cell(all_conv_idx).unwrap()));
        assert!(all_conv.total_cycles > all_none.total_cycles * 2.0);
        assert!(
            all_none.total_latency_ms() > 0.0,
            "stem/head still cost time"
        );
    }

    #[test]
    fn latency_in_plausible_mcu_range() {
        // A full NAS-Bench-201 network on a 216 MHz M7 takes on the order of
        // tens of milliseconds to a few seconds; sanity-check the model is in
        // that band rather than wildly off.
        let (space, skeleton) = space_and_skeleton();
        let sim = McuSimulator::default();
        let mid = sim.simulate(&skeleton.instantiate(&space.cell(7_777).unwrap()));
        let ms = mid.total_latency_ms();
        assert!(
            ms > 5.0 && ms < 10_000.0,
            "latency {ms} ms outside plausible MCU range"
        );
    }

    #[test]
    fn report_accounts_every_layer() {
        let (space, skeleton) = space_and_skeleton();
        let sim = McuSimulator::default();
        let ops = skeleton.instantiate(&space.cell(123).unwrap());
        let report = sim.simulate(&ops);
        assert_eq!(report.layers.len(), ops.len());
        let layer_sum: f64 = report.layers.iter().map(|l| l.total_cycles).sum();
        assert!((report.total_cycles - layer_sum - report.inference_overhead_cycles).abs() < 1e-6);
    }

    #[test]
    fn memory_accounting_tracks_weights_and_activations() {
        let (space, skeleton) = space_and_skeleton();
        let sim = McuSimulator::default();
        let report = sim.simulate(&skeleton.instantiate(&space.cell(9_000).unwrap()));
        assert!(report.weight_bytes > 0);
        assert!(report.peak_activation_bytes > 0);
        // The NAS-Bench-201 skeleton easily fits an F746's flash but may or
        // may not fit SRAM; fits() must at least be monotone in the budget.
        assert!(report.fits(usize::MAX / 2048, usize::MAX / 2048));
        assert!(!report.fits(0, 0));
    }

    #[test]
    fn skip_only_cell_cheaper_than_pool_only_cell() {
        let (space, skeleton) = space_and_skeleton();
        let sim = McuSimulator::default();
        let skip_idx = (0..6).fold(0usize, |acc, i| {
            acc + Operation::SkipConnect.index() * 5usize.pow(i as u32)
        });
        let pool_idx = (0..6).fold(0usize, |acc, i| {
            acc + Operation::AvgPool3x3.index() * 5usize.pow(i as u32)
        });
        let skip = sim.simulate(&skeleton.instantiate(&space.cell(skip_idx).unwrap()));
        let pool = sim.simulate(&skeleton.instantiate(&space.cell(pool_idx).unwrap()));
        assert!(skip.total_cycles < pool.total_cycles);
    }

    #[test]
    fn profile_op_matches_cycle_model() {
        let (space, skeleton) = space_and_skeleton();
        let sim = McuSimulator::default();
        let ops = skeleton.instantiate(&space.cell(42).unwrap());
        for op in ops.iter().take(10) {
            let a = sim.profile_op(op);
            let b = sim.cycle_model().layer_timing(op);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn different_devices_give_different_latencies() {
        let (space, skeleton) = space_and_skeleton();
        let ops = skeleton.instantiate(&space.cell(5_555).unwrap());
        let f7 = McuSimulator::new(McuSpec::stm32f746zg()).simulate(&ops);
        let l4 = McuSimulator::new(McuSpec::stm32l476()).simulate(&ops);
        let h7 = McuSimulator::new(McuSpec::stm32h743()).simulate(&ops);
        assert!(l4.total_latency_ms() > f7.total_latency_ms());
        assert!(h7.total_latency_ms() < f7.total_latency_ms());
    }
}
