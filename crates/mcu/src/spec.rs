use serde::{Deserialize, Serialize};

/// Static description of a target microcontroller.
///
/// The default construction [`McuSpec::stm32f746zg`] models the board used in
/// the paper (STM32 NUCLEO-F746ZG); [`McuSpec::stm32l476`] and
/// [`McuSpec::stm32h743`] are provided for the cross-device sweeps in the
/// extended benchmarks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct McuSpec {
    /// Human-readable device name.
    pub name: String,
    /// Core clock in MHz.
    pub clock_mhz: f64,
    /// Single-precision multiply–accumulate operations the core can retire
    /// per cycle in a tight, well-scheduled loop (dual-issue + FMA).
    pub macs_per_cycle: f64,
    /// Additional cycles of loop/bookkeeping overhead per output element.
    pub per_element_overhead_cycles: f64,
    /// Flash wait states incurred when streaming weights from flash.
    pub flash_wait_states: f64,
    /// Bus width in bytes for memory transfers.
    pub bus_width_bytes: f64,
    /// Fixed per-layer invocation overhead in cycles (kernel dispatch,
    /// buffer setup, im2col bookkeeping).
    pub layer_invocation_cycles: f64,
    /// Fixed per-inference overhead in cycles (framework entry, tensor arena
    /// setup). This is the "constant hardware latency overhead" of the paper.
    pub inference_overhead_cycles: f64,
    /// Available SRAM in KiB (activation memory).
    pub sram_kib: usize,
    /// Available flash in KiB (weight storage).
    pub flash_kib: usize,
}

impl McuSpec {
    /// The STM32F746ZG (Cortex-M7 @ 216 MHz) used by the paper.
    pub fn stm32f746zg() -> Self {
        Self {
            name: "STM32F746ZG (Cortex-M7 @216MHz)".to_string(),
            clock_mhz: 216.0,
            // Cortex-M7 dual-issues a subset of FP ops; sustained CMSIS-NN
            // float kernels reach roughly 0.8 MAC/cycle.
            macs_per_cycle: 0.8,
            per_element_overhead_cycles: 6.0,
            flash_wait_states: 7.0,
            bus_width_bytes: 8.0,
            layer_invocation_cycles: 4_000.0,
            inference_overhead_cycles: 150_000.0,
            sram_kib: 320,
            flash_kib: 1_024,
        }
    }

    /// A low-power Cortex-M4 class device (STM32L476 @ 80 MHz).
    pub fn stm32l476() -> Self {
        Self {
            name: "STM32L476 (Cortex-M4 @80MHz)".to_string(),
            clock_mhz: 80.0,
            macs_per_cycle: 0.45,
            per_element_overhead_cycles: 8.0,
            flash_wait_states: 4.0,
            bus_width_bytes: 4.0,
            layer_invocation_cycles: 5_000.0,
            inference_overhead_cycles: 180_000.0,
            sram_kib: 128,
            flash_kib: 1_024,
        }
    }

    /// A high-end Cortex-M7 device (STM32H743 @ 480 MHz).
    pub fn stm32h743() -> Self {
        Self {
            name: "STM32H743 (Cortex-M7 @480MHz)".to_string(),
            clock_mhz: 480.0,
            macs_per_cycle: 0.9,
            per_element_overhead_cycles: 5.0,
            flash_wait_states: 4.0,
            bus_width_bytes: 8.0,
            layer_invocation_cycles: 3_500.0,
            inference_overhead_cycles: 120_000.0,
            sram_kib: 512,
            flash_kib: 2_048,
        }
    }

    /// Cycle period in microseconds.
    pub fn cycle_us(&self) -> f64 {
        1.0 / self.clock_mhz
    }

    /// Converts a cycle count to milliseconds on this device.
    pub fn cycles_to_ms(&self, cycles: f64) -> f64 {
        cycles * self.cycle_us() / 1_000.0
    }
}

impl Default for McuSpec {
    fn default() -> Self {
        Self::stm32f746zg()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_sensible_values() {
        let f7 = McuSpec::stm32f746zg();
        assert_eq!(f7.clock_mhz, 216.0);
        assert!(f7.macs_per_cycle > 0.0 && f7.macs_per_cycle <= 2.0);
        assert!(f7.sram_kib >= 256);

        let l4 = McuSpec::stm32l476();
        assert!(l4.clock_mhz < f7.clock_mhz);
        assert!(l4.macs_per_cycle < f7.macs_per_cycle);

        let h7 = McuSpec::stm32h743();
        assert!(h7.clock_mhz > f7.clock_mhz);
    }

    #[test]
    fn cycle_conversions() {
        let spec = McuSpec::stm32f746zg();
        // 216e6 cycles is exactly one second = 1000 ms.
        assert!((spec.cycles_to_ms(216e6) - 1_000.0).abs() < 1e-6);
        assert!((spec.cycle_us() - 1.0 / 216.0).abs() < 1e-12);
    }

    #[test]
    fn default_is_the_paper_board() {
        assert_eq!(McuSpec::default(), McuSpec::stm32f746zg());
    }
}
