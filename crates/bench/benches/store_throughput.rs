//! Evaluation-store throughput: concurrent hit/miss rates of the sharded
//! map, logged-insert overhead, and the headline cold-vs-warm paper-sweep
//! comparison.
//!
//! The sweep comparison is the acceptance check of the shared store: a
//! repeated paper grid against a warm store must perform **zero** proxy
//! recomputations (100% hit rate) and finish several times faster than the
//! cold run, while producing a bitwise-identical report. The measured
//! numbers land in `target/bench-json/store_throughput.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use micronas::experiments::{run_paper_sweep, SweepScale};
use micronas::{EvalCacheStats, MicroNasConfig, MicroNasSearch, ObjectiveWeights, SearchSession};
use micronas_bench::{banner, bench_config, cache_stat_fields, paper_scale, record_bench_json};
use micronas_datasets::DatasetKind;
use micronas_proxies::ZeroCostMetrics;
use micronas_searchspace::SearchSpace;
use micronas_store::{EvalKey, EvalRecord, EvalStore};
use rayon::prelude::*;
use std::sync::Arc;
use std::time::Instant;

/// Keys used by the lookup benchmarks. Seeds (not cells) vary so every key
/// is distinct even across isomorphic cells.
fn keys(n: usize) -> Vec<EvalKey> {
    let space = SearchSpace::nas_bench_201();
    (0..n)
        .map(|i| {
            EvalKey::zero_cost(
                &space.cell(i % space.len()).unwrap(),
                DatasetKind::Cifar10,
                i as u64,
                32,
            )
        })
        .collect()
}

fn record(i: usize) -> EvalRecord {
    EvalRecord::ZeroCost(ZeroCostMetrics {
        ntk_condition: 1.0 + i as f64,
        linear_regions: i + 1,
        trainability: -(1.0 + i as f64).ln(),
        expressivity: (1.0 + i as f64).ln(),
    })
}

/// Parallel warm lookups per second over a pre-populated store.
fn measure_hit_throughput(n: usize) -> f64 {
    let store = EvalStore::in_memory(0);
    let keys = keys(n);
    for (i, k) in keys.iter().enumerate() {
        store.insert(*k, record(i)).unwrap();
    }
    let start = Instant::now();
    let found: Vec<usize> = keys
        .par_iter()
        .map(|k| usize::from(store.get(k).is_some()))
        .collect();
    assert_eq!(found.into_iter().sum::<usize>(), n);
    n as f64 / start.elapsed().as_secs_f64()
}

/// Memory-only inserts per second (the miss path without log I/O).
fn measure_insert_throughput(n: usize) -> f64 {
    let store = EvalStore::in_memory(0);
    let keys = keys(n);
    let start = Instant::now();
    for (i, k) in keys.iter().enumerate() {
        store.insert(*k, record(i)).unwrap();
    }
    n as f64 / start.elapsed().as_secs_f64()
}

/// Logged inserts per second (the persistent miss path).
fn measure_logged_insert_throughput(n: usize) -> f64 {
    let mut path = std::env::temp_dir();
    path.push(format!("micronas-bench-store-{}.log", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let store = EvalStore::open(&path, 0).unwrap();
    let keys = keys(n);
    let start = Instant::now();
    for (i, k) in keys.iter().enumerate() {
        store.insert(*k, record(i)).unwrap();
    }
    let rate = n as f64 / start.elapsed().as_secs_f64();
    drop(store);
    let _ = std::fs::remove_file(&path);
    rate
}

/// The cold-vs-warm sweep comparison; returns
/// `(cold_s, warm_s, warm_hit_rate, identical)`.
fn cold_vs_warm_sweep(config: &MicroNasConfig, scale: &SweepScale) -> (f64, f64, f64, bool) {
    let store = Arc::new(EvalStore::in_memory(config.store_namespace()));
    let cold = run_paper_sweep(config, scale, Some(store.clone())).expect("cold sweep");
    let warm = run_paper_sweep(config, scale, Some(store)).expect("warm sweep");
    assert_eq!(
        warm.recomputations(),
        Some(0),
        "warm sweep must not recompute"
    );
    (
        cold.wall_seconds,
        warm.wall_seconds,
        warm.hit_rate().unwrap_or(0.0),
        cold.identity_fingerprint() == warm.identity_fingerprint(),
    )
}

/// Per-search cache provenance: the [`EvalCacheStats`] record-fetch
/// counters of one latency-guided pruning search against a cold and then a
/// warm store. Unlike the store-level counters above, these count requests
/// *of the search* — including the ones its context's private caches
/// absorbed before the store ever saw them.
fn search_cache_provenance(config: &MicroNasConfig) -> (EvalCacheStats, EvalCacheStats) {
    let store = Arc::new(EvalStore::in_memory(config.store_namespace()));
    let search = MicroNasSearch::new(ObjectiveWeights::latency_guided(2.0));
    let session = |store: Arc<EvalStore>| {
        SearchSession::builder()
            .dataset(DatasetKind::Cifar10)
            .config(config.clone())
            .store(store)
            .build()
            .expect("session")
    };
    let cold = session(store.clone()).run(&search).expect("cold search");
    let warm = session(store).run(&search).expect("warm search");
    assert_eq!(
        warm.cost.cache.misses, 0,
        "a pre-warmed store serves the whole search"
    );
    (cold.cost.cache, warm.cost.cache)
}

fn bench_store_throughput(c: &mut Criterion) {
    const LOOKUPS: usize = 100_000;
    const INSERTS: usize = 20_000;

    if !c.is_test_mode() {
        banner(
            "evaluation-store throughput",
            "shared cross-search evaluation store (cold vs warm paper sweep)",
        );
    }

    // Smoke/measure the raw store operations through Criterion.
    let mut group = c.benchmark_group("store_throughput");
    group.sample_size(10);
    group.bench_function("hit_lookups_100k_concurrent", |b| {
        b.iter(|| measure_hit_throughput(LOOKUPS))
    });
    group.bench_function("inserts_20k_memory", |b| {
        b.iter(|| measure_insert_throughput(INSERTS))
    });
    group.bench_function("inserts_20k_logged", |b| {
        b.iter(|| measure_logged_insert_throughput(INSERTS))
    });
    group.finish();

    // Headline comparison + JSON recording. Test mode uses the tiny grid so
    // the CI smoke stays fast; measurement mode uses the bench scale.
    let (config, scale) = if c.is_test_mode() {
        (MicroNasConfig::tiny_test(), SweepScale::tiny())
    } else if paper_scale() {
        (bench_config(), SweepScale::paper())
    } else {
        (bench_config(), SweepScale::fast())
    };
    let hit_rate_per_s = measure_hit_throughput(LOOKUPS);
    let insert_per_s = measure_insert_throughput(INSERTS);
    let logged_per_s = measure_logged_insert_throughput(INSERTS);
    let (cold_s, warm_s, warm_hit_rate, identical) = cold_vs_warm_sweep(&config, &scale);
    let speedup = cold_s / warm_s.max(1e-12);
    assert!(identical, "cold and warm sweeps must agree bitwise");
    let (search_cold, search_warm) = search_cache_provenance(&config);

    if !c.is_test_mode() {
        println!();
        println!("concurrent hit lookups:   {hit_rate_per_s:>12.0} ops/s");
        println!("memory inserts:           {insert_per_s:>12.0} ops/s");
        println!("logged inserts:           {logged_per_s:>12.0} ops/s");
        println!();
        println!("paper sweep, cold store:  {cold_s:>12.3} s");
        println!("paper sweep, warm store:  {warm_s:>12.3} s  ({speedup:.1}x faster)");
        println!("warm hit rate:            {:>11.1}%", warm_hit_rate * 100.0);
        println!("bitwise identical:        {identical}");
        println!();
        println!(
            "search eval-cache, cold store: {} hits / {} misses ({:.1}% hit rate)",
            search_cold.hits,
            search_cold.misses,
            search_cold.hit_rate() * 100.0
        );
        println!(
            "search eval-cache, warm store: {} hits / {} misses ({:.1}% hit rate)",
            search_warm.hits,
            search_warm.misses,
            search_warm.hit_rate() * 100.0
        );
    }
    let mut fields: Vec<(String, f64)> = vec![
        ("hit_lookups_per_s".to_string(), hit_rate_per_s),
        ("memory_inserts_per_s".to_string(), insert_per_s),
        ("logged_inserts_per_s".to_string(), logged_per_s),
        ("sweep_cold_seconds".to_string(), cold_s),
        ("sweep_warm_seconds".to_string(), warm_s),
        ("sweep_warm_speedup".to_string(), speedup),
        ("sweep_warm_hit_rate".to_string(), warm_hit_rate),
        (
            "sweep_bitwise_identical".to_string(),
            f64::from(u8::from(identical)),
        ),
    ];
    fields.extend(cache_stat_fields("search_cache_cold", &search_cold));
    fields.extend(cache_stat_fields("search_cache_warm", &search_warm));
    record_bench_json("store_throughput", &fields);
}

criterion_group!(benches, bench_store_throughput);
criterion_main!(benches);
