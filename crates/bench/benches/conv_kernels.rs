//! Convolution kernel micro-benchmarks: direct loops vs im2col + GEMM.
//!
//! Measures the forward pass and both gradients on the geometries the proxy
//! networks actually run (3×3 stride-1 and 1×1 cell convolutions at the
//! paper-default 16×16 resolution), with each engine pinned explicitly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use micronas_bench::banner;
use micronas_tensor::{
    conv2d_backward_input_with, conv2d_backward_weight_with, conv2d_with, set_conv_engine,
    Conv2dSpec, ConvEngine, DeterministicRng, Shape, Tensor, Workspace,
};

fn random_tensor(shape: Shape, seed: u64) -> Tensor {
    let mut rng = DeterministicRng::new(seed);
    let data = (0..shape.numel()).map(|_| rng.normal()).collect();
    Tensor::from_vec(shape, data).unwrap()
}

struct Case {
    name: &'static str,
    batch: usize,
    channels: usize,
    resolution: usize,
    spec: Conv2dSpec,
}

const CASES: &[Case] = &[
    Case {
        name: "conv3x3_16x16_c8_n32",
        batch: 32,
        channels: 8,
        resolution: 16,
        spec: Conv2dSpec {
            kernel: 3,
            stride: 1,
            padding: 1,
        },
    },
    Case {
        name: "conv1x1_16x16_c8_n32",
        batch: 32,
        channels: 8,
        resolution: 16,
        spec: Conv2dSpec {
            kernel: 1,
            stride: 1,
            padding: 0,
        },
    },
    Case {
        name: "conv3x3_12x12_c6_n12",
        batch: 12,
        channels: 6,
        resolution: 12,
        spec: Conv2dSpec {
            kernel: 3,
            stride: 1,
            padding: 1,
        },
    },
];

fn bench_conv_kernels(c: &mut Criterion) {
    banner(
        "conv kernels: direct vs im2col+GEMM",
        "proxy-evaluation hot path (NTK forward/backward)",
    );
    let mut group = c.benchmark_group("conv_kernels");
    group.sample_size(20);
    for case in CASES {
        let input = random_tensor(
            Shape::nchw(case.batch, case.channels, case.resolution, case.resolution),
            1,
        );
        let weight = random_tensor(
            Shape::nchw(
                case.channels,
                case.channels,
                case.spec.kernel,
                case.spec.kernel,
            ),
            2,
        );
        let (oh, ow) = case.spec.output_hw(case.resolution, case.resolution);
        let grad_out = random_tensor(Shape::nchw(case.batch, case.channels, oh, ow), 3);
        let mut ws = Workspace::default();
        for (engine, engine_name) in [
            (ConvEngine::Direct, "direct"),
            (ConvEngine::Im2colGemm, "im2col_gemm"),
        ] {
            group.bench_with_input(
                BenchmarkId::new(case.name, engine_name),
                &engine,
                |b, &engine| {
                    set_conv_engine(engine);
                    b.iter(|| {
                        let fwd = conv2d_with(&input, &weight, case.spec, &mut ws).unwrap();
                        let gw = conv2d_backward_weight_with(
                            &input,
                            &grad_out,
                            case.channels,
                            case.spec,
                            &mut ws,
                        )
                        .unwrap();
                        let gi = conv2d_backward_input_with(
                            &weight,
                            &grad_out,
                            input.shape(),
                            case.spec,
                            &mut ws,
                        )
                        .unwrap();
                        (fwd.sum(), gw.sum(), gi.sum())
                    });
                    set_conv_engine(ConvEngine::Auto);
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_conv_kernels);
criterion_main!(benches);
