//! §IV future-work extension: peak-memory-guided search.

use criterion::{criterion_group, criterion_main, Criterion};
use micronas::experiments::run_memory_guided;
use micronas_bench::{banner, bench_config};
use micronas_hw::MemoryEstimator;
use micronas_searchspace::{MacroSkeleton, SearchSpace};

fn print_sweep() {
    banner(
        "Peak-memory-guided search (extension)",
        "§IV future work: peak memory modelling",
    );
    let config = bench_config();
    let points = run_memory_guided(&config, &[2.0, 8.0]).expect("memory-guided sweep");
    println!(
        "{:<10} {:>14} {:>12} {:>10}",
        "weight", "peak SRAM(KiB)", "latency(ms)", "ACC(%)"
    );
    for p in &points {
        println!(
            "{:<10.1} {:>14.1} {:>12.1} {:>10.2}",
            p.hardware_weight, p.peak_sram_kib, p.latency_ms, p.accuracy
        );
    }
    println!();
    println!("The paper lists peak-memory guidance as future work; this extension shows the same pruning");
    println!("machinery accepts an SRAM term and trades activation footprint against accuracy.");
}

fn bench_memory_estimator(c: &mut Criterion) {
    print_sweep();
    let space = SearchSpace::nas_bench_201();
    let skeleton = MacroSkeleton::nas_bench_201(10);
    let estimator = MemoryEstimator::new();
    let cells: Vec<_> = (0..256)
        .map(|i| space.cell(i * 61).expect("valid"))
        .collect();
    let mut group = c.benchmark_group("memory_guided");
    group.bench_function("peak_memory_estimate_256_architectures", |b| {
        b.iter(|| {
            cells
                .iter()
                .map(|cell| {
                    estimator
                        .cell_in_skeleton(cell, &skeleton)
                        .peak_activation_bytes
                })
                .sum::<u64>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_memory_estimator);
criterion_main!(benches);
