//! §III latency-guided sweep: the 1.59×–3.23× speed-up band at negligible
//! accuracy loss, obtained by sweeping the latency weight.

use criterion::{criterion_group, criterion_main, Criterion};
use micronas::experiments::run_latency_sweep;
use micronas_bench::{banner, bench_config};
use micronas_hw::LatencyEstimator;
use micronas_mcu::McuSpec;
use micronas_searchspace::{MacroSkeleton, SearchSpace};

fn print_sweep() {
    banner(
        "Latency-guided weight sweep",
        "§III latency advantage band (1.59x–3.23x)",
    );
    let config = bench_config();
    let points = run_latency_sweep(&config, &[0.5, 1.0, 2.0, 4.0, 8.0]).expect("latency sweep");
    println!(
        "{:<10} {:>12} {:>10} {:>12} {:>10}",
        "weight", "latency(ms)", "FLOPs(M)", "speedup", "ACC(%)"
    );
    for p in &points {
        println!(
            "{:<10.1} {:>12.1} {:>10.1} {:>11.2}x {:>10.2}",
            p.hardware_weight, p.latency_ms, p.flops_m, p.speedup_vs_baseline, p.accuracy
        );
    }
    println!();
    println!("Paper reference: speed-ups from 1.59x to 3.23x over the proxy-only baseline with negligible accuracy loss.");
}

fn bench_latency_estimator(c: &mut Criterion) {
    print_sweep();
    let space = SearchSpace::nas_bench_201();
    let skeleton = MacroSkeleton::nas_bench_201(10);
    let estimator = LatencyEstimator::new(McuSpec::stm32f746zg());
    let cells: Vec<_> = (0..64)
        .map(|i| space.cell(i * 244).expect("valid"))
        .collect();
    let mut group = c.benchmark_group("latency_sweep");
    group.bench_function("latency_lut_estimate_64_architectures", |b| {
        b.iter(|| {
            cells
                .iter()
                .map(|cell| estimator.cell_latency_ms(cell, &skeleton))
                .sum::<f64>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_latency_estimator);
criterion_main!(benches);
