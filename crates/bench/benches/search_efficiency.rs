//! §III / Table I search-time comparison: the ≈1104× efficiency claim.
//!
//! Besides the efficiency ratios, each framework's `EvalCacheStats` land in
//! `target/bench-json/search_efficiency.json` — the evolutionary baseline in
//! particular leans on the cached-feasibility path (duplicate children hit
//! instead of re-evaluating), so its hit counters are the early-warning
//! signal for cache regressions in search-shaped workloads.

use criterion::{criterion_group, criterion_main, Criterion};
use micronas::experiments::run_search_efficiency;
use micronas::{EvolutionaryConfig, MicroNasSearch, SearchContext};
use micronas_bench::{banner, bench_config, cache_stat_fields, paper_scale, record_bench_json};
use micronas_datasets::DatasetKind;

fn print_report() {
    banner(
        "Search-efficiency comparison",
        "Table I search time + §III 1104x claim",
    );
    let config = bench_config();
    let evolution = if paper_scale() {
        EvolutionaryConfig::munas_default()
    } else {
        EvolutionaryConfig {
            population: 24,
            cycles: 120,
            sample_size: 5,
        }
    };
    let report = run_search_efficiency(&config, evolution, 2.0).expect("efficiency experiment");
    println!(
        "{:<42} {:>14} {:>16} {:>12} {:>8}",
        "framework", "wall clock(s)", "simulated GPU h", "evaluations", "ACC(%)"
    );
    println!(
        "{:<42} {:>14.1} {:>16.1} {:>12} {:>8.2}",
        "µNAS-style evolution (training-based)",
        report.munas.wall_clock_seconds,
        report.munas.simulated_gpu_hours,
        report.munas.evaluations,
        report.accuracies[0]
    );
    println!(
        "{:<42} {:>14.1} {:>16.1} {:>12} {:>8.2}",
        "TE-NAS (proxy-only pruning)",
        report.te_nas.wall_clock_seconds,
        report.te_nas.simulated_gpu_hours,
        report.te_nas.evaluations,
        report.accuracies[1]
    );
    println!(
        "{:<42} {:>14.1} {:>16.1} {:>12} {:>8.2}",
        "MicroNAS (latency-guided)",
        report.micronas.wall_clock_seconds,
        report.micronas.simulated_gpu_hours,
        report.micronas.evaluations,
        report.accuracies[2]
    );
    println!();
    println!(
        "Efficiency of MicroNAS vs µNAS-style search: {:.0}x   (paper: ≈1104x)",
        report.efficiency_vs_munas
    );
    println!(
        "Efficiency of MicroNAS vs TE-NAS:            {:.2}x   (paper: equal, 0.43 GPU hours each)",
        report.efficiency_vs_te_nas
    );
    println!();
    for (name, cost) in [
        ("munas", &report.munas),
        ("te_nas", &report.te_nas),
        ("micronas", &report.micronas),
    ] {
        println!(
            "eval-cache [{name:<8}]: {} hits / {} misses ({:.1}% absorbed)",
            cost.cache.hits,
            cost.cache.misses,
            cost.cache.hit_rate() * 100.0
        );
    }
    let mut fields: Vec<(String, f64)> = vec![
        (
            "efficiency_vs_munas".to_string(),
            report.efficiency_vs_munas,
        ),
        (
            "efficiency_vs_te_nas".to_string(),
            report.efficiency_vs_te_nas,
        ),
    ];
    fields.extend(cache_stat_fields("munas_cache", &report.munas.cache));
    fields.extend(cache_stat_fields("te_nas_cache", &report.te_nas.cache));
    fields.extend(cache_stat_fields("micronas_cache", &report.micronas.cache));
    record_bench_json("search_efficiency", &fields);
}

fn bench_te_nas_search(c: &mut Criterion) {
    print_report();
    let config = bench_config();
    let mut group = c.benchmark_group("search_efficiency");
    group.sample_size(10);
    group.bench_function("te_nas_proxy_only_search", |b| {
        b.iter(|| {
            let ctx = SearchContext::new(DatasetKind::Cifar10, &config).expect("context");
            MicroNasSearch::te_nas_baseline()
                .run(&ctx)
                .expect("search")
                .best
                .index()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_te_nas_search);
criterion_main!(benches);
