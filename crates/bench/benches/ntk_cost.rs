//! §II-A.1 cost analysis: NTK evaluation wall-clock versus batch size
//! (the cost half of the batch-size-32 trade-off).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use micronas::experiments::run_ntk_cost;
use micronas_bench::{banner, bench_config, paper_scale};
use micronas_datasets::DatasetKind;
use micronas_proxies::{NtkConfig, NtkEvaluator};
use micronas_searchspace::SearchSpace;

fn print_costs() {
    banner(
        "NTK evaluation cost vs batch size",
        "§II-A.1 search-cost argument for batch 32",
    );
    let config = bench_config();
    let sizes: Vec<usize> = if paper_scale() {
        vec![4, 8, 16, 32, 64, 128]
    } else {
        vec![4, 8, 16, 32]
    };
    let points = run_ntk_cost(&config, &sizes, 8).expect("ntk cost experiment");
    println!("{:<10} {:>22}", "batch", "seconds / architecture");
    for p in &points {
        println!("{:<10} {:>22.4}", p.batch_size, p.seconds_per_architecture);
    }
    println!();
    println!("Paper reference: increasing the batch beyond 32 escalates search cost without improving Kendall-τ.");
}

fn bench_ntk_cost(c: &mut Criterion) {
    print_costs();
    let config = bench_config();
    let space = SearchSpace::nas_bench_201();
    let cell = space.cell(7_000).expect("valid index");
    let mut group = c.benchmark_group("ntk_cost");
    group.sample_size(10);
    for batch in [4usize, 16, 32] {
        let evaluator = NtkEvaluator::new(NtkConfig {
            batch_size: batch,
            ..config.ntk
        });
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, _| {
            b.iter(|| {
                evaluator
                    .evaluate(cell, DatasetKind::Cifar10, 1)
                    .expect("ntk")
                    .condition_number
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ntk_cost);
criterion_main!(benches);
