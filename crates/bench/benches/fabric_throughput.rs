//! Distributed-fabric throughput: raw loopback RPC rates, plus the headline
//! cold-single-node vs warm-two-node paper-sweep comparison.
//!
//! The sweep comparison is the acceptance check of the fabric: a worker
//! arriving at a warm two-node fleet with an **empty local store** must
//! finish the tiny paper grid faster than a standalone cold worker, produce
//! a bitwise-identical report, and source its evaluations from the fleet
//! (remote hit/miss counters are part of the JSON provenance in
//! `target/bench-json/fabric_throughput.json`).
//!
//! `MICRONAS_BENCH_SMOKE=1` runs the reduced-iteration warm-vs-cold gate
//! only: warm must beat cold outright, and the result must stay pinned.

use criterion::{criterion_group, criterion_main, Criterion};
use micronas::experiments::{run_paper_sweep, SweepScale};
use micronas::MicroNasConfig;
use micronas_bench::{banner, bench_config, paper_scale, record_bench_json};
use micronas_datasets::DatasetKind;
use micronas_fabric::{FabricClient, FabricConfig, FabricNode, RemoteTier, RemoteTierStats};
use micronas_proxies::ZeroCostMetrics;
use micronas_searchspace::SearchSpace;
use micronas_store::{EvalKey, EvalRecord, EvalStore, RemoteBackend, StoreStats};
use std::sync::Arc;
use std::time::Instant;

/// Distinct keys for the raw RPC benchmarks (seeds vary, cells cycle).
fn keys(n: usize) -> Vec<EvalKey> {
    let space = SearchSpace::nas_bench_201();
    (0..n)
        .map(|i| {
            EvalKey::zero_cost(
                &space.cell(i % space.len()).unwrap(),
                DatasetKind::Cifar10,
                i as u64,
                32,
            )
        })
        .collect()
}

fn record(i: usize) -> EvalRecord {
    EvalRecord::ZeroCost(ZeroCostMetrics {
        ntk_condition: 1.0 + i as f64,
        linear_regions: i + 1,
        trainability: -(1.0 + i as f64).ln(),
        expressivity: (1.0 + i as f64).ln(),
    })
}

/// A worker: an empty in-memory store reading through a fabric tier.
fn worker(namespace: u64, fabric: &FabricConfig) -> (Arc<EvalStore>, Arc<RemoteTier>) {
    let store = Arc::new(EvalStore::in_memory(namespace));
    let tier = Arc::new(RemoteTier::from_config(namespace, fabric));
    store
        .attach_remote(Arc::clone(&tier) as Arc<dyn RemoteBackend>)
        .expect("matching namespaces");
    (store, tier)
}

/// Loopback point-get round-trips per second against a warm node.
fn measure_remote_get_throughput(n: usize) -> f64 {
    let node = FabricNode::serve(Arc::new(EvalStore::in_memory(0))).expect("node");
    let keys = keys(n);
    for (i, k) in keys.iter().enumerate() {
        node.store().insert(*k, record(i)).unwrap();
    }
    let client = FabricClient::new(node.addr(), 0, Default::default());
    let start = Instant::now();
    for k in &keys {
        assert!(client.get(k).expect("get").is_some());
    }
    n as f64 / start.elapsed().as_secs_f64()
}

/// Loopback batched-get records per second against a warm node.
fn measure_batch_get_throughput(n: usize, batch: usize) -> f64 {
    let node = FabricNode::serve(Arc::new(EvalStore::in_memory(0))).expect("node");
    let keys = keys(n);
    for (i, k) in keys.iter().enumerate() {
        node.store().insert(*k, record(i)).unwrap();
    }
    let client = FabricClient::new(node.addr(), 0, Default::default());
    let start = Instant::now();
    let mut found = 0usize;
    for chunk in keys.chunks(batch) {
        found += client
            .batch_get(chunk)
            .expect("batch_get")
            .iter()
            .filter(|r| r.is_some())
            .count();
    }
    assert_eq!(found, n);
    n as f64 / start.elapsed().as_secs_f64()
}

/// The headline comparison. Returns `(cold_s, warm_s, identical, local
/// store stats of the warm arrival, its tier stats)`.
///
/// Cold: a standalone worker (no fabric, empty store) runs the sweep.
/// Warm: a two-node fleet is pre-warmed by a first worker, then a *fresh*
/// worker with an empty local store runs the same sweep through the ring.
fn cold_vs_warm_fleet(
    config: &MicroNasConfig,
    scale: &SweepScale,
) -> (f64, f64, bool, StoreStats, RemoteTierStats) {
    let namespace = config.store_namespace();

    let solo = Arc::new(EvalStore::in_memory(namespace));
    let start = Instant::now();
    let cold = run_paper_sweep(config, scale, Some(solo)).expect("cold sweep");
    let cold_s = start.elapsed().as_secs_f64();

    let node_a = FabricNode::serve(Arc::new(EvalStore::in_memory(namespace))).expect("node");
    let node_b = FabricNode::serve(Arc::new(EvalStore::in_memory(namespace))).expect("node");
    let fabric = FabricConfig::with_peers(vec![node_a.addr(), node_b.addr()]);
    let (store1, tier1) = worker(namespace, &fabric);
    run_paper_sweep(config, scale, Some(store1)).expect("warming sweep");
    tier1.flush().expect("flush");

    let (store2, tier2) = worker(namespace, &fabric);
    let start = Instant::now();
    let warm = run_paper_sweep(config, scale, Some(Arc::clone(&store2))).expect("warm sweep");
    let warm_s = start.elapsed().as_secs_f64();

    (
        cold_s,
        warm_s,
        cold.identity_fingerprint() == warm.identity_fingerprint(),
        store2.stats(),
        tier2.stats(),
    )
}

fn fleet_fields(
    cold_s: f64,
    warm_s: f64,
    identical: bool,
    local: &StoreStats,
    tier: &RemoteTierStats,
) -> Vec<(String, f64)> {
    let total = (local.hits + local.misses).max(1);
    vec![
        ("sweep_cold_single_node_seconds".to_string(), cold_s),
        ("sweep_warm_two_node_seconds".to_string(), warm_s),
        ("warm_speedup".to_string(), cold_s / warm_s.max(1e-12)),
        (
            "sweep_bitwise_identical".to_string(),
            f64::from(u8::from(identical)),
        ),
        ("warm_local_hits".to_string(), local.hits as f64),
        ("warm_local_misses".to_string(), local.misses as f64),
        (
            "warm_served_fraction".to_string(),
            local.hits as f64 / total as f64,
        ),
        ("remote_hits".to_string(), tier.remote_hits as f64),
        ("remote_misses".to_string(), tier.remote_misses as f64),
        ("remote_timeouts".to_string(), tier.timeouts as f64),
        ("remote_errors".to_string(), tier.errors as f64),
        ("degraded_peers".to_string(), tier.degraded_peers as f64),
    ]
}

/// Whether `MICRONAS_BENCH_SMOKE=1` smoke mode is active.
fn smoke_mode() -> bool {
    std::env::var("MICRONAS_BENCH_SMOKE")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn bench_fabric_throughput(c: &mut Criterion) {
    const GETS: usize = 20_000;
    const BATCH: usize = 256;

    if smoke_mode() {
        banner(
            "Fabric smoke: warm two-node fleet must beat a cold single node",
            "distributed evaluation fabric regression gate (tiny paper grid)",
        );
        // The warm arrival recomputes nothing — its sweep is pure loopback
        // fetches — so it beats the cold run by a wide margin; parity here
        // means the read-through path is broken, not that the runner is
        // noisy. The reduced-scale numbers go to their own JSON so they
        // never overwrite the headline measurements.
        let (cold_s, warm_s, identical, local, tier) =
            cold_vs_warm_fleet(&MicroNasConfig::tiny_test(), &SweepScale::tiny());
        println!("gate: cold single-node {cold_s:.3}s vs warm two-node {warm_s:.3}s");
        record_bench_json(
            "fabric_throughput_smoke",
            &fleet_fields(cold_s, warm_s, identical, &local, &tier),
        );
        assert!(identical, "fabric sweep must stay bitwise identical");
        assert!(tier.remote_hits > 0, "fleet never served: {tier:?}");
        assert!(
            warm_s < cold_s,
            "warm two-node sweep ({warm_s:.3}s) must beat the cold \
             single-node sweep ({cold_s:.3}s)"
        );
        return;
    }

    if !c.is_test_mode() {
        banner(
            "distributed-fabric throughput",
            "one logical store for a fleet of search workers (cold vs warm fleet)",
        );
    }

    let mut group = c.benchmark_group("fabric_throughput");
    group.sample_size(10);
    group.bench_function("remote_gets_2k_loopback", |b| {
        b.iter(|| measure_remote_get_throughput(2_000))
    });
    group.bench_function("batch_gets_2k_loopback", |b| {
        b.iter(|| measure_batch_get_throughput(2_000, BATCH))
    });
    group.finish();

    let (config, scale) = if c.is_test_mode() {
        (MicroNasConfig::tiny_test(), SweepScale::tiny())
    } else if paper_scale() {
        (bench_config(), SweepScale::paper())
    } else {
        (bench_config(), SweepScale::fast())
    };
    let get_per_s = measure_remote_get_throughput(GETS);
    let batch_per_s = measure_batch_get_throughput(GETS, BATCH);
    let (cold_s, warm_s, identical, local, tier) = cold_vs_warm_fleet(&config, &scale);
    assert!(identical, "cold and warm-fleet sweeps must agree bitwise");

    if !c.is_test_mode() {
        println!();
        println!("loopback point gets:      {get_per_s:>12.0} ops/s");
        println!("loopback batch-{BATCH} gets:  {batch_per_s:>12.0} records/s");
        println!();
        println!("paper sweep, cold single node: {cold_s:>9.3} s");
        println!(
            "paper sweep, warm two-node:    {warm_s:>9.3} s  ({:.1}x faster)",
            cold_s / warm_s.max(1e-12)
        );
        println!(
            "warm arrival served locally+remotely: {} hits / {} misses \
             ({} remote hits, {} remote misses)",
            local.hits, local.misses, tier.remote_hits, tier.remote_misses
        );
        println!("bitwise identical:        {identical}");
    }

    let mut fields = fleet_fields(cold_s, warm_s, identical, &local, &tier);
    fields.push(("remote_gets_per_s".to_string(), get_per_s));
    fields.push(("batch_get_records_per_s".to_string(), batch_per_s));
    record_bench_json("fabric_throughput", &fields);
}

criterion_group!(benches, bench_fabric_throughput);
criterion_main!(benches);
