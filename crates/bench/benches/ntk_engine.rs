//! End-to-end NTK evaluation: direct conv kernels vs the im2col/GEMM engine.
//!
//! This is the acceptance benchmark for the proxy-evaluation overhaul: one
//! paper-default NTK evaluation (batch 32, 16×16 proxy network) per engine,
//! plus an explicit speedup summary printed before the Criterion timings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use micronas_bench::banner;
use micronas_datasets::DatasetKind;
use micronas_proxies::{NtkConfig, NtkEvaluator};
use micronas_searchspace::SearchSpace;
use micronas_tensor::{set_conv_engine, ConvEngine};
use std::time::Instant;

fn measured_seconds(evaluator: &NtkEvaluator, engine: ConvEngine, runs: usize) -> f64 {
    let space = SearchSpace::nas_bench_201();
    let cell = space.cell(7_000).expect("valid index");
    set_conv_engine(engine);
    // One warm-up evaluation, then timed runs.
    evaluator
        .evaluate(cell, DatasetKind::Cifar10, 0)
        .expect("ntk");
    let start = Instant::now();
    for seed in 0..runs {
        evaluator
            .evaluate(cell, DatasetKind::Cifar10, seed as u64)
            .expect("ntk");
    }
    let elapsed = start.elapsed().as_secs_f64() / runs as f64;
    set_conv_engine(ConvEngine::Auto);
    elapsed
}

fn print_speedup() {
    banner(
        "NTK end-to-end: direct vs im2col+GEMM",
        "proxy-evaluation engine acceptance (≥ 3× on paper-default NTK)",
    );
    let evaluator = NtkEvaluator::new(NtkConfig::paper_default());
    let direct = measured_seconds(&evaluator, ConvEngine::Direct, 2);
    let gemm = measured_seconds(&evaluator, ConvEngine::Im2colGemm, 2);
    println!("paper-default NTK evaluation (batch 32, 16x16 proxy, 2 cells):");
    println!("  direct kernels:      {:>8.3} s / evaluation", direct);
    println!("  im2col+GEMM engine:  {:>8.3} s / evaluation", gemm);
    println!("  speedup:             {:>8.2}x", direct / gemm);
}

fn bench_ntk_engines(c: &mut Criterion) {
    if !c.is_test_mode() {
        print_speedup();
    }
    let evaluator = NtkEvaluator::new(NtkConfig::paper_default());
    let space = SearchSpace::nas_bench_201();
    let cell = space.cell(7_000).expect("valid index");
    let mut group = c.benchmark_group("ntk_engine");
    group.sample_size(10);
    for (engine, name) in [
        (ConvEngine::Direct, "direct"),
        (ConvEngine::Im2colGemm, "im2col_gemm"),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &engine, |b, &engine| {
            set_conv_engine(engine);
            b.iter(|| {
                evaluator
                    .evaluate(cell, DatasetKind::Cifar10, 1)
                    .expect("ntk")
                    .condition_number
            });
            set_conv_engine(ConvEngine::Auto);
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ntk_engines);
criterion_main!(benches);
