//! End-to-end NTK evaluation benchmarks.
//!
//! Three comparisons, all on the paper-default NTK configuration (batch 32,
//! 16×16 proxy networks, two cells):
//!
//! 1. **direct vs im2col/GEMM** conv kernels — the PR 1 engine acceptance;
//! 2. **looped vs batched per-sample gradients** — the batched-backward
//!    acceptance: one forward pass plus one batched backward emitting the
//!    contiguous `[n, P]` gradient matrix and a `G = J·Jᵀ` GEMM, against the
//!    PR 1 formulation (one backward per sample, n² scalar Gram dots);
//! 3. **blocked-GEMM vs SIMD execution backend** — the backend-layer
//!    acceptance: the FMA-tiled `simd` backend against the paper-default
//!    `blocked_gemm` backend. Measured on two cells: the pinned
//!    [`BENCH_CELL`] (one 1×1 conv per cell — an honest "sparse" data
//!    point where shared non-kernel work dominates) and the all-conv3×3
//!    cell, the kernel-dominated end of the space where a *kernel* backend
//!    comparison is meaningful. The regression gate rides on the conv cell.
//! 4. **eager vs fused kernel-graph execution** — the graph-pipeline
//!    acceptance: the `fusing` compiler (DCE + conv→ReLU + backward-pair
//!    fusion over a cached compiled plan) against the eager call tree, both
//!    on the paper-default blocked-GEMM backend, on the sparse
//!    [`BENCH_CELL`] where dead edges and scheduling overhead dominate.
//! 5. **full packing vs forward-only packing** — the packed-backward
//!    acceptance: one width-[`PACK`] `evaluate_pack_in` sweep of the sparse
//!    [`BENCH_CELL`] with the per-sample gradient sweep packed (stem and
//!    same-geometry conv backward kernels merged across pack members)
//!    against the forward-only packing it extends (the packed forward plus
//!    one solo backward sweep per member), single rayon thread so the ratio
//!    measures dispatch amortisation rather than parallelism.
//!
//! Headline numbers land in `target/bench-json/ntk_engine.json`.
//!
//! # Smoke mode
//!
//! `MICRONAS_BENCH_SMOKE=1` runs reduced-iteration versions of the
//! looped-vs-batched, blocked-vs-SIMD and full-vs-forward-only-packing
//! comparisons and **fails** (panics) if the batched path regresses below
//! the looped path, the SIMD backend regresses below the blocked-GEMM
//! backend on the conv-heavy cell, or the packed backward regresses below
//! the forward-only packing on the sparse cell — the CI guards against a
//! silent fallback onto a slow route. Criterion's own `--test` flag still
//! runs every benchmark body once without timing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use micronas::{MicroNasConfig, MicroNasSearch, SearchSession};
use micronas_bench::{banner, batch_stat_fields, cache_stat_fields, record_bench_json};
use micronas_datasets::DatasetKind;
use micronas_proxies::{GradientPath, NtkConfig, NtkEvaluator};
use micronas_searchspace::{CellTopology, Operation, SearchSpace};
use micronas_tensor::{set_conv_engine, ConvEngine, KernelBackendKind};
use std::time::Instant;

/// The cell the engine benchmarks pin (a mid-space architecture with conv,
/// skip and none edges).
const BENCH_CELL: usize = 7_000;

/// Pack width of the packed-backward comparison (the context default).
const PACK: usize = 8;

fn paper_evaluator(path: GradientPath) -> NtkEvaluator {
    NtkEvaluator::new(NtkConfig::paper_default()).with_gradient_path(path)
}

/// The kernel-dominated cell of the backend comparison: every edge a 3×3
/// convolution, so the execution backend's conv/GEMM kernels are the
/// workload instead of a minority of it.
fn conv_heavy_cell() -> CellTopology {
    CellTopology::new([Operation::NorConv3x3; 6])
}

fn timed_seconds(evaluator: &NtkEvaluator, cell: CellTopology, runs: usize) -> f64 {
    // One warm-up evaluation, then timed runs.
    evaluator
        .evaluate(cell, DatasetKind::Cifar10, 0)
        .expect("ntk");
    let start = Instant::now();
    for seed in 0..runs {
        evaluator
            .evaluate(cell, DatasetKind::Cifar10, seed as u64)
            .expect("ntk");
    }
    start.elapsed().as_secs_f64() / runs as f64
}

fn measured_seconds(evaluator: &NtkEvaluator, engine: ConvEngine, runs: usize) -> f64 {
    let space = SearchSpace::nas_bench_201();
    let cell = space.cell(BENCH_CELL).expect("valid index");
    set_conv_engine(engine);
    let elapsed = timed_seconds(evaluator, cell, runs);
    set_conv_engine(ConvEngine::Auto);
    elapsed
}

/// Paper-default NTK evaluation seconds under an execution backend,
/// best-of-`rounds` to shed co-tenant noise.
fn backend_seconds(kind: KernelBackendKind, cell: CellTopology, runs: usize, rounds: usize) -> f64 {
    let evaluator = NtkEvaluator::new(NtkConfig::paper_default()).with_backend(kind.instantiate());
    (0..rounds)
        .map(|_| timed_seconds(&evaluator, cell, runs))
        .fold(f64::INFINITY, f64::min)
}

/// Paper-default NTK evaluation seconds through a compiled kernel-graph
/// plan (paper-default blocked-GEMM backend), best-of-`rounds`.
fn compiler_seconds(
    kind: micronas_graph::CompilerKind,
    cell: CellTopology,
    runs: usize,
    rounds: usize,
) -> f64 {
    let evaluator = NtkEvaluator::new(NtkConfig::paper_default()).with_compiler(kind.instantiate());
    (0..rounds)
        .map(|_| timed_seconds(&evaluator, cell, runs))
        .fold(f64::INFINITY, f64::min)
}

/// Seconds for one width-[`PACK`] packed paper-default NTK sweep of `cell`,
/// with the per-sample gradient sweep either fully packed (`packed_backward
/// = true`, this PR) or looped per member over a packed forward
/// (`false`, the forward-only packing this PR extends), best-of-`rounds`.
/// Runs on a one-thread rayon pool: the packed sweep's claim is dispatch
/// amortisation, so it must win without parallelism.
fn packed_sweep_seconds(
    cell: CellTopology,
    packed_backward: bool,
    runs: usize,
    rounds: usize,
) -> f64 {
    let evaluator =
        NtkEvaluator::new(NtkConfig::paper_default()).with_packed_backward(packed_backward);
    let cells = [cell; PACK];
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("pool");
    pool.install(|| {
        let mut ws = micronas_tensor::Workspace::default();
        evaluator
            .evaluate_pack_in(&cells, DatasetKind::Cifar10, 0, &mut ws)
            .expect("warm-up");
        (0..rounds)
            .map(|_| {
                let start = Instant::now();
                for seed in 0..runs {
                    evaluator
                        .evaluate_pack_in(&cells, DatasetKind::Cifar10, seed as u64, &mut ws)
                        .expect("ntk pack");
                }
                start.elapsed().as_secs_f64() / runs as f64
            })
            .fold(f64::INFINITY, f64::min)
    })
}

/// Whether `MICRONAS_BENCH_SMOKE=1` smoke mode is active.
fn smoke_mode() -> bool {
    std::env::var("MICRONAS_BENCH_SMOKE")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Runs both headline comparisons and records them; `runs` controls the
/// averaging window.
fn compare_and_record(runs: usize) {
    let batched = paper_evaluator(GradientPath::Batched);
    let looped = paper_evaluator(GradientPath::Looped);

    let direct = measured_seconds(&batched, ConvEngine::Direct, 1.max(runs / 2));
    let gemm = measured_seconds(&batched, ConvEngine::Auto, runs);
    let looped_s = measured_seconds(&looped, ConvEngine::Auto, runs);

    // Backend comparison: interleaved best-of-3 rounds per side.
    let space = SearchSpace::nas_bench_201();
    let sparse_cell = space.cell(BENCH_CELL).expect("valid index");
    let conv_cell = conv_heavy_cell();
    let blocked_conv = backend_seconds(KernelBackendKind::BlockedGemm, conv_cell, runs.min(3), 3);
    let simd_conv = backend_seconds(KernelBackendKind::Simd, conv_cell, runs.min(3), 3);
    let blocked_sparse = backend_seconds(KernelBackendKind::BlockedGemm, sparse_cell, runs, 3);
    let simd_sparse = backend_seconds(KernelBackendKind::Simd, sparse_cell, runs, 3);

    // Graph-pipeline comparison: eager call tree vs the fusing compiler's
    // cached plan, both on the paper-default backend, on the sparse cell.
    let eager_sparse = backend_seconds(KernelBackendKind::BlockedGemm, sparse_cell, runs, 3);
    let fused_sparse = compiler_seconds(micronas_graph::CompilerKind::Fusing, sparse_cell, runs, 3);

    // Packed-backward comparison: one width-PACK packed sweep of the sparse
    // cell, full packing vs the forward-only packing it extends, one rayon
    // thread, best-of-3.
    let forward_only_pack = packed_sweep_seconds(sparse_cell, false, runs.min(3), 3);
    let full_pack = packed_sweep_seconds(sparse_cell, true, runs.min(3), 3);

    // Store-backed provenance: how much of a real search's NTK traffic the
    // evaluation caches absorb, and how densely the mega-batcher packs the
    // rest. One proxy-only pruning search at the fast scale;
    // `EvalCacheStats` counts record fetches (a hit was served without
    // running the proxies at all), `BatchStats` counts packed GEMM
    // dispatches.
    let session = SearchSession::builder()
        .dataset(DatasetKind::Cifar10)
        .config(MicroNasConfig::fast())
        .build()
        .expect("session");
    let cost = session
        .run(&MicroNasSearch::te_nas_baseline())
        .expect("search")
        .cost;
    let cache = cost.cache;
    let batch = cost.batch;

    println!("paper-default NTK evaluation (batch 32, 16x16 proxy, 2 cells):");
    println!("  direct kernels, batched:   {direct:>8.4} s / evaluation");
    println!("  looped per-sample + dots:  {looped_s:>8.4} s / evaluation");
    println!("  batched [n,P] + GEMM Gram: {gemm:>8.4} s / evaluation");
    println!("  direct->batched speedup:   {:>8.2}x", direct / gemm);
    println!("  looped->batched speedup:   {:>8.2}x", looped_s / gemm);
    println!("execution backends (blocked_gemm vs simd, best of 3):");
    println!(
        "  all-conv3x3 cell:          {blocked_conv:>8.4} s -> {simd_conv:>8.4} s  ({:.2}x)",
        blocked_conv / simd_conv
    );
    println!(
        "  sparse bench cell:         {blocked_sparse:>8.4} s -> {simd_sparse:>8.4} s  ({:.2}x)",
        blocked_sparse / simd_sparse
    );
    println!("kernel-graph pipeline (eager vs fusing compiler, best of 3):");
    println!(
        "  sparse bench cell:         {eager_sparse:>8.4} s -> {fused_sparse:>8.4} s  ({:.2}x)",
        eager_sparse / fused_sparse
    );
    println!(
        "packed backward ({PACK}-wide sweep, forward-only vs full packing, 1 thread, best of 3):"
    );
    println!(
        "  sparse bench cell:         {forward_only_pack:>8.4} s -> {full_pack:>8.4} s  ({:.2}x)",
        forward_only_pack / full_pack
    );
    println!(
        "  search eval-cache:         {} hits / {} misses ({:.1}% absorbed)",
        cache.hits,
        cache.misses,
        cache.hit_rate() * 100.0
    );
    println!(
        "  search pack density:       {} candidates over {} dispatches ({:.1} per dispatch)",
        batch.computed_candidates,
        batch.dispatches,
        batch.candidates_per_dispatch()
    );

    let mut fields: Vec<(String, f64)> = vec![
        ("direct_engine_seconds".to_string(), direct),
        ("looped_gradients_seconds".to_string(), looped_s),
        ("batched_gradients_seconds".to_string(), gemm),
        ("speedup_vs_direct".to_string(), direct / gemm),
        ("speedup_vs_looped".to_string(), looped_s / gemm),
        (
            "blocked_backend_seconds_conv_cell".to_string(),
            blocked_conv,
        ),
        ("simd_backend_seconds_conv_cell".to_string(), simd_conv),
        (
            "speedup_simd_vs_blocked".to_string(),
            blocked_conv / simd_conv,
        ),
        (
            "blocked_backend_seconds_bench_cell".to_string(),
            blocked_sparse,
        ),
        ("simd_backend_seconds_bench_cell".to_string(), simd_sparse),
        (
            "speedup_simd_vs_blocked_bench_cell".to_string(),
            blocked_sparse / simd_sparse,
        ),
        ("eager_seconds_bench_cell".to_string(), eager_sparse),
        ("fused_seconds_bench_cell".to_string(), fused_sparse),
        (
            "speedup_fused_vs_eager_bench_cell".to_string(),
            eager_sparse / fused_sparse,
        ),
        (
            "forward_only_packed_seconds_bench_cell".to_string(),
            forward_only_pack,
        ),
        ("full_packed_seconds_bench_cell".to_string(), full_pack),
        (
            "speedup_full_vs_forward_only_packed_bench_cell".to_string(),
            forward_only_pack / full_pack,
        ),
    ];
    fields.extend(cache_stat_fields("search_cache", &cache));
    fields.extend(batch_stat_fields("search_batch", &batch));
    record_bench_json("ntk_engine", &fields);
}

fn bench_ntk_engines(c: &mut Criterion) {
    if smoke_mode() {
        banner(
            "NTK engine smoke: batched must not regress below looped",
            "batched per-sample gradients + GEMM Gram regression gate",
        );
        // Noise-robust regression gate: three interleaved rounds, best (=
        // least noise-disturbed) time per path. A healthy batched path wins
        // outright (1.2–1.4× in steady state); slower than looped by 5% is
        // reported as a warning, and the hard failure threshold sits at
        // 1.5× so a co-tenanted CI runner's contention burst cannot fail
        // the build without a real regression behind it. Only the two gated
        // paths are measured (no direct-engine run), and the
        // reduced-iteration numbers go to their own JSON so they never
        // overwrite the headline `ntk_engine.json` measurements.
        let batched = paper_evaluator(GradientPath::Batched);
        let looped = paper_evaluator(GradientPath::Looped);
        let (mut looped_s, mut batched_s) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..3 {
            looped_s = looped_s.min(measured_seconds(&looped, ConvEngine::Auto, 2));
            batched_s = batched_s.min(measured_seconds(&batched, ConvEngine::Auto, 2));
        }
        println!("gate: looped {looped_s:.4}s vs batched {batched_s:.4}s (best of 3)");
        record_bench_json(
            "ntk_engine_smoke",
            &[
                ("looped_gradients_seconds", looped_s),
                ("batched_gradients_seconds", batched_s),
                ("speedup_vs_looped", looped_s / batched_s),
            ],
        );
        if batched_s > looped_s * 1.05 {
            eprintln!(
                "warning: batched path ({batched_s:.4}s) is not beating the \
                 looped path ({looped_s:.4}s) on this runner"
            );
        }
        assert!(
            batched_s <= looped_s * 1.5,
            "batched per-sample gradients ({batched_s:.4}s) regressed far below \
             the looped path ({looped_s:.4}s)"
        );

        // Backend gate: the SIMD backend must not regress below the
        // blocked-GEMM backend on the kernel-dominated cell. Same
        // noise-robustness scheme: interleaved best-of-3, a warning at
        // parity, a hard failure only past 1.25× (a real regression, not a
        // co-tenant burst).
        banner(
            "Backend smoke: simd must not regress below blocked_gemm",
            "FMA-tiled SIMD backend regression gate (all-conv3x3 cell)",
        );
        let conv_cell = conv_heavy_cell();
        let (mut blocked_s, mut simd_s) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..3 {
            blocked_s = blocked_s.min(backend_seconds(
                KernelBackendKind::BlockedGemm,
                conv_cell,
                2,
                1,
            ));
            simd_s = simd_s.min(backend_seconds(KernelBackendKind::Simd, conv_cell, 2, 1));
        }
        println!("gate: blocked {blocked_s:.4}s vs simd {simd_s:.4}s (best of 3)");
        record_bench_json(
            "ntk_engine_backend_smoke",
            &[
                ("blocked_backend_seconds", blocked_s),
                ("simd_backend_seconds", simd_s),
                ("speedup_simd_vs_blocked", blocked_s / simd_s),
            ],
        );
        if simd_s > blocked_s {
            eprintln!(
                "warning: simd backend ({simd_s:.4}s) is not beating the \
                 blocked_gemm backend ({blocked_s:.4}s) on this runner"
            );
        }
        assert!(
            simd_s <= blocked_s * 1.25,
            "the simd backend ({simd_s:.4}s) regressed below the blocked_gemm \
             backend ({blocked_s:.4}s) on the conv-heavy cell"
        );

        // Graph-pipeline gate: the fusing compiler's cached plan must not
        // regress below the eager call tree on the sparse bench cell (the
        // fused path's home turf — dead edges and dispatch overhead
        // dominate there). Same noise-robustness scheme: interleaved
        // best-of-3, a warning at parity, a hard failure only past 1.25×.
        banner(
            "Graph smoke: fused plans must not regress below eager",
            "fusing-compiler regression gate (sparse bench cell)",
        );
        let space = SearchSpace::nas_bench_201();
        let sparse_cell = space.cell(BENCH_CELL).expect("valid index");
        let (mut eager_s, mut fused_s) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..3 {
            eager_s = eager_s.min(backend_seconds(
                KernelBackendKind::BlockedGemm,
                sparse_cell,
                2,
                1,
            ));
            fused_s = fused_s.min(compiler_seconds(
                micronas_graph::CompilerKind::Fusing,
                sparse_cell,
                2,
                1,
            ));
        }
        println!("gate: eager {eager_s:.4}s vs fused {fused_s:.4}s (best of 3)");
        record_bench_json(
            "ntk_engine_graph_smoke",
            &[
                ("eager_seconds", eager_s),
                ("fused_seconds", fused_s),
                ("speedup_fused_vs_eager", eager_s / fused_s),
            ],
        );
        if fused_s > eager_s {
            eprintln!(
                "warning: the fusing compiler ({fused_s:.4}s) is not beating the \
                 eager path ({eager_s:.4}s) on this runner"
            );
        }
        assert!(
            fused_s <= eager_s * 1.25,
            "the fusing compiler ({fused_s:.4}s) regressed below the eager \
             path ({eager_s:.4}s) on the sparse bench cell"
        );

        // Packed-backward gate: the fully packed per-sample gradient sweep
        // must not regress below the forward-only packing it replaced as the
        // default. Same noise-robustness scheme: interleaved best-of-3, a
        // warning at parity, a hard failure only past 1.25×.
        banner(
            "Packed-backward smoke: full packing must not regress below forward-only",
            "packed per-sample gradient sweep regression gate (sparse bench cell)",
        );
        let (mut forward_only_s, mut full_s) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..3 {
            forward_only_s = forward_only_s.min(packed_sweep_seconds(sparse_cell, false, 2, 1));
            full_s = full_s.min(packed_sweep_seconds(sparse_cell, true, 2, 1));
        }
        println!("gate: forward-only {forward_only_s:.4}s vs full {full_s:.4}s (best of 3)");
        record_bench_json(
            "ntk_engine_packed_backward_smoke",
            &[
                ("forward_only_packed_seconds", forward_only_s),
                ("full_packed_seconds", full_s),
                (
                    "speedup_full_vs_forward_only_packed",
                    forward_only_s / full_s,
                ),
            ],
        );
        if full_s > forward_only_s {
            eprintln!(
                "warning: the packed backward sweep ({full_s:.4}s) is not beating \
                 forward-only packing ({forward_only_s:.4}s) on this runner"
            );
        }
        assert!(
            full_s <= forward_only_s * 1.25,
            "the packed per-sample gradient sweep ({full_s:.4}s) regressed below \
             forward-only packing ({forward_only_s:.4}s) on the sparse bench cell"
        );

        // Telemetry gate: an installed NullSink reports `is_enabled() ==
        // false`, so every probe must stay on the disabled fast path (one
        // relaxed atomic load). Interleaved best-of-3 on the
        // kernel-dominated cell; anything past 5% means a probe landed on
        // a hot path without the active-flag guard.
        banner(
            "Telemetry smoke: NullSink must be free",
            "telemetry disabled-path overhead gate (all-conv3x3 cell)",
        );
        let evaluator = paper_evaluator(GradientPath::Batched);
        let (mut plain_s, mut null_s) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..3 {
            plain_s = plain_s.min(timed_seconds(&evaluator, conv_cell, 2));
            let _scope = micronas_telemetry::install_scoped(std::sync::Arc::new(
                micronas_telemetry::NullSink,
            ));
            null_s = null_s.min(timed_seconds(&evaluator, conv_cell, 2));
        }
        println!("gate: uninstrumented {plain_s:.4}s vs NullSink {null_s:.4}s (best of 3)");
        record_bench_json(
            "ntk_engine_telemetry_smoke",
            &[
                ("uninstrumented_seconds", plain_s),
                ("null_sink_seconds", null_s),
                ("null_sink_overhead", null_s / plain_s),
            ],
        );
        assert!(
            null_s <= plain_s * 1.05,
            "an installed NullSink ({null_s:.4}s) costs more than 5% over the \
             uninstrumented run ({plain_s:.4}s); a telemetry probe is off the \
             disabled fast path"
        );
        return;
    }

    if !c.is_test_mode() {
        banner(
            "NTK end-to-end: conv engines and gradient formulations",
            "proxy-evaluation engine + batched per-sample gradients",
        );
        compare_and_record(6);
    }

    let space = SearchSpace::nas_bench_201();
    let cell = space.cell(BENCH_CELL).expect("valid index");
    let mut group = c.benchmark_group("ntk_engine");
    group.sample_size(10);
    for (engine, name) in [
        (ConvEngine::Direct, "direct"),
        (ConvEngine::Im2colGemm, "im2col_gemm"),
    ] {
        let evaluator = paper_evaluator(GradientPath::Batched);
        group.bench_with_input(BenchmarkId::from_parameter(name), &engine, |b, &engine| {
            set_conv_engine(engine);
            b.iter(|| {
                evaluator
                    .evaluate(cell, DatasetKind::Cifar10, 1)
                    .expect("ntk")
                    .condition_number
            });
            set_conv_engine(ConvEngine::Auto);
        });
    }
    for (path, name) in [
        (GradientPath::Looped, "looped_gradients"),
        (GradientPath::Batched, "batched_gradients"),
    ] {
        let evaluator = paper_evaluator(path);
        group.bench_with_input(BenchmarkId::from_parameter(name), &path, |b, _| {
            b.iter(|| {
                evaluator
                    .evaluate(cell, DatasetKind::Cifar10, 1)
                    .expect("ntk")
                    .condition_number
            });
        });
    }
    for kind in [KernelBackendKind::BlockedGemm, KernelBackendKind::Simd] {
        let evaluator =
            NtkEvaluator::new(NtkConfig::paper_default()).with_backend(kind.instantiate());
        let conv_cell = conv_heavy_cell();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}_backend_conv_cell", kind.id())),
            &kind,
            |b, _| {
                b.iter(|| {
                    evaluator
                        .evaluate(conv_cell, DatasetKind::Cifar10, 1)
                        .expect("ntk")
                        .condition_number
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ntk_engines);
criterion_main!(benches);
