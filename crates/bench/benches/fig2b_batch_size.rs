//! Fig. 2b reproduction: Kendall-τ versus NTK batch size (three seeds plus
//! their average).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use micronas::experiments::run_fig2b;
use micronas_bench::{banner, bench_config, correlation_sample_size, paper_scale};
use micronas_datasets::DatasetKind;
use micronas_proxies::{NtkConfig, NtkEvaluator};
use micronas_searchspace::SearchSpace;

fn batch_sizes() -> Vec<usize> {
    if paper_scale() {
        vec![4, 8, 16, 32, 64, 128]
    } else {
        vec![4, 8, 16, 32]
    }
}

fn print_figure() {
    banner("Fig. 2b — Kendall-τ vs NTK batch size", "Fig. 2b");
    let config = bench_config();
    let sizes = batch_sizes();
    let result =
        run_fig2b(&config, correlation_sample_size() / 2, &sizes, 3).expect("fig 2b experiment");
    print!("{:<10}", "batch");
    for b in &result.batch_sizes {
        print!("{b:>8}");
    }
    println!();
    for (i, seed_taus) in result.taus_per_seed.iter().enumerate() {
        print!("seed {i:<5}");
        for tau in seed_taus {
            print!("{tau:>8.3}");
        }
        println!();
    }
    print!("{:<10}", "average");
    for tau in &result.average {
        print!("{tau:>8.3}");
    }
    println!();
    println!(
        "Knee batch size (within 0.05 of best τ): {}",
        result.knee_batch_size(0.05)
    );
    println!(
        "Paper reference: τ plateaus in the 16–32 range; beyond 32 the cost rises with no τ gain."
    );
}

fn bench_batch_scaling(c: &mut Criterion) {
    print_figure();
    let config = bench_config();
    let space = SearchSpace::nas_bench_201();
    let cell = space.cell(12_345).expect("valid index");
    let mut group = c.benchmark_group("fig2b_ntk_batch");
    group.sample_size(10);
    for batch in [8usize, 32] {
        let evaluator = NtkEvaluator::new(NtkConfig {
            batch_size: batch,
            ..config.ntk
        });
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, _| {
            b.iter(|| {
                evaluator
                    .evaluate(cell, DatasetKind::Cifar10, 0)
                    .expect("ntk")
                    .condition_number
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batch_scaling);
criterion_main!(benches);
