//! Candidate-scoring throughput: candidates evaluated per second, single
//! thread vs the full rayon pool.
//!
//! The zero-cost proxy pipeline is the hot path of every search; this bench
//! scores a fixed candidate set through `SearchContext::evaluate` and
//! reports the aggregate throughput at both ends of the thread-count range
//! (the histories are bitwise identical — the determinism tests in
//! `micronas::search` enforce that). The search's `EvalCacheStats` ride
//! along in `target/bench-json/candidate_throughput.json`, so a
//! cache-behaviour regression (e.g. random sampling suddenly revisiting
//! fewer duplicates, or the context cache missing where it used to hit)
//! shows up next to the timing numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use micronas::{EvalCacheStats, MicroNasConfig, ObjectiveWeights, RandomSearch, SearchContext};
use micronas_bench::{banner, bench_config, record_bench_json};
use micronas_datasets::DatasetKind;
use rayon::ThreadPoolBuilder;
use std::time::Instant;

const BUDGET: usize = 16;

fn run_search(config: &MicroNasConfig, threads: usize) -> (f64, EvalCacheStats) {
    let pool = ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool");
    pool.install(|| {
        // Fresh context per run so the evaluation cache cannot carry over.
        let ctx = SearchContext::new(DatasetKind::Cifar10, config).expect("context");
        let search = RandomSearch::new(ObjectiveWeights::accuracy_only(), BUDGET).expect("search");
        let start = Instant::now();
        let outcome = search.run(&ctx).expect("search run");
        (
            BUDGET as f64 / start.elapsed().as_secs_f64(),
            outcome.cost.cache,
        )
    })
}

fn print_throughput() {
    banner(
        "candidate scoring throughput",
        "rayon-parallel candidate scoring (random search, zero-cost objective)",
    );
    let config = bench_config();
    // Exercise the parallel path even on single-core machines (there the
    // number reports scheduling overhead rather than speedup).
    let max_threads = rayon::current_num_threads().max(2);
    let (single, cache_1) = run_search(&config, 1);
    let (multi, cache_n) = run_search(&config, max_threads);
    println!("random search, {BUDGET} candidates, fast proxy configuration:");
    println!("  1 thread:            {single:>8.2} candidates/s");
    println!("  {max_threads} threads:           {multi:>8.2} candidates/s");
    println!("  parallel speedup:    {:>8.2}x", multi / single);
    println!(
        "  eval-cache:          {} hits / {} misses ({:.1}% absorbed)",
        cache_1.hits,
        cache_1.misses,
        cache_1.hit_rate() * 100.0
    );
    assert_eq!(
        cache_n, cache_1,
        "cache traffic must be thread-count independent"
    );
    record_bench_json(
        "candidate_throughput",
        &[
            ("candidates_per_second_1_thread", single),
            ("candidates_per_second_max_threads", multi),
            ("parallel_speedup", multi / single),
            ("cache_hits", cache_1.hits as f64),
            ("cache_misses", cache_1.misses as f64),
            ("cache_hit_rate", cache_1.hit_rate()),
        ],
    );
}

fn bench_candidate_throughput(c: &mut Criterion) {
    if !c.is_test_mode() {
        print_throughput();
    }
    let config = bench_config();
    let max_threads = rayon::current_num_threads().max(2);
    let mut group = c.benchmark_group("candidates_scored_per_second");
    group.sample_size(10);
    for threads in [1usize, max_threads] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{threads}_threads")),
            &threads,
            |b, &threads| {
                b.iter(|| run_search(&config, threads));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_candidate_throughput);
criterion_main!(benches);
