//! Candidate-scoring throughput: candidates evaluated per second, single
//! thread vs the full rayon pool, and cross-candidate mega-batching vs
//! one-at-a-time evaluation.
//!
//! The zero-cost proxy pipeline is the hot path of every search; this bench
//! scores a fixed candidate set through the search stack and reports the
//! aggregate throughput at both ends of the thread-count range (the
//! histories are bitwise identical — the determinism tests in
//! `micronas::search` enforce that). It also measures the packed evaluator
//! head-to-head: one `ZeroCostEvaluator::evaluate_pack` sweep of eight
//! same-geometry candidates against eight solo `evaluate` calls, interleaved
//! best-of-3, on the pinned sparse bench cell and the all-conv3×3 cell, and
//! the packed backward head-to-head: the same packed sweep with the
//! per-sample gradient kernels merged across members vs forward-only
//! packing (one solo backward sweep per member). The
//! search's `EvalCacheStats` and pack-density `BatchStats` ride along in
//! `target/bench-json/candidate_throughput.json`, so a cache- or
//! pack-behaviour regression shows up next to the timing numbers.
//!
//! # Smoke mode
//!
//! `MICRONAS_BENCH_SMOKE=1` runs a reduced-iteration packed-vs-unpacked
//! comparison on the conv-heavy cell and **fails** (panics) if the packed
//! path regresses below one-at-a-time evaluation — the CI guards against the
//! pack path silently degenerating into a loop of solo evaluations plus
//! overhead. Criterion's own `--test` flag still runs every benchmark body
//! once without timing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use micronas::{
    BatchStats, EvalCacheStats, MicroNasConfig, ObjectiveWeights, RandomSearch, SearchContext,
};
use micronas_bench::{
    banner, batch_stat_fields, bench_config, cache_stat_fields, record_bench_json,
};
use micronas_datasets::DatasetKind;
use micronas_proxies::ZeroCostEvaluator;
use micronas_searchspace::{CellTopology, Operation, SearchSpace};
use rayon::ThreadPoolBuilder;
use std::time::Instant;

const BUDGET: usize = 16;

/// Candidates per packed sweep in the head-to-head comparison (the context
/// default width).
const PACK: usize = 8;

/// The sparse bench cell the engine benches pin (one 1×1 conv per cell —
/// shared non-kernel work dominates).
const BENCH_CELL: usize = 7_000;

fn conv_heavy_cell() -> CellTopology {
    CellTopology::new([Operation::NorConv3x3; 6])
}

fn run_search(config: &MicroNasConfig, threads: usize) -> (f64, EvalCacheStats, BatchStats) {
    let pool = ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool");
    pool.install(|| {
        // Fresh context per run so the evaluation cache cannot carry over.
        let ctx = SearchContext::new(DatasetKind::Cifar10, config).expect("context");
        let search = RandomSearch::new(ObjectiveWeights::accuracy_only(), BUDGET).expect("search");
        let start = Instant::now();
        let outcome = search.run(&ctx).expect("search run");
        (
            BUDGET as f64 / start.elapsed().as_secs_f64(),
            outcome.cost.cache,
            outcome.cost.batch,
        )
    })
}

/// Seconds for `PACK` candidates, one-at-a-time vs one packed sweep,
/// interleaved best-of-`rounds` to shed co-tenant noise. Both sides evaluate
/// the same cell `PACK` times, so the ratio bundles every packed-path
/// advantage: shared probe batches, one stem forward per pack,
/// geometry-bucketed GEMM dispatches, and the gradient sweep's dedup of
/// identical members (same topology + same seed means bitwise-equal
/// weights, so duplicates' matrices are copies of one representative's
/// sweep).
fn packed_vs_unpacked(config: &MicroNasConfig, cell: CellTopology, rounds: usize) -> (f64, f64) {
    let zero_cost = ZeroCostEvaluator::with_backend(
        config.ntk,
        config.linear_regions,
        config.backend.instantiate(),
    );
    let cells = [cell; PACK];
    // One warm-up per side (arena growth, lazy tables).
    zero_cost
        .evaluate(cell, DatasetKind::Cifar10, 0)
        .expect("solo warm-up");
    zero_cost
        .evaluate_pack(&cells, DatasetKind::Cifar10, 0)
        .expect("packed warm-up");
    let (mut solo, mut packed) = (f64::INFINITY, f64::INFINITY);
    for round in 0..rounds {
        let seed = round as u64;
        let start = Instant::now();
        for _ in 0..PACK {
            zero_cost
                .evaluate(cell, DatasetKind::Cifar10, seed)
                .expect("solo");
        }
        solo = solo.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        zero_cost
            .evaluate_pack(&cells, DatasetKind::Cifar10, seed)
            .expect("packed");
        packed = packed.min(start.elapsed().as_secs_f64());
    }
    (solo, packed)
}

/// Seconds for one width-[`PACK`] packed sweep, with the per-sample
/// gradient sweep fully packed (default) vs forward-only packing (the
/// pre-packed-backward pipeline: packed forward, one solo backward sweep
/// per member), interleaved best-of-`rounds`. Both sides run the identical
/// packed forward, so the ratio isolates the backward-pack change.
fn full_vs_forward_only_packed(
    config: &MicroNasConfig,
    cell: CellTopology,
    rounds: usize,
) -> (f64, f64) {
    let full = ZeroCostEvaluator::with_backend(
        config.ntk,
        config.linear_regions,
        config.backend.instantiate(),
    );
    let forward_only = ZeroCostEvaluator::with_backend(
        config.ntk,
        config.linear_regions,
        config.backend.instantiate(),
    )
    .with_packed_backward(false);
    let cells = [cell; PACK];
    // One warm-up per side (arena growth, lazy tables).
    for side in [&full, &forward_only] {
        side.evaluate_pack(&cells, DatasetKind::Cifar10, 0)
            .expect("packed warm-up");
    }
    let (mut forward_only_s, mut full_s) = (f64::INFINITY, f64::INFINITY);
    for round in 0..rounds {
        let seed = round as u64;
        let start = Instant::now();
        forward_only
            .evaluate_pack(&cells, DatasetKind::Cifar10, seed)
            .expect("forward-only packed");
        forward_only_s = forward_only_s.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        full.evaluate_pack(&cells, DatasetKind::Cifar10, seed)
            .expect("fully packed");
        full_s = full_s.min(start.elapsed().as_secs_f64());
    }
    (forward_only_s, full_s)
}

/// Whether `MICRONAS_BENCH_SMOKE=1` smoke mode is active.
fn smoke_mode() -> bool {
    std::env::var("MICRONAS_BENCH_SMOKE")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn print_throughput() {
    banner(
        "candidate scoring throughput",
        "rayon-parallel, mega-batched candidate scoring (random search, zero-cost objective)",
    );
    let config = bench_config();
    // Exercise the parallel path even on single-core machines (there the
    // number reports scheduling overhead rather than speedup).
    let max_threads = rayon::current_num_threads().max(2);
    let (single, cache_1, batch_1) = run_search(&config, 1);
    let (multi, cache_n, batch_n) = run_search(&config, max_threads);
    println!("random search, {BUDGET} candidates, fast proxy configuration:");
    println!("  1 thread:            {single:>8.2} candidates/s");
    println!("  {max_threads} threads:           {multi:>8.2} candidates/s");
    println!("  parallel speedup:    {:>8.2}x", multi / single);
    println!(
        "  eval-cache:          {} hits / {} misses ({:.1}% absorbed)",
        cache_1.hits,
        cache_1.misses,
        cache_1.hit_rate() * 100.0
    );
    println!(
        "  pack density:        {} candidates over {} dispatches \
         ({:.1} per dispatch, {:.0}% of width-{} capacity)",
        batch_1.computed_candidates,
        batch_1.dispatches,
        batch_1.candidates_per_dispatch(),
        batch_1.fill_rate() * 100.0,
        batch_1.pack_width,
    );
    assert_eq!(
        cache_n, cache_1,
        "cache traffic must be thread-count independent"
    );
    assert_eq!(
        batch_n, batch_1,
        "pack density must be thread-count independent"
    );

    // Packed vs one-at-a-time, interleaved best-of-3 on both pinned cells.
    let space = SearchSpace::nas_bench_201();
    let sparse = space.cell(BENCH_CELL).expect("valid index");
    let (sparse_solo, sparse_packed) = packed_vs_unpacked(&config, sparse, 3);
    let (conv_solo, conv_packed) = packed_vs_unpacked(&config, conv_heavy_cell(), 3);
    println!("mega-batched evaluation ({PACK} candidates, best of 3):");
    println!(
        "  sparse bench cell:   {sparse_solo:>8.4} s -> {sparse_packed:>8.4} s  ({:.2}x)",
        sparse_solo / sparse_packed
    );
    println!(
        "  all-conv3x3 cell:    {conv_solo:>8.4} s -> {conv_packed:>8.4} s  ({:.2}x)",
        conv_solo / conv_packed
    );

    // Forward-only vs full packing, interleaved best-of-3 on both cells.
    let (sparse_fwd_only, sparse_full) = full_vs_forward_only_packed(&config, sparse, 3);
    let (conv_fwd_only, conv_full) = full_vs_forward_only_packed(&config, conv_heavy_cell(), 3);
    println!("packed backward ({PACK} candidates, forward-only vs full packing, best of 3):");
    println!(
        "  sparse bench cell:   {sparse_fwd_only:>8.4} s -> {sparse_full:>8.4} s  ({:.2}x)",
        sparse_fwd_only / sparse_full
    );
    println!(
        "  all-conv3x3 cell:    {conv_fwd_only:>8.4} s -> {conv_full:>8.4} s  ({:.2}x)",
        conv_fwd_only / conv_full
    );

    let mut fields: Vec<(String, f64)> = vec![
        ("candidates_per_second_1_thread".to_string(), single),
        ("candidates_per_second_max_threads".to_string(), multi),
        ("parallel_speedup".to_string(), multi / single),
    ];
    fields.extend(cache_stat_fields("cache", &cache_1));
    fields.extend(batch_stat_fields("batch", &batch_1));
    fields.extend([
        ("unpacked_seconds_bench_cell".to_string(), sparse_solo),
        ("packed_seconds_bench_cell".to_string(), sparse_packed),
        (
            "packed_speedup_bench_cell".to_string(),
            sparse_solo / sparse_packed,
        ),
        ("unpacked_seconds_conv_cell".to_string(), conv_solo),
        ("packed_seconds_conv_cell".to_string(), conv_packed),
        (
            "packed_speedup_conv_cell".to_string(),
            conv_solo / conv_packed,
        ),
        (
            "forward_only_packed_seconds_bench_cell".to_string(),
            sparse_fwd_only,
        ),
        ("full_packed_seconds_bench_cell".to_string(), sparse_full),
        (
            "full_packed_speedup_bench_cell".to_string(),
            sparse_fwd_only / sparse_full,
        ),
        (
            "forward_only_packed_seconds_conv_cell".to_string(),
            conv_fwd_only,
        ),
        ("full_packed_seconds_conv_cell".to_string(), conv_full),
        (
            "full_packed_speedup_conv_cell".to_string(),
            conv_fwd_only / conv_full,
        ),
    ]);
    record_bench_json("candidate_throughput", &fields);
}

fn bench_candidate_throughput(c: &mut Criterion) {
    if smoke_mode() {
        banner(
            "Mega-batch smoke: packed must not regress below unpacked",
            "cross-candidate packed GEMM dispatch regression gate (all-conv3x3 cell)",
        );
        // Noise-robust regression gate, same scheme as the ntk_engine gates:
        // interleaved best-of-3, a warning at parity, a hard failure only
        // past 1.25× (a real regression, not a co-tenant burst). A healthy
        // packed path wins outright on the conv-heavy cell, where every
        // edge's GEMM merges across all eight pack members. The
        // reduced-iteration numbers go to their own JSON so they never
        // overwrite the headline measurements.
        let config = bench_config();
        let (solo, packed) = packed_vs_unpacked(&config, conv_heavy_cell(), 3);
        println!("gate: unpacked {solo:.4}s vs packed {packed:.4}s (best of 3, {PACK} candidates)");
        record_bench_json(
            "candidate_throughput_smoke",
            &[
                ("unpacked_seconds_conv_cell", solo),
                ("packed_seconds_conv_cell", packed),
                ("packed_speedup_conv_cell", solo / packed),
            ],
        );
        if packed > solo {
            eprintln!(
                "warning: packed evaluation ({packed:.4}s) is not beating \
                 one-at-a-time evaluation ({solo:.4}s) on this runner"
            );
        }
        assert!(
            packed <= solo * 1.25,
            "packed evaluation ({packed:.4}s) regressed below one-at-a-time \
             evaluation ({solo:.4}s) on the conv-heavy cell"
        );
        return;
    }

    if !c.is_test_mode() {
        print_throughput();
    }
    let config = bench_config();
    let max_threads = rayon::current_num_threads().max(2);
    let mut group = c.benchmark_group("candidates_scored_per_second");
    group.sample_size(10);
    for threads in [1usize, max_threads] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{threads}_threads")),
            &threads,
            |b, &threads| {
                b.iter(|| run_search(&config, threads));
            },
        );
    }
    let space = SearchSpace::nas_bench_201();
    let sparse = space.cell(BENCH_CELL).expect("valid index");
    group.bench_with_input(
        BenchmarkId::from_parameter("packed_vs_unpacked_bench_cell"),
        &sparse,
        |b, &cell| {
            b.iter(|| packed_vs_unpacked(&config, cell, 1));
        },
    );
    group.finish();
}

criterion_group!(benches, bench_candidate_throughput);
criterion_main!(benches);
