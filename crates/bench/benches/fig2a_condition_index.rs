//! Fig. 2a reproduction: Kendall-τ versus the NTK condition index K_i on
//! CIFAR-10 / CIFAR-100 / ImageNet16-120.

use criterion::{criterion_group, criterion_main, Criterion};
use micronas::experiments::run_fig2a;
use micronas_bench::{banner, bench_config, correlation_sample_size};
use micronas_datasets::DatasetKind;
use micronas_proxies::{NtkConfig, NtkEvaluator};
use micronas_searchspace::SearchSpace;

fn print_figure() {
    banner("Fig. 2a — Kendall-τ vs condition index K_i", "Fig. 2a");
    let config = bench_config();
    let series = run_fig2a(&config, correlation_sample_size(), 16).expect("fig 2a experiment");
    print!("{:<16}", "K_i");
    for i in 1..=16 {
        print!("{i:>7}");
    }
    println!();
    for s in &series {
        print!("{:<16}", s.dataset);
        for tau in &s.taus {
            print!("{tau:>7.3}");
        }
        println!("   (best index K_{})", s.best_index());
    }
    println!();
    println!(
        "Paper reference: τ ≈ 0.3–0.6 for small i on all three datasets, declining for large i."
    );
}

fn bench_ntk_evaluation(c: &mut Criterion) {
    print_figure();
    let config = bench_config();
    let space = SearchSpace::nas_bench_201();
    let cell = space.cell(8_888).expect("valid index");
    let evaluator = NtkEvaluator::new(NtkConfig {
        max_condition_index: 16,
        ..config.ntk
    });
    let mut group = c.benchmark_group("fig2a");
    group.sample_size(10);
    group.bench_function("ntk_condition_single_architecture", |b| {
        b.iter(|| {
            evaluator
                .evaluate(cell, DatasetKind::Cifar10, 0)
                .expect("ntk")
                .condition_number
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ntk_evaluation);
criterion_main!(benches);
