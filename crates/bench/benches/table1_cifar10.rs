//! Table I reproduction: µNAS vs TE-NAS vs MicroNAS on CIFAR-10.
//!
//! Prints the reproduced table, then benchmarks the latency-guided pruning
//! search (the MicroNAS row) with Criterion.

use criterion::{criterion_group, criterion_main, Criterion};
use micronas::experiments::{run_table1, Table1Row};
use micronas::{EvolutionaryConfig, MicroNasSearch, ObjectiveWeights, SearchContext};
use micronas_bench::{banner, bench_config, paper_scale};
use micronas_datasets::DatasetKind;

fn print_table() {
    banner(
        "Table I — Results on CIFAR-10",
        "Table I (µNAS / TE-NAS / MicroNAS)",
    );
    let config = bench_config();
    let evolution = if paper_scale() {
        EvolutionaryConfig::munas_default()
    } else {
        EvolutionaryConfig {
            population: 24,
            cycles: 120,
            sample_size: 5,
        }
    };
    let rows = run_table1(&config, evolution, 2.0).expect("table 1 experiment");
    println!("{}", Table1Row::header());
    for row in &rows {
        println!("{}", row.formatted());
    }
    println!();
    println!("Paper reference values: µNAS 0.014M params / 552h / 86.49%;");
    println!("TE-NAS 188.66 MFLOPs / 1.317M / 0.43h / 93.78%; MicroNAS 51.04 MFLOPs / 0.372M / 3.23x / 0.43h / 93.88%");
}

fn bench_micronas_search(c: &mut Criterion) {
    print_table();
    let config = bench_config();
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("micronas_latency_guided_search", |b| {
        b.iter(|| {
            let ctx = SearchContext::new(DatasetKind::Cifar10, &config).expect("context");
            MicroNasSearch::new(ObjectiveWeights::latency_guided(2.0))
                .run(&ctx)
                .expect("search")
                .best
                .index()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_micronas_search);
criterion_main!(benches);
