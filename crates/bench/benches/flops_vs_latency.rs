//! §III FLOPs-guided versus latency-guided search comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use micronas::experiments::run_flops_vs_latency;
use micronas_bench::{banner, bench_config};
use micronas_hw::FlopsEstimator;
use micronas_searchspace::{MacroSkeleton, SearchSpace};

fn print_comparison() {
    banner(
        "FLOPs-guided vs latency-guided search",
        "§III guidance comparison",
    );
    let config = bench_config();
    let cmp = run_flops_vs_latency(&config, 2.0).expect("guidance comparison");
    println!(
        "{:<26} {:>12} {:>10} {:>12} {:>10}",
        "objective", "latency(ms)", "FLOPs(M)", "speedup", "ACC(%)"
    );
    for (name, p) in [
        ("proxy-only baseline", &cmp.baseline),
        ("FLOPs-guided", &cmp.flops_guided),
        ("latency-guided", &cmp.latency_guided),
    ] {
        println!(
            "{:<26} {:>12.1} {:>10.1} {:>11.2}x {:>10.2}",
            name, p.latency_ms, p.flops_m, p.speedup_vs_baseline, p.accuracy
        );
    }
    println!();
    println!("Paper reference: the latency-guided search is superior and more balanced than the FLOPs-guided one,");
    println!("because the latency model carries MCU-specific bias that raw FLOPs miss.");
}

fn bench_flops_estimator(c: &mut Criterion) {
    print_comparison();
    let space = SearchSpace::nas_bench_201();
    let skeleton = MacroSkeleton::nas_bench_201(10);
    let estimator = FlopsEstimator::new();
    let cells: Vec<_> = (0..256)
        .map(|i| space.cell(i * 61).expect("valid"))
        .collect();
    let mut group = c.benchmark_group("flops_vs_latency");
    group.bench_function("flops_estimate_256_architectures", |b| {
        b.iter(|| {
            cells
                .iter()
                .map(|cell| estimator.cell_in_skeleton(cell, &skeleton).flops)
                .sum::<u64>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_flops_estimator);
criterion_main!(benches);
