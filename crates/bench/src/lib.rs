//! Shared plumbing for the benchmark harness.
//!
//! Every table and figure of the paper has a Criterion bench target in
//! `benches/`; each target
//!
//! 1. regenerates its table / figure once and prints the rows or series in
//!    the same layout the paper uses, and
//! 2. benchmarks the representative inner kernel of that experiment with
//!    Criterion, so `cargo bench` also reports stable timing numbers.
//!
//! By default the experiments run at a reduced-but-faithful scale so a full
//! `cargo bench --workspace` completes in minutes. Set the environment
//! variable `MICRONAS_PAPER_SCALE=1` to run the paper-scale configuration
//! (batch-32 NTK on the 16×16 proxy networks) instead.

use micronas::{BatchStats, EvalCacheStats, MicroNasConfig};

/// Returns the experiment configuration for benchmark runs.
///
/// Reduced scale (default) uses the batch-12 NTK on 12×12 proxies; paper
/// scale (`MICRONAS_PAPER_SCALE=1`) uses the batch-32 NTK on 16×16 proxies,
/// matching the setting the paper adopts.
pub fn bench_config() -> MicroNasConfig {
    if paper_scale() {
        MicroNasConfig::paper_default()
    } else {
        MicroNasConfig::fast()
    }
}

/// Whether paper-scale mode was requested via `MICRONAS_PAPER_SCALE=1`.
pub fn paper_scale() -> bool {
    std::env::var("MICRONAS_PAPER_SCALE")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Number of architectures sampled for correlation experiments at the current
/// scale.
pub fn correlation_sample_size() -> usize {
    if paper_scale() {
        200
    } else {
        64
    }
}

/// Writes benchmark numbers to the bench JSON directory
/// (`target/bench-json/<name>.json`), one flat object of numeric fields plus
/// the scale the numbers were measured at. Hand-rolled JSON: the workspace's
/// `serde` is an offline no-op shim, and a flat `f64` map needs nothing more.
///
/// The directory is created (`create_dir_all`) before writing, so benches
/// can record from a pristine checkout.
///
/// Duplicate field keys would silently produce invalid JSON (most parsers
/// keep only one of the values), so they are resolved **last-write-wins**
/// with a warning on stderr; fields that collide with the reserved header
/// keys (`"bench"`, `"scale"`) are dropped with a warning — the header is
/// authoritative.
///
/// # Errors
///
/// Returns the underlying [`std::io::Error`] when the directory cannot be
/// created or the file cannot be written. Bench targets report the error
/// (see [`record_bench_json`]) rather than panicking — a benchmark must
/// never die because recording failed.
pub fn write_bench_json<S: AsRef<str>>(
    name: &str,
    fields: &[(S, f64)],
) -> std::io::Result<std::path::PathBuf> {
    // Anchor at the workspace target directory: cargo runs benches with the
    // package directory (not the workspace root) as cwd.
    let target = std::env::var_os("CARGO_TARGET_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("..")
                .join("..")
                .join("target")
        });
    let dir = target.join("bench-json");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));

    let mut ordered: Vec<(&str, f64)> = Vec::with_capacity(fields.len());
    for (key, value) in fields {
        let key = key.as_ref();
        if key == "bench" || key == "scale" {
            eprintln!(
                "warning: bench json field {key:?} in {name} collides with a \
                 reserved header key; dropping it"
            );
            continue;
        }
        if let Some(slot) = ordered.iter_mut().find(|(k, _)| *k == key) {
            eprintln!(
                "warning: duplicate bench json field {key:?} in {name}; \
                 keeping the last value"
            );
            slot.1 = *value;
        } else {
            ordered.push((key, *value));
        }
    }

    let mut body = String::from("{\n");
    body.push_str(&format!(
        "  \"bench\": \"{name}\",\n  \"scale\": \"{}\"",
        if paper_scale() { "paper" } else { "reduced" }
    ));
    for (key, value) in &ordered {
        body.push_str(&format!(",\n  \"{key}\": {value:?}"));
    }
    body.push_str("\n}\n");
    std::fs::write(&path, body)?;
    Ok(path)
}

/// Flattens an [`EvalCacheStats`] into the conventional
/// `{prefix}_hits` / `{prefix}_misses` / `{prefix}_hit_rate` bench-json
/// fields, so every bench target reports cache provenance under the same
/// shape (only the prefix differs).
pub fn cache_stat_fields(prefix: &str, cache: &EvalCacheStats) -> Vec<(String, f64)> {
    vec![
        (format!("{prefix}_hits"), cache.hits as f64),
        (format!("{prefix}_misses"), cache.misses as f64),
        (format!("{prefix}_hit_rate"), cache.hit_rate()),
    ]
}

/// Flattens a [`BatchStats`] into the conventional `{prefix}_dispatches` /
/// `{prefix}_packed_candidates` / `{prefix}_computed_candidates` /
/// `{prefix}_pack_width` / `{prefix}_candidates_per_dispatch` /
/// `{prefix}_fill_rate` bench-json fields, followed by the kernel-level
/// forward/backward pack-fill split (`{prefix}_forward_kernel_dispatches` /
/// `_members` / `_fill`, same for `backward`) so recorded runs show whether
/// the per-sample gradient sweeps merged as densely as the forward probes.
pub fn batch_stat_fields(prefix: &str, batch: &BatchStats) -> Vec<(String, f64)> {
    vec![
        (format!("{prefix}_dispatches"), batch.dispatches as f64),
        (
            format!("{prefix}_packed_candidates"),
            batch.packed_candidates as f64,
        ),
        (
            format!("{prefix}_computed_candidates"),
            batch.computed_candidates as f64,
        ),
        (format!("{prefix}_pack_width"), batch.pack_width as f64),
        (
            format!("{prefix}_candidates_per_dispatch"),
            batch.candidates_per_dispatch(),
        ),
        (format!("{prefix}_fill_rate"), batch.fill_rate()),
        (
            format!("{prefix}_forward_kernel_dispatches"),
            batch.forward_kernel_dispatches as f64,
        ),
        (
            format!("{prefix}_forward_kernel_members"),
            batch.forward_kernel_members as f64,
        ),
        (format!("{prefix}_forward_fill"), batch.forward_fill()),
        (
            format!("{prefix}_backward_kernel_dispatches"),
            batch.backward_kernel_dispatches as f64,
        ),
        (
            format!("{prefix}_backward_kernel_members"),
            batch.backward_kernel_members as f64,
        ),
        (format!("{prefix}_backward_fill"), batch.backward_fill()),
    ]
}

/// [`write_bench_json`] with the standard bench-target reporting: prints the
/// recorded path on success and a diagnostic (without failing the bench) on
/// I/O error.
pub fn record_bench_json<S: AsRef<str>>(name: &str, fields: &[(S, f64)]) {
    match write_bench_json(name, fields) {
        Ok(path) => println!("recorded: {}", path.display()),
        Err(e) => eprintln!("warning: could not record bench json for {name}: {e}"),
    }
}

/// Prints a banner identifying the experiment and its scale.
pub fn banner(experiment: &str, paper_reference: &str) {
    println!();
    println!("================================================================");
    println!("MicroNAS reproduction — {experiment}");
    println!("Reproduces: {paper_reference}");
    println!(
        "Scale: {}",
        if paper_scale() {
            "paper (MICRONAS_PAPER_SCALE=1)"
        } else {
            "reduced (default)"
        }
    );
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_reduced() {
        // The environment variable is not set in the test environment.
        if std::env::var("MICRONAS_PAPER_SCALE").is_err() {
            assert!(!paper_scale());
            assert_eq!(correlation_sample_size(), 64);
            assert_eq!(bench_config(), MicroNasConfig::fast());
        }
    }

    #[test]
    fn banner_does_not_panic() {
        banner("test", "none");
    }

    #[test]
    fn bench_json_is_written_and_well_formed() {
        let path = write_bench_json("lib_test_smoke", &[("alpha", 1.25), ("beta", 3.0)])
            .expect("bench json must be writable in the test environment");
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"bench\": \"lib_test_smoke\""));
        assert!(body.contains("\"alpha\": 1.25"));
        assert!(body.contains("\"beta\": 3.0"));
        assert!(body.trim_end().ends_with('}'));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn duplicate_bench_json_keys_resolve_last_write_wins() {
        let path = write_bench_json(
            "lib_test_duplicate",
            &[("alpha", 1.0), ("beta", 2.0), ("alpha", 3.0)],
        )
        .unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            body.matches("\"alpha\"").count(),
            1,
            "duplicate key must not be emitted twice: {body}"
        );
        assert!(body.contains("\"alpha\": 3.0"), "{body}");
        assert!(body.contains("\"beta\": 2.0"), "{body}");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn reserved_bench_json_keys_are_dropped() {
        let path =
            write_bench_json("lib_test_reserved", &[("bench", 9.0), ("gamma", 4.0)]).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"bench\": \"lib_test_reserved\""), "{body}");
        assert!(!body.contains("\"bench\": 9.0"), "{body}");
        assert!(body.contains("\"gamma\": 4.0"), "{body}");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn stat_field_helpers_use_the_conventional_names() {
        let cache = EvalCacheStats { hits: 6, misses: 2 };
        let fields = cache_stat_fields("cache", &cache);
        assert_eq!(
            fields.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>(),
            ["cache_hits", "cache_misses", "cache_hit_rate"]
        );
        assert_eq!(fields[2].1, 0.75);

        let batch = BatchStats {
            dispatches: 2,
            packed_candidates: 16,
            computed_candidates: 12,
            pack_width: 8,
            forward_kernel_dispatches: 4,
            forward_kernel_members: 20,
            backward_kernel_dispatches: 6,
            backward_kernel_members: 36,
        };
        let fields = batch_stat_fields("batch", &batch);
        assert_eq!(
            fields.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>(),
            [
                "batch_dispatches",
                "batch_packed_candidates",
                "batch_computed_candidates",
                "batch_pack_width",
                "batch_candidates_per_dispatch",
                "batch_fill_rate",
                "batch_forward_kernel_dispatches",
                "batch_forward_kernel_members",
                "batch_forward_fill",
                "batch_backward_kernel_dispatches",
                "batch_backward_kernel_members",
                "batch_backward_fill"
            ]
        );
        assert_eq!(fields[8].1, 5.0);
        assert_eq!(fields[11].1, 6.0);
    }
}
