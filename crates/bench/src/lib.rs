//! Shared plumbing for the benchmark harness.
//!
//! Every table and figure of the paper has a Criterion bench target in
//! `benches/`; each target
//!
//! 1. regenerates its table / figure once and prints the rows or series in
//!    the same layout the paper uses, and
//! 2. benchmarks the representative inner kernel of that experiment with
//!    Criterion, so `cargo bench` also reports stable timing numbers.
//!
//! By default the experiments run at a reduced-but-faithful scale so a full
//! `cargo bench --workspace` completes in minutes. Set the environment
//! variable `MICRONAS_PAPER_SCALE=1` to run the paper-scale configuration
//! (batch-32 NTK on the 16×16 proxy networks) instead.

use micronas::MicroNasConfig;

/// Returns the experiment configuration for benchmark runs.
///
/// Reduced scale (default) uses the batch-12 NTK on 12×12 proxies; paper
/// scale (`MICRONAS_PAPER_SCALE=1`) uses the batch-32 NTK on 16×16 proxies,
/// matching the setting the paper adopts.
pub fn bench_config() -> MicroNasConfig {
    if paper_scale() {
        MicroNasConfig::paper_default()
    } else {
        MicroNasConfig::fast()
    }
}

/// Whether paper-scale mode was requested via `MICRONAS_PAPER_SCALE=1`.
pub fn paper_scale() -> bool {
    std::env::var("MICRONAS_PAPER_SCALE")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Number of architectures sampled for correlation experiments at the current
/// scale.
pub fn correlation_sample_size() -> usize {
    if paper_scale() {
        200
    } else {
        64
    }
}

/// Prints a banner identifying the experiment and its scale.
pub fn banner(experiment: &str, paper_reference: &str) {
    println!();
    println!("================================================================");
    println!("MicroNAS reproduction — {experiment}");
    println!("Reproduces: {paper_reference}");
    println!(
        "Scale: {}",
        if paper_scale() {
            "paper (MICRONAS_PAPER_SCALE=1)"
        } else {
            "reduced (default)"
        }
    );
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_reduced() {
        // The environment variable is not set in the test environment.
        if std::env::var("MICRONAS_PAPER_SCALE").is_err() {
            assert!(!paper_scale());
            assert_eq!(correlation_sample_size(), 64);
            assert_eq!(bench_config(), MicroNasConfig::fast());
        }
    }

    #[test]
    fn banner_does_not_panic() {
        banner("test", "none");
    }
}
