use micronas_searchspace::{CellTopology, MacroSkeleton, OpClass, OpInstance};
use serde::{Deserialize, Serialize};

/// FLOPs / MACs / parameter totals for a network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlopsReport {
    /// Total floating point operations (2 × MACs plus element-wise work).
    pub flops: u64,
    /// Total multiply–accumulate operations.
    pub macs: u64,
    /// Total trainable parameters.
    pub params: u64,
}

impl FlopsReport {
    /// FLOPs expressed in millions, matching the unit of Table I.
    pub fn flops_m(&self) -> f64 {
        self.flops as f64 / 1e6
    }

    /// Parameters expressed in millions, matching the unit of Table I.
    pub fn params_m(&self) -> f64 {
        self.params as f64 / 1e6
    }
}

/// Analytic FLOPs / parameter estimator.
///
/// The estimator mirrors the counting conventions of the paper (and of the
/// `thop`/`fvcore` tools commonly used with NAS-Bench-201): convolutions and
/// linear layers count 2 FLOPs per MAC, pooling and element-wise additions
/// count 1 FLOP per processed element, identity and `none` edges are free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FlopsEstimator;

impl FlopsEstimator {
    /// Creates a new estimator.
    pub fn new() -> Self {
        Self
    }

    /// Multiply–accumulate count of one layer.
    pub fn layer_macs(&self, op: &OpInstance) -> u64 {
        let out = op.output_elements() as u64;
        match op.class {
            OpClass::Conv => out * (op.c_in * op.kernel * op.kernel) as u64,
            OpClass::Linear => (op.c_in * op.c_out) as u64,
            _ => 0,
        }
    }

    /// FLOP count of one layer.
    pub fn layer_flops(&self, op: &OpInstance) -> u64 {
        let out = op.output_elements() as u64;
        match op.class {
            OpClass::Conv | OpClass::Linear => 2 * self.layer_macs(op),
            OpClass::Pool => out * (op.kernel * op.kernel) as u64,
            OpClass::GlobalPool => op.input_elements() as u64,
            OpClass::Add => out,
            OpClass::Identity | OpClass::Zero => 0,
        }
    }

    /// Trainable parameter count of one layer.
    pub fn layer_params(&self, op: &OpInstance) -> u64 {
        match op.class {
            OpClass::Conv => (op.c_in * op.c_out * op.kernel * op.kernel) as u64,
            OpClass::Linear => (op.c_in * op.c_out) as u64,
            _ => 0,
        }
    }

    /// Totals for a flattened network.
    pub fn network(&self, ops: &[OpInstance]) -> FlopsReport {
        let mut flops = 0u64;
        let mut macs = 0u64;
        let mut params = 0u64;
        for op in ops {
            flops += self.layer_flops(op);
            macs += self.layer_macs(op);
            params += self.layer_params(op);
        }
        FlopsReport {
            flops,
            macs,
            params,
        }
    }

    /// Convenience wrapper: totals for a cell stacked into a skeleton.
    pub fn cell_in_skeleton(&self, cell: &CellTopology, skeleton: &MacroSkeleton) -> FlopsReport {
        self.network(&skeleton.instantiate(cell))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use micronas_searchspace::{Operation, SearchSpace};

    fn all_op_cell(op: Operation) -> CellTopology {
        CellTopology::new([op; 6])
    }

    #[test]
    fn all_none_cell_has_only_skeleton_flops() {
        let est = FlopsEstimator::new();
        let sk = MacroSkeleton::nas_bench_201(10);
        let none = est.cell_in_skeleton(&all_op_cell(Operation::None), &sk);
        let skip = est.cell_in_skeleton(&all_op_cell(Operation::SkipConnect), &sk);
        // Skip connections add no FLOPs either: identical totals.
        assert_eq!(none.flops, skip.flops);
        assert!(none.flops > 0, "stem, reductions and head still count");
    }

    #[test]
    fn conv3x3_cell_is_heaviest() {
        let est = FlopsEstimator::new();
        let sk = MacroSkeleton::nas_bench_201(10);
        let c3 = est.cell_in_skeleton(&all_op_cell(Operation::NorConv3x3), &sk);
        let c1 = est.cell_in_skeleton(&all_op_cell(Operation::NorConv1x1), &sk);
        let pool = est.cell_in_skeleton(&all_op_cell(Operation::AvgPool3x3), &sk);
        assert!(c3.flops > c1.flops);
        assert!(c1.flops > pool.flops);
        assert!(c3.params > c1.params);
        assert_eq!(
            pool.params,
            est.cell_in_skeleton(&all_op_cell(Operation::None), &sk)
                .params
        );
    }

    #[test]
    fn flops_are_twice_macs_for_pure_conv_layers() {
        let est = FlopsEstimator::new();
        let sk = MacroSkeleton::nas_bench_201(10);
        let ops = sk.instantiate(&all_op_cell(Operation::NorConv3x3));
        for op in ops.iter().filter(|o| o.class == OpClass::Conv) {
            assert_eq!(est.layer_flops(op), 2 * est.layer_macs(op));
        }
    }

    #[test]
    fn table1_magnitude_is_plausible() {
        // Paper Table I reports TE-NAS at ~189 MFLOPs and the MicroNAS model
        // at ~51 MFLOPs on CIFAR-10; the space spans roughly 10–300 MFLOPs.
        let est = FlopsEstimator::new();
        let sk = MacroSkeleton::nas_bench_201(10);
        let space = SearchSpace::nas_bench_201();
        let heaviest = est.cell_in_skeleton(&all_op_cell(Operation::NorConv3x3), &sk);
        let lightest = est.cell_in_skeleton(&space.cell(0).unwrap(), &sk);
        assert!(
            heaviest.flops_m() > 100.0 && heaviest.flops_m() < 500.0,
            "{}",
            heaviest.flops_m()
        );
        assert!(lightest.flops_m() < 40.0, "{}", lightest.flops_m());
    }

    #[test]
    fn params_magnitude_is_plausible() {
        // NAS-Bench-201 models range roughly 0.07–1.5 M parameters.
        let est = FlopsEstimator::new();
        let sk = MacroSkeleton::nas_bench_201(10);
        let heaviest = est.cell_in_skeleton(&all_op_cell(Operation::NorConv3x3), &sk);
        assert!(
            heaviest.params_m() > 0.5 && heaviest.params_m() < 2.0,
            "{}",
            heaviest.params_m()
        );
    }

    #[test]
    fn monotone_in_added_convolutions() {
        let est = FlopsEstimator::new();
        let sk = MacroSkeleton::nas_bench_201(10);
        let space = SearchSpace::nas_bench_201();
        let mut prev = est.cell_in_skeleton(&space.cell(0).unwrap(), &sk).flops;
        // Gradually replace edges with conv3x3: FLOPs must never decrease.
        let mut cell = space.cell(0).unwrap();
        for edge in 0..6 {
            cell = cell
                .with_op(micronas_searchspace::EdgeId(edge), Operation::NorConv3x3)
                .unwrap();
            let f = est.cell_in_skeleton(&cell, &sk).flops;
            assert!(f > prev);
            prev = f;
        }
    }
}
