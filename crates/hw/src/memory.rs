use micronas_searchspace::{CellTopology, MacroSkeleton, OpClass, OpInstance};
use serde::{Deserialize, Serialize};

/// Memory footprint of a network on the target MCU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryReport {
    /// Peak activation working set in bytes (largest simultaneous
    /// input + output buffer across layers; the tensor-arena high-water mark).
    pub peak_activation_bytes: u64,
    /// Total weight storage in bytes (flash footprint).
    pub weight_bytes: u64,
}

impl MemoryReport {
    /// Peak activation memory in KiB.
    pub fn peak_activation_kib(&self) -> f64 {
        self.peak_activation_bytes as f64 / 1024.0
    }

    /// Weight storage in KiB.
    pub fn weight_kib(&self) -> f64 {
        self.weight_bytes as f64 / 1024.0
    }

    /// Whether the network fits the given SRAM / flash budgets (KiB).
    pub fn fits(&self, sram_kib: usize, flash_kib: usize) -> bool {
        self.peak_activation_bytes <= (sram_kib as u64) * 1024
            && self.weight_bytes <= (flash_kib as u64) * 1024
    }
}

/// Peak-memory estimator (the paper's stated future-work extension,
/// implemented here so the memory-guided search ablation can run).
///
/// The activation model assumes single-buffered execution: at any time the
/// active layer needs its input and output buffers resident in SRAM, which is
/// how TensorFlow Lite Micro's greedy arena planner behaves for chain-like
/// graphs. Weights live in flash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MemoryEstimator;

impl MemoryEstimator {
    /// Creates a new estimator.
    pub fn new() -> Self {
        Self
    }

    /// Working-set bytes of a single layer (input + output activations).
    pub fn layer_working_set(&self, op: &OpInstance) -> u64 {
        match op.class {
            OpClass::Zero => 0,
            _ => ((op.input_elements() + op.output_elements()) * 4) as u64,
        }
    }

    /// Weight bytes of a single layer.
    pub fn layer_weight_bytes(&self, op: &OpInstance) -> u64 {
        match op.class {
            OpClass::Conv => (op.c_in * op.c_out * op.kernel * op.kernel * 4) as u64,
            OpClass::Linear => (op.c_in * op.c_out * 4) as u64,
            _ => 0,
        }
    }

    /// Memory report for a flattened network.
    pub fn network(&self, ops: &[OpInstance]) -> MemoryReport {
        let mut peak = 0u64;
        let mut weights = 0u64;
        for op in ops {
            peak = peak.max(self.layer_working_set(op));
            weights += self.layer_weight_bytes(op);
        }
        MemoryReport {
            peak_activation_bytes: peak,
            weight_bytes: weights,
        }
    }

    /// Convenience wrapper: report for a cell stacked into a skeleton.
    pub fn cell_in_skeleton(&self, cell: &CellTopology, skeleton: &MacroSkeleton) -> MemoryReport {
        self.network(&skeleton.instantiate(cell))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use micronas_searchspace::{Operation, SearchSpace};

    #[test]
    fn peak_memory_dominated_by_early_high_resolution_layers() {
        let est = MemoryEstimator::new();
        let sk = MacroSkeleton::nas_bench_201(10);
        let cell = CellTopology::new([Operation::NorConv3x3; 6]);
        let ops = sk.instantiate(&cell);
        let report = est.network(&ops);
        // Stage 0 runs at 32x32x16: a conv edge there holds 2 * 16*32*32 floats.
        let stage0_conv = 2 * 16 * 32 * 32 * 4;
        assert_eq!(report.peak_activation_bytes, stage0_conv as u64);
    }

    #[test]
    fn weight_bytes_track_parameter_count() {
        let est = MemoryEstimator::new();
        let sk = MacroSkeleton::nas_bench_201(10);
        let c3 = est.cell_in_skeleton(&CellTopology::new([Operation::NorConv3x3; 6]), &sk);
        let c1 = est.cell_in_skeleton(&CellTopology::new([Operation::NorConv1x1; 6]), &sk);
        assert!(c3.weight_bytes > c1.weight_bytes);
        // 4 bytes per parameter.
        let flops = crate::FlopsEstimator::new()
            .cell_in_skeleton(&CellTopology::new([Operation::NorConv3x3; 6]), &sk);
        assert_eq!(c3.weight_bytes, flops.params * 4);
    }

    #[test]
    fn fits_respects_budgets() {
        let est = MemoryEstimator::new();
        let sk = MacroSkeleton::nas_bench_201(10);
        let space = SearchSpace::nas_bench_201();
        let report = est.cell_in_skeleton(&space.cell(100).unwrap(), &sk);
        assert!(report.fits(10_000, 100_000));
        assert!(!report.fits(0, 100_000));
        assert!(!report.fits(10_000, 0));
        assert!(report.peak_activation_kib() > 0.0);
        assert!(report.weight_kib() > 0.0);
    }

    #[test]
    fn none_edges_consume_no_activation_memory() {
        let est = MemoryEstimator::new();
        let inst = OpInstance {
            role: micronas_searchspace::LayerRole::Cell {
                stage: 0,
                cell: 0,
                edge: 0,
            },
            class: OpClass::Zero,
            cell_op: Some(Operation::None),
            kernel: 1,
            stride: 1,
            c_in: 16,
            c_out: 16,
            h_in: 32,
            w_in: 32,
        };
        assert_eq!(est.layer_working_set(&inst), 0);
        assert_eq!(est.layer_weight_bytes(&inst), 0);
    }

    #[test]
    fn skip_only_network_fits_f746_sram() {
        // 320 KiB SRAM on the F746: the skip-only model easily fits.
        let est = MemoryEstimator::new();
        let sk = MacroSkeleton::nas_bench_201(10);
        let report = est.cell_in_skeleton(&CellTopology::new([Operation::SkipConnect; 6]), &sk);
        assert!(report.fits(320, 1024));
    }
}
