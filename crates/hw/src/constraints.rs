use crate::HardwareIndicators;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One violated hardware budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ConstraintViolation {
    /// Estimated latency exceeds the budget (milliseconds: actual, limit).
    Latency(f64, f64),
    /// FLOPs exceed the budget (millions: actual, limit).
    Flops(f64, f64),
    /// Parameters exceed the budget (millions: actual, limit).
    Params(f64, f64),
    /// Peak activation memory exceeds SRAM (KiB: actual, limit).
    Sram(f64, f64),
    /// Weight storage exceeds flash (KiB: actual, limit).
    Flash(f64, f64),
}

impl fmt::Display for ConstraintViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstraintViolation::Latency(a, l) => write!(f, "latency {a:.2} ms exceeds {l:.2} ms"),
            ConstraintViolation::Flops(a, l) => write!(f, "{a:.1} MFLOPs exceeds {l:.1} MFLOPs"),
            ConstraintViolation::Params(a, l) => write!(f, "{a:.3} M params exceeds {l:.3} M"),
            ConstraintViolation::Sram(a, l) => write!(f, "peak SRAM {a:.1} KiB exceeds {l:.1} KiB"),
            ConstraintViolation::Flash(a, l) => write!(f, "flash {a:.1} KiB exceeds {l:.1} KiB"),
        }
    }
}

/// Deployment budgets for the hardware-aware search.
///
/// Unset fields (`None`) are unconstrained. [`HardwareConstraints::for_device`]
/// derives memory budgets from an MCU spec while leaving latency free.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct HardwareConstraints {
    /// Maximum end-to-end latency in milliseconds.
    pub max_latency_ms: Option<f64>,
    /// Maximum FLOPs in millions.
    pub max_flops_m: Option<f64>,
    /// Maximum parameter count in millions.
    pub max_params_m: Option<f64>,
    /// Maximum peak activation memory in KiB.
    pub max_sram_kib: Option<f64>,
    /// Maximum weight storage in KiB.
    pub max_flash_kib: Option<f64>,
}

impl HardwareConstraints {
    /// No constraints at all (the paper's "baseline" search configuration).
    pub fn unconstrained() -> Self {
        Self::default()
    }

    /// Memory constraints matching a device's SRAM and flash capacity.
    pub fn for_device(spec: &micronas_mcu::McuSpec) -> Self {
        Self {
            max_latency_ms: None,
            max_flops_m: None,
            max_params_m: None,
            max_sram_kib: Some(spec.sram_kib as f64),
            max_flash_kib: Some(spec.flash_kib as f64),
        }
    }

    /// Adds a latency budget, keeping other fields.
    pub fn with_latency_ms(mut self, ms: f64) -> Self {
        self.max_latency_ms = Some(ms);
        self
    }

    /// Adds a FLOPs budget (millions), keeping other fields.
    pub fn with_flops_m(mut self, flops_m: f64) -> Self {
        self.max_flops_m = Some(flops_m);
        self
    }

    /// Adds a parameter budget (millions), keeping other fields.
    pub fn with_params_m(mut self, params_m: f64) -> Self {
        self.max_params_m = Some(params_m);
        self
    }

    /// Checks an indicator record against the budgets.
    pub fn violations(&self, ind: &HardwareIndicators) -> Vec<ConstraintViolation> {
        let mut out = Vec::new();
        if let Some(limit) = self.max_latency_ms {
            if ind.latency_ms > limit {
                out.push(ConstraintViolation::Latency(ind.latency_ms, limit));
            }
        }
        if let Some(limit) = self.max_flops_m {
            if ind.flops_m > limit {
                out.push(ConstraintViolation::Flops(ind.flops_m, limit));
            }
        }
        if let Some(limit) = self.max_params_m {
            if ind.params_m > limit {
                out.push(ConstraintViolation::Params(ind.params_m, limit));
            }
        }
        if let Some(limit) = self.max_sram_kib {
            if ind.peak_sram_kib > limit {
                out.push(ConstraintViolation::Sram(ind.peak_sram_kib, limit));
            }
        }
        if let Some(limit) = self.max_flash_kib {
            if ind.flash_kib > limit {
                out.push(ConstraintViolation::Flash(ind.flash_kib, limit));
            }
        }
        out
    }

    /// Whether the indicator record satisfies every budget.
    pub fn satisfied_by(&self, ind: &HardwareIndicators) -> bool {
        self.violations(ind).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_indicators() -> HardwareIndicators {
        HardwareIndicators {
            flops_m: 100.0,
            macs_m: 50.0,
            params_m: 0.8,
            latency_ms: 250.0,
            peak_sram_kib: 128.0,
            flash_kib: 800.0,
        }
    }

    #[test]
    fn unconstrained_accepts_everything() {
        let c = HardwareConstraints::unconstrained();
        assert!(c.satisfied_by(&sample_indicators()));
        assert!(c.violations(&sample_indicators()).is_empty());
    }

    #[test]
    fn each_budget_is_enforced() {
        let ind = sample_indicators();
        assert!(!HardwareConstraints::unconstrained()
            .with_latency_ms(200.0)
            .satisfied_by(&ind));
        assert!(HardwareConstraints::unconstrained()
            .with_latency_ms(300.0)
            .satisfied_by(&ind));
        assert!(!HardwareConstraints::unconstrained()
            .with_flops_m(50.0)
            .satisfied_by(&ind));
        assert!(!HardwareConstraints::unconstrained()
            .with_params_m(0.5)
            .satisfied_by(&ind));
        let sram = HardwareConstraints {
            max_sram_kib: Some(64.0),
            ..Default::default()
        };
        assert!(!sram.satisfied_by(&ind));
        let flash = HardwareConstraints {
            max_flash_kib: Some(512.0),
            ..Default::default()
        };
        assert!(!flash.satisfied_by(&ind));
    }

    #[test]
    fn violations_carry_values_and_display() {
        let ind = sample_indicators();
        let c = HardwareConstraints::unconstrained()
            .with_latency_ms(100.0)
            .with_flops_m(10.0);
        let v = c.violations(&ind);
        assert_eq!(v.len(), 2);
        let text: Vec<String> = v.iter().map(|x| x.to_string()).collect();
        assert!(text.iter().any(|t| t.contains("ms")));
        assert!(text.iter().any(|t| t.contains("MFLOPs")));
    }

    #[test]
    fn device_constraints_use_spec_memory() {
        let spec = micronas_mcu::McuSpec::stm32f746zg();
        let c = HardwareConstraints::for_device(&spec);
        assert_eq!(c.max_sram_kib, Some(320.0));
        assert_eq!(c.max_flash_kib, Some(1024.0));
        assert!(c.max_latency_ms.is_none());
    }
}
