use micronas_mcu::{McuSimulator, McuSpec};
use micronas_searchspace::{CellTopology, MacroSkeleton, OpClass, OpInstance};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Key identifying one profiled operation shape in the latency lookup table.
///
/// Two layer instances with the same class, kernel, stride, channel counts
/// and input resolution have identical latency, so the table is keyed on
/// exactly those fields — this is the "reference lookup table" of §II-B.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LutKey {
    /// Operation class.
    pub class: OpClass,
    /// Kernel size.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Input channels.
    pub c_in: usize,
    /// Output channels.
    pub c_out: usize,
    /// Input resolution (height; width is assumed equal).
    pub h_in: usize,
}

impl LutKey {
    /// Builds the key for a concrete layer instance.
    pub fn of(op: &OpInstance) -> Self {
        Self {
            class: op.class,
            kernel: op.kernel,
            stride: op.stride,
            c_in: op.c_in,
            c_out: op.c_out,
            h_in: op.h_in,
        }
    }
}

/// Per-network latency estimate with its per-operation breakdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyBreakdown {
    /// Estimated end-to-end latency in milliseconds.
    pub total_ms: f64,
    /// Constant per-inference overhead included in `total_ms`.
    pub overhead_ms: f64,
    /// Milliseconds attributed to each operation class.
    pub per_class_ms: HashMap<String, f64>,
    /// Number of distinct lookup-table entries used.
    pub lut_entries_used: usize,
}

/// The paper's latency estimator: per-operation lookup table + constant
/// overhead.
///
/// Each distinct operation shape is profiled once against the
/// cycle-approximate MCU simulator (the stand-in for the physical board) and
/// cached; estimating a network is then a table lookup per layer plus the
/// profiled constant inference overhead. This reproduces both the accuracy
/// *and* the speed characteristics of the paper's estimator — after warm-up
/// no simulation is needed at all.
#[derive(Debug)]
pub struct LatencyEstimator {
    simulator: McuSimulator,
    lut: Mutex<HashMap<LutKey, f64>>,
    overhead_ms: f64,
}

impl LatencyEstimator {
    /// Creates an estimator for the given target device.
    pub fn new(spec: McuSpec) -> Self {
        let simulator = McuSimulator::new(spec);
        let overhead_ms = simulator
            .spec()
            .cycles_to_ms(simulator.spec().inference_overhead_cycles);
        Self {
            simulator,
            lut: Mutex::new(HashMap::new()),
            overhead_ms,
        }
    }

    /// The target device.
    pub fn spec(&self) -> &McuSpec {
        self.simulator.spec()
    }

    /// The constant per-inference overhead in milliseconds.
    pub fn overhead_ms(&self) -> f64 {
        self.overhead_ms
    }

    /// Number of operation shapes profiled so far.
    pub fn lut_len(&self) -> usize {
        self.lut.lock().len()
    }

    /// Latency of a single operation shape in milliseconds, profiling it on
    /// first use and reading the lookup table afterwards.
    pub fn op_latency_ms(&self, op: &OpInstance) -> f64 {
        let key = LutKey::of(op);
        if let Some(&ms) = self.lut.lock().get(&key) {
            return ms;
        }
        let timing = self.simulator.profile_op(op);
        let ms = timing.latency_ms(self.simulator.spec());
        self.lut.lock().insert(key, ms);
        ms
    }

    /// Estimates the end-to-end latency of a flattened network.
    pub fn estimate(&self, ops: &[OpInstance]) -> LatencyBreakdown {
        let mut total = self.overhead_ms;
        let mut per_class: HashMap<String, f64> = HashMap::new();
        for op in ops {
            let ms = self.op_latency_ms(op);
            total += ms;
            *per_class.entry(format!("{:?}", op.class)).or_insert(0.0) += ms;
        }
        LatencyBreakdown {
            total_ms: total,
            overhead_ms: self.overhead_ms,
            per_class_ms: per_class,
            lut_entries_used: self.lut_len(),
        }
    }

    /// Convenience wrapper: latency of a cell stacked into a skeleton.
    pub fn cell_latency_ms(&self, cell: &CellTopology, skeleton: &MacroSkeleton) -> f64 {
        self.estimate(&skeleton.instantiate(cell)).total_ms
    }

    /// Validates the lookup-table estimate against a direct end-to-end
    /// simulation of the same network, returning the relative error.
    ///
    /// The paper reports its estimator is "accurate, reliable and simple";
    /// here the two paths share the per-op cycle model, so the error reflects
    /// only composition effects and should be small. Tests pin it below 1%.
    pub fn validate_against_simulator(&self, ops: &[OpInstance]) -> f64 {
        let estimate = self.estimate(ops).total_ms;
        let simulated = self.simulator.simulate(ops).total_latency_ms();
        (estimate - simulated).abs() / simulated.max(1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use micronas_searchspace::{Operation, SearchSpace};

    fn setup() -> (SearchSpace, MacroSkeleton, LatencyEstimator) {
        (
            SearchSpace::nas_bench_201(),
            MacroSkeleton::nas_bench_201(10),
            LatencyEstimator::new(McuSpec::stm32f746zg()),
        )
    }

    #[test]
    fn lut_is_populated_lazily_and_reused() {
        let (space, sk, est) = setup();
        assert_eq!(est.lut_len(), 0);
        let ops = sk.instantiate(&space.cell(3_000).unwrap());
        let first = est.estimate(&ops);
        let populated = est.lut_len();
        assert!(populated > 0);
        // Re-estimating the same network must not grow the table.
        let second = est.estimate(&ops);
        assert_eq!(est.lut_len(), populated);
        assert!((first.total_ms - second.total_ms).abs() < 1e-12);
    }

    #[test]
    fn estimate_matches_direct_simulation() {
        let (space, sk, est) = setup();
        for idx in [0usize, 1_000, 7_777, 15_624] {
            let ops = sk.instantiate(&space.cell(idx).unwrap());
            let err = est.validate_against_simulator(&ops);
            assert!(err < 0.01, "arch {idx}: relative error {err}");
        }
    }

    #[test]
    fn heavier_cells_have_higher_latency() {
        let (_, sk, est) = setup();
        let conv3 = CellTopology::new([Operation::NorConv3x3; 6]);
        let conv1 = CellTopology::new([Operation::NorConv1x1; 6]);
        let skip = CellTopology::new([Operation::SkipConnect; 6]);
        let l3 = est.cell_latency_ms(&conv3, &sk);
        let l1 = est.cell_latency_ms(&conv1, &sk);
        let ls = est.cell_latency_ms(&skip, &sk);
        assert!(l3 > l1 && l1 > ls);
        // The paper's headline: hardware-aware choices span roughly a 1.5–3.5x
        // latency band across the space at similar accuracy.
        assert!(l3 / l1 > 1.5);
    }

    #[test]
    fn overhead_is_constant_and_included() {
        let (space, sk, est) = setup();
        let ops = sk.instantiate(&space.cell(0).unwrap());
        let breakdown = est.estimate(&ops);
        assert!(breakdown.overhead_ms > 0.0);
        assert!(breakdown.total_ms > breakdown.overhead_ms);
        assert_eq!(breakdown.overhead_ms, est.overhead_ms());
    }

    #[test]
    fn per_class_breakdown_sums_to_total() {
        let (space, sk, est) = setup();
        let ops = sk.instantiate(&space.cell(8_000).unwrap());
        let breakdown = est.estimate(&ops);
        let class_sum: f64 = breakdown.per_class_ms.values().sum();
        assert!((breakdown.total_ms - breakdown.overhead_ms - class_sum).abs() < 1e-9);
    }

    #[test]
    fn lut_key_distinguishes_geometry() {
        let (space, sk, _) = setup();
        let ops = sk.instantiate(&space.cell(12_345).unwrap());
        let keys: std::collections::HashSet<LutKey> = ops.iter().map(LutKey::of).collect();
        // Cells at three widths/resolutions → at least three keys per cell op class.
        assert!(keys.len() >= 6);
        assert!(keys.len() < ops.len(), "repeated cells must share keys");
    }

    #[test]
    fn different_devices_produce_different_estimates() {
        let (space, sk, _) = setup();
        let cell = space.cell(2_222).unwrap();
        let f7 = LatencyEstimator::new(McuSpec::stm32f746zg());
        let h7 = LatencyEstimator::new(McuSpec::stm32h743());
        assert!(f7.cell_latency_ms(&cell, &sk) > h7.cell_latency_ms(&cell, &sk));
    }
}
