//! Hardware indicators for MCU-aware architecture search.
//!
//! MicroNAS steers its search with two hardware proxies — an analytic FLOPs
//! count and an estimated on-device latency built from a per-operation lookup
//! table — and the paper names peak-memory modelling as future work. This
//! crate implements all three:
//!
//! * [`FlopsEstimator`] — exact multiply–accumulate / FLOP counting per layer
//!   and per network, plus parameter counting;
//! * [`LatencyEstimator`] — the paper's estimator structure: profile each
//!   operation shape once (here against the cycle-approximate
//!   [`micronas_mcu::McuSimulator`] standing in for the physical board),
//!   cache the result in a lookup table, and sum table entries plus a
//!   constant per-inference overhead;
//! * [`MemoryEstimator`] — peak activation SRAM and flash weight footprint
//!   (the paper's stated future-work extension);
//! * [`HardwareConstraints`] / [`HardwareIndicators`] — the budget check used
//!   by the hardware-aware pruning search, and the combined per-architecture
//!   indicator record;
//! * [`HardwareEvaluator`] — one-stop evaluation of a cell against a macro
//!   skeleton and a target device.
//!
//! # Example
//!
//! ```
//! use micronas_hw::HardwareEvaluator;
//! use micronas_mcu::McuSpec;
//! use micronas_searchspace::{MacroSkeleton, SearchSpace};
//!
//! let space = SearchSpace::nas_bench_201();
//! let evaluator = HardwareEvaluator::new(MacroSkeleton::nas_bench_201(10), McuSpec::stm32f746zg());
//! let indicators = evaluator.evaluate(space.cell(4_000).unwrap());
//! assert!(indicators.flops_m > 0.0);
//! assert!(indicators.latency_ms > 0.0);
//! ```

#![warn(missing_docs)]

mod constraints;
mod evaluator;
mod flops;
mod latency;
mod memory;

pub use constraints::{ConstraintViolation, HardwareConstraints};
pub use evaluator::{HardwareEvaluator, HardwareIndicators};
pub use flops::{FlopsEstimator, FlopsReport};
pub use latency::{LatencyBreakdown, LatencyEstimator, LutKey};
pub use memory::{MemoryEstimator, MemoryReport};
