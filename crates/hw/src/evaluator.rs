use crate::{FlopsEstimator, LatencyEstimator, MemoryEstimator};
use micronas_mcu::McuSpec;
use micronas_searchspace::{CellTopology, MacroSkeleton};
use serde::{Deserialize, Serialize};

/// The combined hardware indicator record for one architecture, in the units
/// used by the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HardwareIndicators {
    /// FLOPs in millions.
    pub flops_m: f64,
    /// MACs in millions.
    pub macs_m: f64,
    /// Parameters in millions.
    pub params_m: f64,
    /// Estimated MCU inference latency in milliseconds.
    pub latency_ms: f64,
    /// Peak activation memory in KiB.
    pub peak_sram_kib: f64,
    /// Weight (flash) footprint in KiB.
    pub flash_kib: f64,
}

/// One-stop hardware evaluation of a candidate cell: FLOPs, parameters,
/// estimated latency and memory footprint against a fixed macro skeleton and
/// target device.
///
/// The evaluator owns a [`LatencyEstimator`] so the per-operation lookup
/// table is shared across every architecture evaluated during a search,
/// exactly as in the paper's workflow (profile once, reuse for all samples).
#[derive(Debug)]
pub struct HardwareEvaluator {
    skeleton: MacroSkeleton,
    flops: FlopsEstimator,
    latency: LatencyEstimator,
    memory: MemoryEstimator,
}

impl HardwareEvaluator {
    /// Creates an evaluator for a skeleton and target device.
    pub fn new(skeleton: MacroSkeleton, spec: McuSpec) -> Self {
        Self {
            skeleton,
            flops: FlopsEstimator::new(),
            latency: LatencyEstimator::new(spec),
            memory: MemoryEstimator::new(),
        }
    }

    /// The macro skeleton used for instantiation.
    pub fn skeleton(&self) -> &MacroSkeleton {
        &self.skeleton
    }

    /// The target device.
    pub fn spec(&self) -> &McuSpec {
        self.latency.spec()
    }

    /// The underlying latency estimator (exposes the lookup table).
    pub fn latency_estimator(&self) -> &LatencyEstimator {
        &self.latency
    }

    /// Evaluates every hardware indicator for one cell.
    pub fn evaluate(&self, cell: CellTopology) -> HardwareIndicators {
        let ops = self.skeleton.instantiate(&cell);
        let flops = self.flops.network(&ops);
        let latency = self.latency.estimate(&ops);
        let memory = self.memory.network(&ops);
        HardwareIndicators {
            flops_m: flops.flops_m(),
            macs_m: flops.macs as f64 / 1e6,
            params_m: flops.params_m(),
            latency_ms: latency.total_ms,
            peak_sram_kib: memory.peak_activation_kib(),
            flash_kib: memory.weight_kib(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use micronas_searchspace::{Operation, SearchSpace};

    #[test]
    fn evaluation_is_consistent_across_indicators() {
        let space = SearchSpace::nas_bench_201();
        let evaluator =
            HardwareEvaluator::new(MacroSkeleton::nas_bench_201(10), McuSpec::stm32f746zg());
        let light = evaluator.evaluate(space.cell(0).unwrap());
        let heavy = evaluator.evaluate(CellTopology::new([Operation::NorConv3x3; 6]));
        assert!(heavy.flops_m > light.flops_m);
        assert!(heavy.params_m > light.params_m);
        assert!(heavy.latency_ms > light.latency_ms);
        assert!(heavy.flash_kib > light.flash_kib);
        assert!(heavy.peak_sram_kib >= light.peak_sram_kib);
    }

    #[test]
    fn lookup_table_is_shared_across_evaluations() {
        let space = SearchSpace::nas_bench_201();
        let evaluator =
            HardwareEvaluator::new(MacroSkeleton::nas_bench_201(10), McuSpec::stm32f746zg());
        let _ = evaluator.evaluate(space.cell(5).unwrap());
        let after_first = evaluator.latency_estimator().lut_len();
        let _ = evaluator.evaluate(space.cell(6).unwrap());
        let _ = evaluator.evaluate(space.cell(7).unwrap());
        let after_three = evaluator.latency_estimator().lut_len();
        // The table grows sub-linearly: most op shapes repeat across cells.
        assert!(after_three < after_first * 3);
    }

    #[test]
    fn table1_band_check_for_speedup() {
        // The paper's hardware-aware pick is ~3.2x faster than TE-NAS's pick.
        // The latency ratio between a light-but-connected cell and an
        // all-conv3x3 cell must comfortably cover that band.
        let evaluator =
            HardwareEvaluator::new(MacroSkeleton::nas_bench_201(10), McuSpec::stm32f746zg());
        let mut light_ops = [Operation::SkipConnect; 6];
        light_ops[0] = Operation::NorConv1x1;
        light_ops[5] = Operation::NorConv3x3;
        let light = evaluator.evaluate(CellTopology::new(light_ops));
        let heavy = evaluator.evaluate(CellTopology::new([Operation::NorConv3x3; 6]));
        let speedup = heavy.latency_ms / light.latency_ms;
        assert!(speedup > 2.0, "speedup band too narrow: {speedup}");
    }
}
