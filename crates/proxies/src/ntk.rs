//! Neural tangent kernel spectrum proxy (trainability indicator).

use crate::{ProxyError, Result};
use micronas_datasets::{DatasetKind, SyntheticDataset};
use micronas_graph::Compiler;
use micronas_nn::{CellNetwork, CellNetworkPack, PerSampleGradients, ProxyNetworkConfig};
use micronas_searchspace::CellTopology;
use micronas_tensor::{
    paper_default_backend, sym_eigenvalues_with, EigenOptions, EigenReport, KernelBackend, Shape,
    Tensor, Workspace,
};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Configuration of the NTK condition-number proxy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NtkConfig {
    /// Mini-batch size used to form the Gram matrix. The paper studies 4–128
    /// (Fig. 2b) and adopts 32.
    pub batch_size: usize,
    /// Number of independent (init, batch) repetitions averaged together.
    pub repeats: usize,
    /// Geometry of the randomly initialised proxy network.
    pub network: ProxyNetworkConfig,
    /// Largest condition index `K_i` to report (Fig. 2a sweeps i = 1..=16).
    pub max_condition_index: usize,
}

impl NtkConfig {
    /// The configuration used by the paper's adopted setting: batch 32.
    pub fn paper_default() -> Self {
        Self {
            batch_size: 32,
            repeats: 1,
            network: ProxyNetworkConfig::proxy_default(10),
            max_condition_index: 16,
        }
    }

    /// A fast configuration for unit tests and quick sweeps.
    ///
    /// Batch 12 on the [`ProxyNetworkConfig::small`] geometry is the smallest
    /// setting at which the condition number still ranks architectures the
    /// way the paper-scale networks do.
    pub fn fast() -> Self {
        Self {
            batch_size: 12,
            repeats: 1,
            network: ProxyNetworkConfig::small(10),
            max_condition_index: 8,
        }
    }

    /// Returns a copy with a different batch size (Fig. 2b sweep).
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Returns a copy with a different repeat count.
    pub fn with_repeats(mut self, repeats: usize) -> Self {
        self.repeats = repeats;
        self
    }

    fn validate(&self) -> Result<()> {
        if self.batch_size < 2 {
            return Err(ProxyError::InvalidConfig(
                "NTK batch size must be at least 2".into(),
            ));
        }
        if self.repeats == 0 {
            return Err(ProxyError::InvalidConfig(
                "NTK repeats must be at least 1".into(),
            ));
        }
        if self.max_condition_index == 0 {
            return Err(ProxyError::InvalidConfig(
                "max condition index must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

impl Default for NtkConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Result of one NTK evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NtkReport {
    /// The classic condition number `K_1 = λ_max / λ_min`, averaged over repeats.
    pub condition_number: f64,
    /// Generalised condition indices `K_i = λ_max / λ_i` for `i = 1..=max_condition_index`.
    pub condition_indices: Vec<f64>,
    /// Eigenvalues of the centred Gram matrix from the first repeat,
    /// ascending, with the structural zero mode of the centring removed
    /// (so the list has `batch_size - 1` entries).
    pub eigenvalues: Vec<f64>,
    /// Batch size used.
    pub batch_size: usize,
    /// Number of repeats averaged.
    pub repeats: usize,
}

impl NtkReport {
    /// The trainability *score* used inside search objectives: the negated
    /// log condition number, so that larger is better.
    pub fn trainability_score(&self) -> f64 {
        -(self.condition_number.max(1.0)).ln()
    }
}

/// Which per-sample gradient formulation the NTK evaluator runs.
///
/// Both produce the same per-sample gradients (property-tested bit-for-bit
/// under pinned convolution engines); they differ only in how the work is
/// scheduled, and the two Gram builds differ at reduction-order (~1e-15
/// relative) level. This knob exists for the `ntk_engine` benchmark and for
/// regression hunting — production code should leave the default
/// [`GradientPath::Batched`] in place. In particular, results produced
/// under [`GradientPath::Looped`] must **never** be written into a shared
/// [`micronas-store`] evaluation store under the *built-in* zero-cost keys:
/// those keys do not encode the formulation, and the store's
/// bitwise-identity guarantee assumes every writer runs the default path.
/// (The store-writing search contexts always construct default evaluators,
/// so this concerns code that inserts records by hand. A looped evaluator
/// registered as a *plugin* via `NtkProxy::from_evaluator` is safe: the
/// proxy fingerprint folds a non-default gradient path, so its records can
/// never alias the batched ones.)
///
/// [`micronas-store`]: https://docs.rs/micronas-store
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GradientPath {
    /// One forward pass and one backward sweep over the whole batch; every
    /// conv edge emits all per-sample weight gradients from a shared im2col
    /// into a contiguous `[n, P]` matrix, and the Gram matrix is one
    /// `G = J·Jᵀ` GEMM.
    #[default]
    Batched,
    /// The pre-batching formulation: one full backward pass per sample and
    /// n² scalar dot products for the Gram matrix.
    Looped,
}

/// Evaluates the NTK condition number of candidate cells.
///
/// For each repeat the evaluator samples a fresh mini-batch from the
/// synthetic dataset, builds a freshly initialised [`CellNetwork`], computes
/// per-sample parameter gradients `g_i = ∇θ f(x_i)`, centres them
/// (`ĝ_i = g_i - mean(g)`) and forms the normalised Gram matrix
/// `G[i][j] = ĝ_i · ĝ_j / (‖ĝ_i‖ ‖ĝ_j‖)`, whose spectrum — with the
/// structural zero mode of the centring removed — yields the condition
/// indices. Centring and normalising compensates for the missing batch
/// normalisation in the proxy networks: the raw per-sample gradients share a
/// dominant common component whose magnitude spread would otherwise drown the
/// trainability signal the paper's indicator measures.
#[derive(Debug, Clone)]
pub struct NtkEvaluator {
    config: NtkConfig,
    gradient_path: GradientPath,
    backend: Arc<dyn KernelBackend>,
    compiler: Option<Arc<dyn Compiler>>,
    packed_backward: bool,
}

impl NtkEvaluator {
    /// Creates an evaluator with the given configuration on the
    /// paper-default execution backend.
    pub fn new(config: NtkConfig) -> Self {
        Self {
            config,
            gradient_path: GradientPath::default(),
            backend: paper_default_backend(),
            compiler: None,
            packed_backward: true,
        }
    }

    /// Enables or disables the packed backward sweep inside
    /// [`NtkEvaluator::evaluate_pack_in`] (enabled by default). Both
    /// settings produce bitwise-identical reports — the toggle only changes
    /// whether per-sample gradients are swept per member or packed — so
    /// this knob, like the pack width, is *not* part of any fingerprint; it
    /// exists so benchmarks can measure forward-only packing as a baseline.
    #[must_use]
    pub fn with_packed_backward(mut self, packed_backward: bool) -> Self {
        self.packed_backward = packed_backward;
        self
    }

    /// Returns a copy pinned to a specific per-sample gradient formulation
    /// (benchmarks compare [`GradientPath::Batched`] against
    /// [`GradientPath::Looped`]).
    pub fn with_gradient_path(mut self, path: GradientPath) -> Self {
        self.gradient_path = path;
        self
    }

    /// Returns a copy running on an explicit execution backend. The backend
    /// must implement gradient kernels
    /// ([`KernelBackend::supports_gradients`]); inference-only backends make
    /// every evaluation fail.
    pub fn with_backend(mut self, backend: Arc<dyn KernelBackend>) -> Self {
        self.backend = backend;
        self
    }

    /// The execution backend in force.
    pub fn backend(&self) -> &Arc<dyn KernelBackend> {
        &self.backend
    }

    /// Returns a copy routing the batched gradient sweep through a compiled
    /// kernel-graph plan ([`micronas_nn::CellNetwork::with_compiler`]). The
    /// looped reference path ignores the compiler (it exists precisely to
    /// stay the eager oracle).
    #[must_use]
    pub fn with_compiler(mut self, compiler: Arc<dyn Compiler>) -> Self {
        self.compiler = Some(compiler);
        self
    }

    /// The graph compiler in force, if any (`None` means eager execution).
    pub fn compiler(&self) -> Option<&Arc<dyn Compiler>> {
        self.compiler.as_ref()
    }

    /// The gradient formulation in force.
    pub fn gradient_path(&self) -> GradientPath {
        self.gradient_path
    }

    /// The evaluator's configuration.
    pub fn config(&self) -> &NtkConfig {
        &self.config
    }

    /// Evaluates the NTK spectrum of `cell` on a probe batch drawn from
    /// `dataset`, using `seed` for both the batch and the initialisation.
    ///
    /// # Errors
    ///
    /// Returns a [`ProxyError`] if the configuration is invalid or any
    /// underlying numerical step fails.
    pub fn evaluate(
        &self,
        cell: CellTopology,
        dataset: DatasetKind,
        seed: u64,
    ) -> Result<NtkReport> {
        // The thread-local arena keeps batch-level buffers hot across
        // candidates (fresh per-call allocation of batch-32 tensors costs
        // mmap round-trips) and shrinks back to the evaluation's watermark
        // on the way out, under the backend's retention policy.
        crate::scratch::with_thread_workspace_capped(
            self.backend.arena_retention_cap_bytes(),
            |workspace| self.evaluate_in(cell, dataset, seed, workspace),
        )
    }

    /// [`NtkEvaluator::evaluate`] threading an explicit scratch arena
    /// (identical values; this is the [`crate::Proxy`] entry point).
    ///
    /// # Errors
    ///
    /// Returns a [`ProxyError`] if the configuration is invalid or any
    /// underlying numerical step fails.
    pub fn evaluate_in(
        &self,
        cell: CellTopology,
        dataset: DatasetKind,
        seed: u64,
        workspace: &mut Workspace,
    ) -> Result<NtkReport> {
        self.config.validate()?;
        let mut net_config = self.config.network;
        net_config.num_classes = dataset.num_classes().min(16);
        self.evaluate_with_workspace(cell, dataset, seed, net_config, workspace)
    }

    fn evaluate_with_workspace(
        &self,
        cell: CellTopology,
        dataset: DatasetKind,
        seed: u64,
        net_config: ProxyNetworkConfig,
        workspace: &mut Workspace,
    ) -> Result<NtkReport> {
        let _span = micronas_telemetry::span!("proxy.ntk");
        let mut acc = NtkAccumulator::new(&self.config);

        for repeat in 0..self.config.repeats {
            let repeat_seed = seed.wrapping_add(repeat as u64).wrapping_mul(0x9E37_79B9);
            let data = SyntheticDataset::new(dataset, repeat_seed);
            let batch = data.sample_batch_with_stream(
                self.config.batch_size,
                net_config.input_resolution,
                repeat as u64,
            )?;
            let mut net =
                CellNetwork::with_backend(&cell, &net_config, repeat_seed, self.backend.clone())?;
            if let Some(compiler) = &self.compiler {
                net = net.with_compiler(Arc::clone(compiler));
            }
            let gram = self.gram_matrix(&net, &batch.images, workspace)?;
            acc.absorb(repeat, &gram)?;
        }

        Ok(acc.finish(&self.config))
    }

    /// Cross-candidate mega-batched evaluation: every cell in the pack is
    /// evaluated against the **same** probe batch at the **same**
    /// `(seed, repeat)` stream — exactly what per-cell [`NtkEvaluator::evaluate_in`]
    /// calls would use — so the forward passes run through one
    /// [`CellNetworkPack`] whose same-geometry conv layers merge into packed
    /// GEMM dispatches, and the per-sample gradient sweep runs as one packed
    /// backward over the pack (same bucketing, packed weight/input-gradient
    /// kernels, one im2col lowering of the shared probe batch for every
    /// member's stem backward). Only the eigensolves stay per-candidate.
    /// Element `i` of the result is bitwise identical to solo evaluation of
    /// `cells[i]`.
    ///
    /// A non-default [`GradientPath`] has no packed formulation; the pack
    /// falls back to per-candidate solo evaluation in that case (values are
    /// the same either way — only scheduling differs).
    ///
    /// # Errors
    ///
    /// Returns a [`ProxyError`] if the configuration is invalid or any
    /// underlying numerical step fails.
    pub fn evaluate_pack_in(
        &self,
        cells: &[CellTopology],
        dataset: DatasetKind,
        seed: u64,
        workspace: &mut Workspace,
    ) -> Result<Vec<NtkReport>> {
        self.config.validate()?;
        if cells.is_empty() {
            return Ok(Vec::new());
        }
        if self.gradient_path != GradientPath::Batched {
            return cells
                .iter()
                .map(|&cell| self.evaluate_in(cell, dataset, seed, workspace))
                .collect();
        }
        let _span = micronas_telemetry::span!("proxy.ntk.pack");
        let mut net_config = self.config.network;
        net_config.num_classes = dataset.num_classes().min(16);

        let mut accs: Vec<NtkAccumulator> = cells
            .iter()
            .map(|_| NtkAccumulator::new(&self.config))
            .collect();
        for repeat in 0..self.config.repeats {
            let repeat_seed = seed.wrapping_add(repeat as u64).wrapping_mul(0x9E37_79B9);
            let data = SyntheticDataset::new(dataset, repeat_seed);
            // The probe batch does not depend on the cell: one sample serves
            // the whole pack, bitwise what each solo call would draw.
            let batch = data.sample_batch_with_stream(
                self.config.batch_size,
                net_config.input_resolution,
                repeat as u64,
            )?;
            let mut pack = CellNetworkPack::with_backend(
                cells,
                &net_config,
                repeat_seed,
                self.backend.clone(),
            )?;
            if let Some(compiler) = &self.compiler {
                pack = pack.with_compiler(Arc::clone(compiler));
            }
            pack = pack.with_packed_backward(self.packed_backward);
            let n = batch.images.shape().dims()[0];
            let matrices = pack.per_sample_gradient_matrices_with(&batch.images, workspace)?;
            for (acc, j) in accs.iter_mut().zip(matrices) {
                let gram = {
                    let _gram_span = micronas_telemetry::span!("proxy.ntk.gram");
                    let raw = self.raw_gram_from_matrix(n, &j);
                    workspace.recycle(j.into_values());
                    finish_gram(n, &raw)
                };
                acc.absorb(repeat, &gram)?;
            }
        }
        Ok(accs
            .into_iter()
            .map(|acc| acc.finish(&self.config))
            .collect())
    }

    /// Builds the NTK Gram matrix of a batch from **norm-normalised**
    /// per-sample gradients.
    ///
    /// The proxy networks omit batch normalisation, so at random
    /// initialisation the per-sample gradient *norms* spread over several
    /// orders of magnitude with depth; that norm spread dominates the raw
    /// Gram spectrum and inverts the trainability ranking the paper's
    /// indicator relies on. Normalising each gradient to unit length keeps
    /// the angular structure — how sample-specific the tangent features are —
    /// which is the quantity the condition number is meant to capture.
    fn gram_matrix(
        &self,
        net: &CellNetwork,
        images: &Tensor,
        workspace: &mut Workspace,
    ) -> Result<Tensor> {
        let _span = micronas_telemetry::span!("proxy.ntk.gram");
        let n = images.shape().dims()[0];
        // Raw Gram in f64.
        let raw = match self.gradient_path {
            GradientPath::Batched => {
                // One batched backward emits the contiguous [n, P] gradient
                // matrix; the raw Gram is a single G = J·Jᵀ GEMM (f32 panels
                // with f64 accumulation).
                let j = net.per_sample_gradient_matrix_with(images, workspace)?;
                let raw = self.raw_gram_from_matrix(n, &j);
                workspace.recycle(j.into_values());
                raw
            }
            GradientPath::Looped => {
                let grads = net.per_sample_gradients_looped_with(images, workspace)?;
                let mut raw = vec![0.0f64; n * n];
                for i in 0..n {
                    for j in i..n {
                        let dot = grads[i].dot(&grads[j]);
                        raw[i * n + j] = dot;
                        raw[j * n + i] = dot;
                    }
                }
                raw
            }
        };
        Ok(finish_gram(n, &raw))
    }

    /// The raw (uncentred) Gram `G = J·Jᵀ` of an `[n, P]` per-sample
    /// gradient matrix, as one GEMM with f64 accumulation.
    fn raw_gram_from_matrix(&self, n: usize, j: &PerSampleGradients) -> Vec<f64> {
        let mut raw = vec![0.0f64; n * n];
        self.backend
            .gram_nt_f64(n, j.num_parameters(), j.values(), &mut raw);
        raw
    }
}

/// Double-centres and norm-normalises a raw Gram matrix (shared verbatim by
/// the solo and packed evaluation paths, so they agree bitwise).
///
/// Centring the gradients (ĝ_i = g_i − mean) is equivalent to
/// double-centring the raw Gram: Ĝ = H G H with H = I − 11ᵀ/n. This
/// O(n²) identity avoids materialising the centred gradient matrix
/// (n × num_parameters) entirely.
fn finish_gram(n: usize, raw: &[f64]) -> Tensor {
    let inv_n = 1.0 / n.max(1) as f64;
    let row_means: Vec<f64> = (0..n)
        .map(|i| raw[i * n..(i + 1) * n].iter().sum::<f64>() * inv_n)
        .collect();
    let total_mean = row_means.iter().sum::<f64>() * inv_n;
    let centred = |i: usize, j: usize| raw[i * n + j] - row_means[i] - row_means[j] + total_mean;
    let norms: Vec<f64> = (0..n).map(|i| centred(i, i).max(0.0).sqrt()).collect();
    let mut gram = Tensor::zeros(Shape::d2(n, n));
    for i in 0..n {
        for j in i..n {
            let scale = norms[i] * norms[j];
            let value = if scale > 0.0 {
                (centred(i, j) / scale) as f32
            } else {
                // A completely disconnected cell produces zero gradients;
                // keep the Gram all-zero (condition_index clamps the
                // denominator so the spectrum stays benign).
                0.0
            };
            *gram.at2_mut(i, j) = value;
            *gram.at2_mut(j, i) = value;
        }
    }
    gram
}

/// Per-candidate spectral accumulation across repeats, identical for the
/// solo and packed paths: eigensolve the centred Gram (with a reused
/// per-candidate scratch buffer, as solo evaluation keeps), drop the
/// structural zero mode, and average the condition indices.
struct NtkAccumulator {
    condition_sum: f64,
    indices_sum: Vec<f64>,
    first_eigenvalues: Vec<f64>,
    // One eigensolver scratch buffer serves every repeat.
    eigen_scratch: Vec<f64>,
}

impl NtkAccumulator {
    fn new(config: &NtkConfig) -> Self {
        Self {
            condition_sum: 0.0,
            indices_sum: vec![0.0f64; config.max_condition_index],
            first_eigenvalues: Vec::new(),
            eigen_scratch: Vec::new(),
        }
    }

    fn absorb(&mut self, repeat: usize, gram: &Tensor) -> Result<()> {
        let _span = micronas_telemetry::span!("proxy.ntk.eigensolve");
        let full = sym_eigenvalues_with(gram, EigenOptions::default(), &mut self.eigen_scratch)
            .map_err(|e| ProxyError::Eigen(e.to_string()))?;
        // Centring the per-sample gradients (see `finish_gram`) pins one
        // structural zero eigenvalue (the all-ones direction); drop it so
        // the condition indices describe the informative subspace.
        let report = EigenReport {
            eigenvalues: full.eigenvalues[1..].to_vec(),
            sweeps: full.sweeps,
            converged: full.converged,
        };
        self.condition_sum += report.condition_index(1);
        for (i, slot) in self.indices_sum.iter_mut().enumerate() {
            *slot += report.condition_index(i + 1);
        }
        if repeat == 0 {
            self.first_eigenvalues = report.eigenvalues;
        }
        Ok(())
    }

    fn finish(self, config: &NtkConfig) -> NtkReport {
        let repeats = config.repeats as f64;
        NtkReport {
            condition_number: self.condition_sum / repeats,
            condition_indices: self.indices_sum.iter().map(|v| v / repeats).collect(),
            eigenvalues: self.first_eigenvalues,
            batch_size: config.batch_size,
            repeats: config.repeats,
        }
    }
}

impl Default for NtkEvaluator {
    fn default() -> Self {
        Self::new(NtkConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use micronas_searchspace::{Operation, SearchSpace};

    fn fast_eval() -> NtkEvaluator {
        NtkEvaluator::new(NtkConfig::fast())
    }

    #[test]
    fn config_validation() {
        assert!(NtkConfig::fast().with_batch_size(1).validate().is_err());
        assert!(NtkConfig::fast().with_repeats(0).validate().is_err());
        let mut cfg = NtkConfig::fast();
        cfg.max_condition_index = 0;
        assert!(cfg.validate().is_err());
        assert!(NtkConfig::paper_default().validate().is_ok());
        assert_eq!(NtkConfig::paper_default().batch_size, 32);
    }

    #[test]
    fn evaluation_is_deterministic() {
        let space = SearchSpace::nas_bench_201();
        let cell = space.cell(8_888).unwrap();
        let eval = fast_eval();
        let a = eval.evaluate(cell, DatasetKind::Cifar10, 3).unwrap();
        let b = eval.evaluate(cell, DatasetKind::Cifar10, 3).unwrap();
        assert_eq!(a, b);
        let c = eval.evaluate(cell, DatasetKind::Cifar10, 4).unwrap();
        assert_ne!(a.condition_number, c.condition_number);
    }

    #[test]
    fn report_structure_is_consistent() {
        let space = SearchSpace::nas_bench_201();
        let cell = space.cell(12_003).unwrap();
        let eval = fast_eval();
        let report = eval.evaluate(cell, DatasetKind::Cifar10, 1).unwrap();
        assert_eq!(report.batch_size, 12);
        // The centring null mode is dropped from the reported spectrum.
        assert_eq!(report.eigenvalues.len(), 11);
        assert_eq!(report.condition_indices.len(), 8);
        // K_1 equals the reported condition number for a single repeat.
        assert!((report.condition_indices[0] - report.condition_number).abs() < 1e-9);
        // K_i is non-increasing in i.
        for w in report.condition_indices.windows(2) {
            assert!(w[0] >= w[1] - 1e-9);
        }
        assert!(report.condition_number >= 1.0);
        assert!(report.trainability_score() <= 0.0);
    }

    #[test]
    fn disconnected_cell_has_much_worse_conditioning_than_conv_cell() {
        // A conv-rich connected cell should be far better conditioned than a
        // cell whose only path is a pooling chain (near-degenerate NTK).
        let eval = fast_eval();
        let conv_cell = CellTopology::new([
            Operation::NorConv3x3,
            Operation::SkipConnect,
            Operation::NorConv1x1,
            Operation::SkipConnect,
            Operation::NorConv1x1,
            Operation::NorConv3x3,
        ]);
        let pool_cell = CellTopology::new([Operation::AvgPool3x3; 6]);
        let conv = eval.evaluate(conv_cell, DatasetKind::Cifar10, 5).unwrap();
        let pool = eval.evaluate(pool_cell, DatasetKind::Cifar10, 5).unwrap();
        assert!(
            pool.condition_number > conv.condition_number,
            "pool-only cell (K={}) should be worse conditioned than conv cell (K={})",
            pool.condition_number,
            conv.condition_number
        );
    }

    #[test]
    fn batched_and_looped_paths_agree() {
        // The per-sample gradients are identical bit-for-bit (see the nn
        // property tests); the Gram builds differ only in accumulation
        // order, so the spectra must agree to fine tolerance.
        let space = SearchSpace::nas_bench_201();
        for index in [7_000usize, 11_111, 404] {
            let cell = space.cell(index).unwrap();
            let batched = NtkEvaluator::new(NtkConfig::fast())
                .evaluate(cell, DatasetKind::Cifar10, 2)
                .unwrap();
            let looped = NtkEvaluator::new(NtkConfig::fast())
                .with_gradient_path(GradientPath::Looped)
                .evaluate(cell, DatasetKind::Cifar10, 2)
                .unwrap();
            assert!(
                (batched.condition_number - looped.condition_number).abs()
                    < 1e-3 * (1.0 + looped.condition_number.abs()),
                "cell {index}: batched K={} vs looped K={}",
                batched.condition_number,
                looped.condition_number
            );
            for (a, b) in batched.eigenvalues.iter().zip(looped.eigenvalues.iter()) {
                assert!((a - b).abs() < 1e-5 * (1.0 + b.abs()), "{a} vs {b}");
            }
        }
    }

    /// The mega-batching identity at the proxy layer: packed NTK reports —
    /// including the averaged indices and the repeat-0 spectrum — must be
    /// bitwise identical to solo evaluation of every pack member.
    #[test]
    fn packed_evaluation_is_bitwise_identical_to_solo() {
        let space = SearchSpace::nas_bench_201();
        let cells: Vec<_> = [7_000usize, 11_111, 404, 0, 8_888]
            .iter()
            .map(|&i| space.cell(i).unwrap())
            .collect();
        let eval = NtkEvaluator::new(NtkConfig::fast().with_repeats(2));
        let mut ws = Workspace::default();
        for width in [1usize, 2, cells.len()] {
            let members = &cells[..width];
            let packed = eval
                .evaluate_pack_in(members, DatasetKind::Cifar10, 6, &mut ws)
                .unwrap();
            assert_eq!(packed.len(), width);
            for (i, cell) in members.iter().enumerate() {
                let solo = eval.evaluate(*cell, DatasetKind::Cifar10, 6).unwrap();
                assert_eq!(solo, packed[i], "width {width} member {i}");
            }
        }
        assert!(eval
            .evaluate_pack_in(&[], DatasetKind::Cifar10, 6, &mut ws)
            .unwrap()
            .is_empty());
    }

    /// A non-default gradient path has no packed formulation; the pack entry
    /// falls back to per-candidate solo evaluation with identical results.
    #[test]
    fn packed_evaluation_falls_back_for_looped_gradients() {
        let space = SearchSpace::nas_bench_201();
        let cells = [space.cell(7_000).unwrap(), space.cell(404).unwrap()];
        let eval = NtkEvaluator::new(NtkConfig::fast()).with_gradient_path(GradientPath::Looped);
        let mut ws = Workspace::default();
        let packed = eval
            .evaluate_pack_in(&cells, DatasetKind::Cifar10, 3, &mut ws)
            .unwrap();
        for (cell, report) in cells.iter().zip(&packed) {
            let solo = eval.evaluate(*cell, DatasetKind::Cifar10, 3).unwrap();
            assert_eq!(&solo, report);
        }
    }

    #[test]
    fn repeats_average_the_condition_number() {
        let space = SearchSpace::nas_bench_201();
        let cell = space.cell(9_431).unwrap();
        let eval1 = NtkEvaluator::new(NtkConfig::fast().with_repeats(1));
        let eval2 = NtkEvaluator::new(NtkConfig::fast().with_repeats(2));
        let r1 = eval1.evaluate(cell, DatasetKind::Cifar10, 10).unwrap();
        let r2 = eval2.evaluate(cell, DatasetKind::Cifar10, 10).unwrap();
        assert_eq!(r2.repeats, 2);
        // The two-repeat average is generally different from the single run.
        assert!(r1.condition_number > 0.0 && r2.condition_number > 0.0);
    }
}
