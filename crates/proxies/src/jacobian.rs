//! Jacobian-covariance proxy (gradient-diversity indicator).

use crate::proxy::{fingerprint_domain, fingerprint_network, Proxy};
use crate::{ProxyError, Result};
use micronas_datasets::{DatasetKind, SyntheticDataset};
use micronas_nn::{CellNetwork, ProxyNetworkConfig};
use micronas_searchspace::CellTopology;
use micronas_tensor::{gram_nt_f64, sym_eigenvalues_with, EigenOptions, Shape, Tensor, Workspace};
use serde::{Deserialize, Serialize};

/// Configuration of the Jacobian-covariance proxy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JacobianCovarianceConfig {
    /// Mini-batch size whose per-sample Jacobians are correlated.
    pub batch_size: usize,
    /// Geometry of the randomly initialised probe network.
    pub network: ProxyNetworkConfig,
}

impl JacobianCovarianceConfig {
    /// Paper-scale probe geometry at the adopted batch size.
    pub fn paper_default() -> Self {
        Self {
            batch_size: 32,
            network: ProxyNetworkConfig::proxy_default(10),
        }
    }

    /// A fast configuration for unit tests and quick searches.
    pub fn fast() -> Self {
        Self {
            batch_size: 8,
            network: ProxyNetworkConfig::small(10),
        }
    }

    fn validate(&self) -> Result<()> {
        if self.batch_size < 2 {
            return Err(ProxyError::InvalidConfig(
                "Jacobian-covariance batch size must be at least 2".into(),
            ));
        }
        Ok(())
    }
}

impl Default for JacobianCovarianceConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Numerical floor added to every eigenvalue (the `k` of Mellor et al.'s
/// scoring rule).
const EIGEN_FLOOR: f64 = 1e-5;

/// Jacobian-covariance score (after Mellor et al., 2021): how *diverse* the
/// per-sample tangent features of a batch are at random initialisation.
///
/// The proxy draws a mini-batch, computes the per-sample parameter
/// Jacobian rows `g_i = ∇θ f(x_i)` (the same batched `[n, P]` sweep the NTK
/// proxy uses), **centres** them (`ĝ_i = g_i − mean(g)`; without batch
/// normalisation the raw gradients share a dominant common component that
/// would drown the diversity signal — the same correction the NTK evaluator
/// applies), forms their correlation matrix
/// `C[i][j] = ĝ_i · ĝ_j / (‖ĝ_i‖ ‖ĝ_j‖)` and scores the spectrum with the
/// structural zero mode of the centring removed:
///
/// `S = -(1/(n-1)) Σ_i [ ln(λ_i + k) + 1/(λ_i + k) ]`
///
/// A well-behaved network maps different samples to near-orthogonal
/// tangent directions (`C ≈ I`, informative eigenvalues near 1, score near
/// its maximum of `-1`); a degenerate one collapses every sample onto one
/// direction (one large eigenvalue, the rest 0, score plummeting through
/// the `1/λ` barrier). Larger is better. Zero-gradient (disconnected)
/// cells score the spectrum of the zero matrix — the worst finite value —
/// rather than erroring.
#[derive(Debug, Clone)]
pub struct JacobianCovarianceProxy {
    config: JacobianCovarianceConfig,
}

impl JacobianCovarianceProxy {
    /// Creates the proxy with the given configuration.
    pub fn new(config: JacobianCovarianceConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &JacobianCovarianceConfig {
        &self.config
    }
}

impl Proxy for JacobianCovarianceProxy {
    fn id(&self) -> &str {
        "jacob_cov"
    }

    fn config_fingerprint(&self) -> u64 {
        let mut h = fingerprint_domain("micronas/proxy/jacob_cov");
        h = micronas_tensor::hash_mix(h, self.config.batch_size as u64);
        fingerprint_network(h, &self.config.network)
    }

    fn evaluate_with(
        &self,
        cell: CellTopology,
        dataset: DatasetKind,
        seed: u64,
        workspace: &mut Workspace,
    ) -> Result<f64> {
        self.config.validate()?;
        let mut net_config = self.config.network;
        net_config.num_classes = dataset.num_classes().min(16);
        let n = self.config.batch_size;

        let data = SyntheticDataset::new(dataset, seed);
        let batch = data.sample_batch_with_stream(n, net_config.input_resolution, 0)?;
        let net = CellNetwork::new(&cell, &net_config, seed)?;

        // Raw Gram of the per-sample Jacobian rows.
        let j = net.per_sample_gradient_matrix_with(&batch.images, workspace)?;
        let mut raw = vec![0.0f64; n * n];
        gram_nt_f64(n, j.num_parameters(), j.values(), &mut raw);
        workspace.recycle(j.into_values());

        // Centring the rows is double-centring the Gram (Ĝ = H G H with
        // H = I − 11ᵀ/n), avoiding a second [n, P] materialisation.
        let inv_n = 1.0 / n as f64;
        let row_means: Vec<f64> = (0..n)
            .map(|i| raw[i * n..(i + 1) * n].iter().sum::<f64>() * inv_n)
            .collect();
        let total_mean = row_means.iter().sum::<f64>() * inv_n;
        let centred =
            |i: usize, k: usize| raw[i * n + k] - row_means[i] - row_means[k] + total_mean;
        let norms: Vec<f64> = (0..n).map(|i| centred(i, i).max(0.0).sqrt()).collect();
        let mut corr = Tensor::zeros(Shape::d2(n, n));
        for i in 0..n {
            for k in i..n {
                let scale = norms[i] * norms[k];
                let value = if scale > 0.0 {
                    (centred(i, k) / scale) as f32
                } else {
                    0.0
                };
                *corr.at2_mut(i, k) = value;
                *corr.at2_mut(k, i) = value;
            }
        }

        let mut scratch = Vec::new();
        let report = sym_eigenvalues_with(&corr, EigenOptions::default(), &mut scratch)
            .map_err(|e| ProxyError::Eigen(e.to_string()))?;
        // Eigenvalues are ascending; drop the structural zero mode the
        // centring pins (the all-ones direction) and score the rest.
        let mut score = 0.0f64;
        for &lambda in report.eigenvalues.iter().skip(1) {
            let l = lambda.max(0.0) + EIGEN_FLOOR;
            score -= l.ln() + 1.0 / l;
        }
        Ok(score / (n - 1) as f64)
    }
}

impl Default for JacobianCovarianceProxy {
    fn default() -> Self {
        Self::new(JacobianCovarianceConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use micronas_searchspace::{Operation, SearchSpace};

    fn fast() -> JacobianCovarianceProxy {
        JacobianCovarianceProxy::new(JacobianCovarianceConfig::fast())
    }

    #[test]
    fn degenerate_batch_sizes_are_rejected() {
        let mut cfg = JacobianCovarianceConfig::fast();
        cfg.batch_size = 1;
        let space = SearchSpace::nas_bench_201();
        assert!(JacobianCovarianceProxy::new(cfg)
            .evaluate(space.cell(0).unwrap(), DatasetKind::Cifar10, 0)
            .is_err());
    }

    #[test]
    fn evaluation_is_deterministic() {
        let space = SearchSpace::nas_bench_201();
        let cell = space.cell(11_111).unwrap();
        let a = fast().evaluate(cell, DatasetKind::Cifar10, 4).unwrap();
        let b = fast().evaluate(cell, DatasetKind::Cifar10, 4).unwrap();
        assert_eq!(a, b);
        let c = fast().evaluate(cell, DatasetKind::Cifar10, 5).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn diverse_conv_cell_beats_collapsed_and_disconnected_cells() {
        let conv = CellTopology::new([
            Operation::NorConv3x3,
            Operation::SkipConnect,
            Operation::NorConv3x3,
            Operation::SkipConnect,
            Operation::NorConv1x1,
            Operation::NorConv3x3,
        ]);
        let pool = CellTopology::new([Operation::AvgPool3x3; 6]);
        let disconnected = CellTopology::new([Operation::None; 6]);
        let proxy = fast();
        let c = proxy.evaluate(conv, DatasetKind::Cifar10, 7).unwrap();
        let p = proxy.evaluate(pool, DatasetKind::Cifar10, 7).unwrap();
        let d = proxy
            .evaluate(disconnected, DatasetKind::Cifar10, 7)
            .unwrap();
        assert!(c > p, "conv {c} must beat pool {p}");
        assert!(p > d, "pool {p} must beat disconnected {d}");
        // The theoretical maximum of the score is -(ln(1+k) + 1/(1+k)) ≈ -1.
        assert!(c <= -0.9 && c.is_finite());
    }

    #[test]
    fn fingerprint_tracks_batch_size() {
        let a = fast();
        let mut cfg = JacobianCovarianceConfig::fast();
        cfg.batch_size = 16;
        let b = JacobianCovarianceProxy::new(cfg);
        assert_ne!(a.config_fingerprint(), b.config_fingerprint());
        assert_eq!(a.id(), "jacob_cov");
    }
}
