//! Linear-region count proxy (expressivity indicator).

use crate::{ProxyError, Result};
use micronas_datasets::{DatasetKind, SyntheticDataset};
use micronas_nn::{CellNetwork, CellNetworkPack, ProxyNetworkConfig};
use micronas_searchspace::CellTopology;
use micronas_tensor::{paper_default_backend, KernelBackend, Shape, Tensor};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::sync::Arc;

/// Configuration of the linear-region proxy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearRegionConfig {
    /// Number of random input-space segments probed.
    pub num_segments: usize,
    /// Number of interpolation points per segment (including endpoints).
    pub points_per_segment: usize,
    /// Geometry of the randomly initialised proxy network.
    pub network: ProxyNetworkConfig,
}

impl LinearRegionConfig {
    /// The default configuration used by the benchmark harness.
    pub fn paper_default() -> Self {
        Self {
            num_segments: 8,
            points_per_segment: 24,
            network: ProxyNetworkConfig::proxy_default(10),
        }
    }

    /// A fast configuration for unit tests.
    pub fn fast() -> Self {
        Self {
            num_segments: 3,
            points_per_segment: 10,
            network: ProxyNetworkConfig::small(10),
        }
    }

    fn validate(&self) -> Result<()> {
        if self.num_segments == 0 {
            return Err(ProxyError::InvalidConfig(
                "at least one probe segment is required".into(),
            ));
        }
        if self.points_per_segment < 2 {
            return Err(ProxyError::InvalidConfig(
                "segments need at least two points".into(),
            ));
        }
        Ok(())
    }
}

impl Default for LinearRegionConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Result of one linear-region evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearRegionReport {
    /// Total number of distinct linear regions encountered across all probe
    /// segments (the expressivity score; larger is better).
    pub regions: usize,
    /// Average number of regions per segment.
    pub regions_per_segment: f64,
    /// Number of distinct global activation patterns seen across all probe
    /// points (an upper-bound style secondary statistic).
    pub distinct_patterns: usize,
    /// Total number of ReLU units in the probe network.
    pub relu_units: usize,
}

impl LinearRegionReport {
    /// The expressivity *score* used inside search objectives: the log of the
    /// region count (larger is better).
    pub fn expressivity_score(&self) -> f64 {
        (self.regions.max(1) as f64).ln()
    }
}

/// Estimates the number of linear regions a candidate cell induces.
///
/// ReLU networks are piecewise linear: each distinct activation pattern
/// corresponds to one linear region of input space (Xiong et al., 2020). At
/// proxy scale, counting distinct patterns over independent random samples
/// saturates almost immediately (every sample lands in its own region), so
/// the evaluator instead walks straight segments between random pairs of
/// inputs and counts how many ReLU hyperplanes each segment crosses (the
/// Hamming distance between consecutive activation patterns, accumulated
/// along the segment). One plus the crossing count is the number of linear
/// pieces the segment is cut into — a graded estimator of region density
/// that preserves the ranking the paper's expressivity indicator provides.
#[derive(Debug, Clone)]
pub struct LinearRegionEvaluator {
    config: LinearRegionConfig,
    backend: Arc<dyn KernelBackend>,
    compiler: Option<Arc<dyn micronas_graph::Compiler>>,
}

impl LinearRegionEvaluator {
    /// Creates an evaluator with the given configuration on the
    /// paper-default execution backend.
    pub fn new(config: LinearRegionConfig) -> Self {
        Self {
            config,
            backend: paper_default_backend(),
            compiler: None,
        }
    }

    /// Returns a copy running on an explicit execution backend. The probe is
    /// forward-only, so inference-only backends (int8) work here — that is
    /// the deployment-accuracy scenario: how much expressivity survives the
    /// device's 8-bit arithmetic.
    pub fn with_backend(mut self, backend: Arc<dyn KernelBackend>) -> Self {
        self.backend = backend;
        self
    }

    /// The execution backend in force.
    pub fn backend(&self) -> &Arc<dyn KernelBackend> {
        &self.backend
    }

    /// Returns a copy routing the probe forward passes through a compiled
    /// kernel-graph plan ([`micronas_nn::CellNetwork::with_compiler`]).
    #[must_use]
    pub fn with_compiler(mut self, compiler: Arc<dyn micronas_graph::Compiler>) -> Self {
        self.compiler = Some(compiler);
        self
    }

    /// The graph compiler in force, if any (`None` means eager execution).
    pub fn compiler(&self) -> Option<&Arc<dyn micronas_graph::Compiler>> {
        self.compiler.as_ref()
    }

    /// The evaluator's configuration.
    pub fn config(&self) -> &LinearRegionConfig {
        &self.config
    }

    /// Evaluates the linear-region count of `cell` using probe inputs shaped
    /// like `dataset` samples.
    ///
    /// # Errors
    ///
    /// Returns a [`ProxyError`] if the configuration is invalid or any
    /// underlying step fails.
    pub fn evaluate(
        &self,
        cell: CellTopology,
        dataset: DatasetKind,
        seed: u64,
    ) -> Result<LinearRegionReport> {
        // The shared per-thread scratch arena serves every probe segment and
        // stays hot across candidates, under the backend's retention policy.
        crate::scratch::with_thread_workspace_capped(
            self.backend.arena_retention_cap_bytes(),
            |workspace| self.evaluate_in(cell, dataset, seed, workspace),
        )
    }

    /// [`LinearRegionEvaluator::evaluate`] threading an explicit scratch
    /// arena (identical values; this is the [`crate::Proxy`] entry point).
    ///
    /// # Errors
    ///
    /// Returns a [`ProxyError`] if the configuration is invalid or any
    /// underlying step fails.
    pub fn evaluate_in(
        &self,
        cell: CellTopology,
        dataset: DatasetKind,
        seed: u64,
        workspace: &mut micronas_tensor::Workspace,
    ) -> Result<LinearRegionReport> {
        let _span = micronas_telemetry::span!("proxy.linear_regions");
        self.config.validate()?;
        let mut net_config = self.config.network;
        net_config.num_classes = dataset.num_classes().min(16);
        let mut net = CellNetwork::with_backend(&cell, &net_config, seed, self.backend.clone())?;
        if let Some(compiler) = &self.compiler {
            net = net.with_compiler(Arc::clone(compiler));
        }
        let data = SyntheticDataset::new(dataset, seed);

        let mut acc = RegionAccumulator::default();
        for segment in 0..self.config.num_segments {
            // Two endpoint batches of one sample each.
            let endpoints =
                data.sample_batch_with_stream(2, net_config.input_resolution, segment as u64)?;
            let points = self.interpolate(&endpoints.images, self.config.points_per_segment)?;
            let output = net.forward_with(&points, workspace)?;
            acc.absorb_segment(&output.pre_activations, self.config.points_per_segment);
        }
        Ok(acc.finish(self.config.num_segments))
    }

    /// Cross-candidate mega-batched evaluation: every cell probes the
    /// **same** segments (endpoints and interpolation do not depend on the
    /// cell), so each segment's forward pass runs through one
    /// [`CellNetworkPack`] whose same-geometry conv layers merge into packed
    /// GEMM dispatches. Element `i` of the result is bitwise identical to
    /// solo evaluation of `cells[i]` via
    /// [`LinearRegionEvaluator::evaluate_in`].
    ///
    /// # Errors
    ///
    /// Returns a [`ProxyError`] if the configuration is invalid or any
    /// underlying step fails.
    pub fn evaluate_pack_in(
        &self,
        cells: &[CellTopology],
        dataset: DatasetKind,
        seed: u64,
        workspace: &mut micronas_tensor::Workspace,
    ) -> Result<Vec<LinearRegionReport>> {
        self.config.validate()?;
        if cells.is_empty() {
            return Ok(Vec::new());
        }
        let _span = micronas_telemetry::span!("proxy.linear_regions.pack");
        let mut net_config = self.config.network;
        net_config.num_classes = dataset.num_classes().min(16);
        let mut pack =
            CellNetworkPack::with_backend(cells, &net_config, seed, self.backend.clone())?;
        if let Some(compiler) = &self.compiler {
            pack = pack.with_compiler(Arc::clone(compiler));
        }
        let data = SyntheticDataset::new(dataset, seed);

        let mut accs: Vec<RegionAccumulator> =
            cells.iter().map(|_| RegionAccumulator::default()).collect();
        for segment in 0..self.config.num_segments {
            let endpoints =
                data.sample_batch_with_stream(2, net_config.input_resolution, segment as u64)?;
            let points = self.interpolate(&endpoints.images, self.config.points_per_segment)?;
            let outputs = pack.forward_with(&points, workspace)?;
            for (acc, output) in accs.iter_mut().zip(&outputs) {
                acc.absorb_segment(&output.pre_activations, self.config.points_per_segment);
            }
        }
        Ok(accs
            .into_iter()
            .map(|acc| acc.finish(self.config.num_segments))
            .collect())
    }

    /// Builds a batch of `steps` points interpolating linearly between the
    /// two samples of `endpoints`.
    fn interpolate(&self, endpoints: &Tensor, steps: usize) -> Result<Tensor> {
        let d = endpoints.shape().dims();
        let per_sample = d[1] * d[2] * d[3];
        let a = &endpoints.data()[0..per_sample];
        let b = &endpoints.data()[per_sample..2 * per_sample];
        let mut data = Vec::with_capacity(steps * per_sample);
        for s in 0..steps {
            let t = s as f32 / (steps - 1) as f32;
            for k in 0..per_sample {
                data.push((1.0 - t) * a[k] + t * b[k]);
            }
        }
        Tensor::from_vec(Shape::nchw(steps, d[1], d[2], d[3]), data)
            .map_err(|e| ProxyError::Network(e.to_string()))
    }
}

impl Default for LinearRegionEvaluator {
    fn default() -> Self {
        Self::new(LinearRegionConfig::default())
    }
}

/// Per-candidate region counting across probe segments, identical for the
/// solo and packed paths (both call [`RegionAccumulator::absorb_segment`]
/// with the same pre-activations, so reports agree bitwise).
#[derive(Default)]
struct RegionAccumulator {
    total_regions: usize,
    all_patterns: HashSet<Vec<bool>>,
    relu_units: usize,
}

impl RegionAccumulator {
    fn absorb_segment(&mut self, pre_activations: &[Tensor], points_per_segment: usize) {
        let patterns = activation_patterns(pre_activations, points_per_segment);
        self.relu_units = patterns.first().map(|p| p.len()).unwrap_or(0);

        // Count pieces along the segment: 1 + number of ReLU
        // hyperplane crossings (Hamming distance between consecutive
        // patterns).
        let mut segment_regions = 1usize;
        for w in patterns.windows(2) {
            segment_regions += w[0].iter().zip(w[1].iter()).filter(|(a, b)| a != b).count();
        }
        // A network with no ReLU units has a single global linear
        // region.
        if self.relu_units == 0 {
            segment_regions = 1;
        }
        self.total_regions += segment_regions;
        for p in patterns {
            self.all_patterns.insert(p);
        }
    }

    fn finish(self, num_segments: usize) -> LinearRegionReport {
        let regions_per_segment = self.total_regions as f64 / num_segments as f64;
        LinearRegionReport {
            regions: self.total_regions,
            regions_per_segment,
            distinct_patterns: if self.relu_units == 0 {
                1
            } else {
                self.all_patterns.len()
            },
            relu_units: self.relu_units,
        }
    }
}

/// Collapses the per-edge pre-activation tensors into one boolean activation
/// pattern per probe point.
fn activation_patterns(pre_activations: &[Tensor], num_points: usize) -> Vec<Vec<bool>> {
    let mut patterns = vec![Vec::new(); num_points];
    for tensor in pre_activations {
        let d = tensor.shape().dims();
        let per_sample: usize = d[1..].iter().product();
        for (point, pattern) in patterns.iter_mut().enumerate() {
            let start = point * per_sample;
            pattern.extend(
                tensor.data()[start..start + per_sample]
                    .iter()
                    .map(|&v| v > 0.0),
            );
        }
    }
    patterns
}

#[cfg(test)]
mod tests {
    use super::*;
    use micronas_searchspace::{Operation, SearchSpace};

    fn fast_eval() -> LinearRegionEvaluator {
        LinearRegionEvaluator::new(LinearRegionConfig::fast())
    }

    #[test]
    fn config_validation() {
        let mut cfg = LinearRegionConfig::fast();
        cfg.num_segments = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = LinearRegionConfig::fast();
        cfg.points_per_segment = 1;
        assert!(cfg.validate().is_err());
        assert!(LinearRegionConfig::paper_default().validate().is_ok());
    }

    #[test]
    fn evaluation_is_deterministic() {
        let space = SearchSpace::nas_bench_201();
        let cell = space.cell(7_654).unwrap();
        let eval = fast_eval();
        let a = eval.evaluate(cell, DatasetKind::Cifar10, 1).unwrap();
        let b = eval.evaluate(cell, DatasetKind::Cifar10, 1).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn relu_free_cells_have_one_region_per_segment() {
        // Skip-only and pool-only cells contain no ReLU-conv blocks at all.
        let eval = fast_eval();
        for op in [
            Operation::SkipConnect,
            Operation::AvgPool3x3,
            Operation::None,
        ] {
            let report = eval
                .evaluate(CellTopology::new([op; 6]), DatasetKind::Cifar10, 2)
                .unwrap();
            assert_eq!(report.relu_units, 0);
            assert_eq!(report.regions, eval.config().num_segments);
            assert_eq!(report.distinct_patterns, 1);
            assert_eq!(report.expressivity_score(), (report.regions as f64).ln());
        }
    }

    #[test]
    fn conv_cells_are_more_expressive_than_sparse_cells() {
        let eval = fast_eval();
        let rich = CellTopology::new([Operation::NorConv3x3; 6]);
        let sparse = CellTopology::new([
            Operation::NorConv1x1,
            Operation::None,
            Operation::None,
            Operation::SkipConnect,
            Operation::None,
            Operation::SkipConnect,
        ]);
        let r = eval.evaluate(rich, DatasetKind::Cifar10, 3).unwrap();
        let s = eval.evaluate(sparse, DatasetKind::Cifar10, 3).unwrap();
        assert!(
            r.regions > s.regions,
            "rich cell ({} regions) should beat sparse cell ({} regions)",
            r.regions,
            s.regions
        );
        assert!(r.relu_units > s.relu_units);
    }

    /// The mega-batching identity at the proxy layer: packed region reports
    /// must be bitwise identical to solo evaluation of every pack member.
    #[test]
    fn packed_evaluation_is_bitwise_identical_to_solo() {
        let space = SearchSpace::nas_bench_201();
        let cells: Vec<_> = [7_000usize, 11_111, 404, 0, 15_624]
            .iter()
            .map(|&i| space.cell(i).unwrap())
            .collect();
        let eval = fast_eval();
        let mut ws = micronas_tensor::Workspace::default();
        for width in [1usize, 2, cells.len()] {
            let members = &cells[..width];
            let packed = eval
                .evaluate_pack_in(members, DatasetKind::Cifar10, 8, &mut ws)
                .unwrap();
            assert_eq!(packed.len(), width);
            for (i, cell) in members.iter().enumerate() {
                let solo = eval.evaluate(*cell, DatasetKind::Cifar10, 8).unwrap();
                assert_eq!(solo, packed[i], "width {width} member {i}");
            }
        }
        assert!(eval
            .evaluate_pack_in(&[], DatasetKind::Cifar10, 8, &mut ws)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn regions_per_segment_consistent_with_total() {
        let space = SearchSpace::nas_bench_201();
        let eval = fast_eval();
        let report = eval
            .evaluate(space.cell(11_111).unwrap(), DatasetKind::Cifar100, 4)
            .unwrap();
        let expected = report.regions as f64 / eval.config().num_segments as f64;
        assert!((report.regions_per_segment - expected).abs() < 1e-12);
        assert!(report.regions >= eval.config().num_segments);
    }
}
