//! Combined zero-cost evaluation of a candidate architecture.

use crate::{
    metric_ids, LinearRegionConfig, LinearRegionEvaluator, MetricSet, NtkConfig, NtkEvaluator,
    Result,
};
use micronas_datasets::DatasetKind;
use micronas_searchspace::CellTopology;
use serde::{Deserialize, Serialize};

/// The two built-in network-analysis indicators, bundled.
///
/// This fixed-layout struct remains the *storage codec* for the paper's two
/// default proxies (the `micronas-store` log encodes it bit-for-bit); the
/// search-facing evaluation surface is the open-ended [`MetricSet`], which
/// [`ZeroCostMetrics::metric_set`] produces.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ZeroCostMetrics {
    /// NTK condition number (smaller is better).
    pub ntk_condition: f64,
    /// Linear-region count (larger is better).
    pub linear_regions: usize,
    /// Trainability score: negated log condition number (larger is better).
    pub trainability: f64,
    /// Expressivity score: log region count (larger is better).
    pub expressivity: f64,
}

impl ZeroCostMetrics {
    /// Publishes the bundled indicators as an ordered [`MetricSet`]
    /// (`ntk_condition`, `linear_regions`, `trainability`, `expressivity`).
    pub fn metric_set(&self) -> MetricSet {
        MetricSet::with_capacity(4)
            .with(metric_ids::NTK_CONDITION, self.ntk_condition)
            .with(metric_ids::LINEAR_REGIONS, self.linear_regions as f64)
            .with(metric_ids::TRAINABILITY, self.trainability)
            .with(metric_ids::EXPRESSIVITY, self.expressivity)
    }
}

/// Evaluates both zero-cost indicators for candidate cells.
///
/// This is the "network analysis" half of the MicroNAS workflow (Fig. 1);
/// the hardware half lives in [`micronas_hw::HardwareEvaluator`].
///
/// [`micronas_hw::HardwareEvaluator`]: https://docs.rs/micronas-hw
#[derive(Debug, Clone)]
pub struct ZeroCostEvaluator {
    ntk: NtkEvaluator,
    linear_regions: LinearRegionEvaluator,
}

impl ZeroCostEvaluator {
    /// Creates an evaluator from the two proxy configurations on the
    /// paper-default execution backend.
    pub fn new(ntk: NtkConfig, lr: LinearRegionConfig) -> Self {
        Self {
            ntk: NtkEvaluator::new(ntk),
            linear_regions: LinearRegionEvaluator::new(lr),
        }
    }

    /// Creates an evaluator running both indicators on an explicit execution
    /// backend ([`micronas_tensor::KernelBackend`]). The NTK half needs
    /// gradient kernels, so inference-only backends fail at evaluation time.
    pub fn with_backend(
        ntk: NtkConfig,
        lr: LinearRegionConfig,
        backend: std::sync::Arc<dyn micronas_tensor::KernelBackend>,
    ) -> Self {
        Self {
            ntk: NtkEvaluator::new(ntk).with_backend(backend.clone()),
            linear_regions: LinearRegionEvaluator::new(lr).with_backend(backend),
        }
    }

    /// A fast evaluator for tests and quick searches.
    pub fn fast() -> Self {
        Self::new(NtkConfig::fast(), LinearRegionConfig::fast())
    }

    /// The evaluator configured as in the paper (batch-32 NTK).
    pub fn paper_default() -> Self {
        Self::new(
            NtkConfig::paper_default(),
            LinearRegionConfig::paper_default(),
        )
    }

    /// The NTK sub-evaluator.
    pub fn ntk(&self) -> &NtkEvaluator {
        &self.ntk
    }

    /// The linear-region sub-evaluator.
    pub fn linear_regions(&self) -> &LinearRegionEvaluator {
        &self.linear_regions
    }

    /// Evaluates both indicators for one cell.
    ///
    /// # Errors
    ///
    /// Propagates any proxy evaluation failure.
    pub fn evaluate(
        &self,
        cell: CellTopology,
        dataset: DatasetKind,
        seed: u64,
    ) -> Result<ZeroCostMetrics> {
        let ntk = self.ntk.evaluate(cell, dataset, seed)?;
        let lr = self.linear_regions.evaluate(cell, dataset, seed)?;
        Ok(ZeroCostMetrics {
            ntk_condition: ntk.condition_number,
            linear_regions: lr.regions,
            trainability: ntk.trainability_score(),
            expressivity: lr.expressivity_score(),
        })
    }
}

impl Default for ZeroCostEvaluator {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use micronas_searchspace::{Operation, SearchSpace};

    #[test]
    fn evaluate_produces_consistent_scores() {
        let space = SearchSpace::nas_bench_201();
        let eval = ZeroCostEvaluator::fast();
        let metrics = eval
            .evaluate(space.cell(4_242).unwrap(), DatasetKind::Cifar10, 1)
            .unwrap();
        assert!(metrics.ntk_condition >= 1.0);
        assert!(metrics.linear_regions >= 1);
        assert!((metrics.trainability - -(metrics.ntk_condition.max(1.0)).ln()).abs() < 1e-9);
        assert!((metrics.expressivity - (metrics.linear_regions as f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn conv_rich_cell_beats_pool_cell_on_both_axes() {
        let eval = ZeroCostEvaluator::fast();
        let rich = CellTopology::new([
            Operation::NorConv3x3,
            Operation::SkipConnect,
            Operation::NorConv3x3,
            Operation::SkipConnect,
            Operation::NorConv1x1,
            Operation::NorConv3x3,
        ]);
        let poor = CellTopology::new([Operation::AvgPool3x3; 6]);
        let a = eval.evaluate(rich, DatasetKind::Cifar10, 2).unwrap();
        let b = eval.evaluate(poor, DatasetKind::Cifar10, 2).unwrap();
        assert!(a.trainability > b.trainability);
        assert!(a.expressivity > b.expressivity);
    }

    #[test]
    fn accessors_expose_sub_evaluators() {
        let eval = ZeroCostEvaluator::fast();
        assert_eq!(eval.ntk().config().batch_size, NtkConfig::fast().batch_size);
        assert_eq!(
            eval.linear_regions().config().num_segments,
            LinearRegionConfig::fast().num_segments
        );
    }
}
