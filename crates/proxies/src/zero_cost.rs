//! Combined zero-cost evaluation of a candidate architecture.

use crate::{
    metric_ids, LinearRegionConfig, LinearRegionEvaluator, MetricSet, NtkConfig, NtkEvaluator,
    Result,
};
use micronas_datasets::DatasetKind;
use micronas_searchspace::CellTopology;
use serde::{Deserialize, Serialize};

/// The two built-in network-analysis indicators, bundled.
///
/// This fixed-layout struct remains the *storage codec* for the paper's two
/// default proxies (the `micronas-store` log encodes it bit-for-bit); the
/// search-facing evaluation surface is the open-ended [`MetricSet`], which
/// [`ZeroCostMetrics::metric_set`] produces.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ZeroCostMetrics {
    /// NTK condition number (smaller is better).
    pub ntk_condition: f64,
    /// Linear-region count (larger is better).
    pub linear_regions: usize,
    /// Trainability score: negated log condition number (larger is better).
    pub trainability: f64,
    /// Expressivity score: log region count (larger is better).
    pub expressivity: f64,
}

impl ZeroCostMetrics {
    /// Publishes the bundled indicators as an ordered [`MetricSet`]
    /// (`ntk_condition`, `linear_regions`, `trainability`, `expressivity`).
    pub fn metric_set(&self) -> MetricSet {
        MetricSet::with_capacity(4)
            .with(metric_ids::NTK_CONDITION, self.ntk_condition)
            .with(metric_ids::LINEAR_REGIONS, self.linear_regions as f64)
            .with(metric_ids::TRAINABILITY, self.trainability)
            .with(metric_ids::EXPRESSIVITY, self.expressivity)
    }
}

/// Evaluates both zero-cost indicators for candidate cells.
///
/// This is the "network analysis" half of the MicroNAS workflow (Fig. 1);
/// the hardware half lives in [`micronas_hw::HardwareEvaluator`].
///
/// [`micronas_hw::HardwareEvaluator`]: https://docs.rs/micronas-hw
#[derive(Debug, Clone)]
pub struct ZeroCostEvaluator {
    ntk: NtkEvaluator,
    linear_regions: LinearRegionEvaluator,
}

impl ZeroCostEvaluator {
    /// Creates an evaluator from the two proxy configurations on the
    /// paper-default execution backend.
    pub fn new(ntk: NtkConfig, lr: LinearRegionConfig) -> Self {
        Self {
            ntk: NtkEvaluator::new(ntk),
            linear_regions: LinearRegionEvaluator::new(lr),
        }
    }

    /// Creates an evaluator running both indicators on an explicit execution
    /// backend ([`micronas_tensor::KernelBackend`]). The NTK half needs
    /// gradient kernels, so inference-only backends fail at evaluation time.
    pub fn with_backend(
        ntk: NtkConfig,
        lr: LinearRegionConfig,
        backend: std::sync::Arc<dyn micronas_tensor::KernelBackend>,
    ) -> Self {
        Self {
            ntk: NtkEvaluator::new(ntk).with_backend(backend.clone()),
            linear_regions: LinearRegionEvaluator::new(lr).with_backend(backend),
        }
    }

    /// Returns a copy routing both indicators' network execution through a
    /// compiled kernel-graph plan (see
    /// [`micronas_nn::CellNetwork::with_compiler`]). Weights, backend and
    /// probe data are unchanged — only the execution strategy is.
    #[must_use]
    pub fn with_compiler(mut self, compiler: std::sync::Arc<dyn micronas_graph::Compiler>) -> Self {
        self.ntk = self.ntk.with_compiler(compiler.clone());
        self.linear_regions = self.linear_regions.with_compiler(compiler);
        self
    }

    /// Returns a copy with the NTK sweep's packed per-sample backward
    /// kernels toggled (see [`NtkEvaluator::with_packed_backward`]).
    /// `false` restores the forward-only packing of the pre-packed-backward
    /// pipeline — the linear-region indicator has no backward pass, so only
    /// the NTK half changes. Results are bitwise identical either way.
    #[must_use]
    pub fn with_packed_backward(mut self, packed_backward: bool) -> Self {
        self.ntk = self.ntk.with_packed_backward(packed_backward);
        self
    }

    /// A fast evaluator for tests and quick searches.
    pub fn fast() -> Self {
        Self::new(NtkConfig::fast(), LinearRegionConfig::fast())
    }

    /// The evaluator configured as in the paper (batch-32 NTK).
    pub fn paper_default() -> Self {
        Self::new(
            NtkConfig::paper_default(),
            LinearRegionConfig::paper_default(),
        )
    }

    /// The NTK sub-evaluator.
    pub fn ntk(&self) -> &NtkEvaluator {
        &self.ntk
    }

    /// The linear-region sub-evaluator.
    pub fn linear_regions(&self) -> &LinearRegionEvaluator {
        &self.linear_regions
    }

    /// Evaluates both indicators for one cell.
    ///
    /// # Errors
    ///
    /// Propagates any proxy evaluation failure.
    pub fn evaluate(
        &self,
        cell: CellTopology,
        dataset: DatasetKind,
        seed: u64,
    ) -> Result<ZeroCostMetrics> {
        let ntk = self.ntk.evaluate(cell, dataset, seed)?;
        let lr = self.linear_regions.evaluate(cell, dataset, seed)?;
        Ok(ZeroCostMetrics {
            ntk_condition: ntk.condition_number,
            linear_regions: lr.regions,
            trainability: ntk.trainability_score(),
            expressivity: lr.expressivity_score(),
        })
    }

    /// Cross-candidate mega-batched evaluation of both indicators: one
    /// [`NtkEvaluator::evaluate_pack_in`] sweep and one
    /// [`LinearRegionEvaluator::evaluate_pack_in`] sweep, sharing a single
    /// thread-local scratch arena (retained under the NTK backend's
    /// policy). Element `i` of the result is bitwise identical to
    /// [`ZeroCostEvaluator::evaluate`] on `cells[i]` alone — the packed
    /// sweeps merge same-geometry GEMM dispatches without changing any
    /// per-candidate arithmetic.
    ///
    /// # Errors
    ///
    /// Propagates any proxy evaluation failure.
    pub fn evaluate_pack(
        &self,
        cells: &[CellTopology],
        dataset: DatasetKind,
        seed: u64,
    ) -> Result<Vec<ZeroCostMetrics>> {
        crate::scratch::with_thread_workspace_capped(
            self.ntk.backend().arena_retention_cap_bytes(),
            |workspace| {
                let ntk = self.ntk.evaluate_pack_in(cells, dataset, seed, workspace)?;
                let lr = self
                    .linear_regions
                    .evaluate_pack_in(cells, dataset, seed, workspace)?;
                Ok(ntk
                    .into_iter()
                    .zip(lr)
                    .map(|(n, l)| ZeroCostMetrics {
                        ntk_condition: n.condition_number,
                        linear_regions: l.regions,
                        trainability: n.trainability_score(),
                        expressivity: l.expressivity_score(),
                    })
                    .collect())
            },
        )
    }
}

impl Default for ZeroCostEvaluator {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use micronas_searchspace::{Operation, SearchSpace};

    #[test]
    fn evaluate_produces_consistent_scores() {
        let space = SearchSpace::nas_bench_201();
        let eval = ZeroCostEvaluator::fast();
        let metrics = eval
            .evaluate(space.cell(4_242).unwrap(), DatasetKind::Cifar10, 1)
            .unwrap();
        assert!(metrics.ntk_condition >= 1.0);
        assert!(metrics.linear_regions >= 1);
        assert!((metrics.trainability - -(metrics.ntk_condition.max(1.0)).ln()).abs() < 1e-9);
        assert!((metrics.expressivity - (metrics.linear_regions as f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn conv_rich_cell_beats_pool_cell_on_both_axes() {
        let eval = ZeroCostEvaluator::fast();
        let rich = CellTopology::new([
            Operation::NorConv3x3,
            Operation::SkipConnect,
            Operation::NorConv3x3,
            Operation::SkipConnect,
            Operation::NorConv1x1,
            Operation::NorConv3x3,
        ]);
        let poor = CellTopology::new([Operation::AvgPool3x3; 6]);
        let a = eval.evaluate(rich, DatasetKind::Cifar10, 2).unwrap();
        let b = eval.evaluate(poor, DatasetKind::Cifar10, 2).unwrap();
        assert!(a.trainability > b.trainability);
        assert!(a.expressivity > b.expressivity);
    }

    /// The combined pack entry must reproduce solo evaluation bitwise for
    /// every member, across the regimes the search strategies hit (width 1,
    /// partial packs, full packs, duplicated cells).
    #[test]
    fn packed_evaluation_is_bitwise_identical_to_solo() {
        let space = SearchSpace::nas_bench_201();
        let mut cells: Vec<_> = [7_000usize, 404, 0]
            .iter()
            .map(|&i| space.cell(i).unwrap())
            .collect();
        // Duplicates are legal pack members (the context layer dedups, the
        // evaluator must not depend on it).
        cells.push(cells[0]);
        let eval = ZeroCostEvaluator::fast();
        for width in [1usize, 2, cells.len()] {
            let members = &cells[..width];
            let packed = eval
                .evaluate_pack(members, DatasetKind::Cifar10, 11)
                .unwrap();
            assert_eq!(packed.len(), width);
            for (i, cell) in members.iter().enumerate() {
                let solo = eval.evaluate(*cell, DatasetKind::Cifar10, 11).unwrap();
                assert_eq!(solo, packed[i], "width {width} member {i}");
            }
        }
        assert!(eval
            .evaluate_pack(&[], DatasetKind::Cifar10, 11)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn accessors_expose_sub_evaluators() {
        let eval = ZeroCostEvaluator::fast();
        assert_eq!(eval.ntk().config().batch_size, NtkConfig::fast().batch_size);
        assert_eq!(
            eval.linear_regions().config().num_segments,
            LinearRegionConfig::fast().num_segments
        );
    }
}
