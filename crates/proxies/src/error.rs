use std::fmt;

/// Errors produced while evaluating zero-cost proxies.
#[derive(Debug, Clone, PartialEq)]
pub enum ProxyError {
    /// The underlying network substrate failed.
    Network(String),
    /// The dataset sampler failed.
    Dataset(String),
    /// The eigenvalue computation failed.
    Eigen(String),
    /// An invalid configuration was supplied.
    InvalidConfig(String),
}

impl fmt::Display for ProxyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProxyError::Network(msg) => write!(f, "proxy network failure: {msg}"),
            ProxyError::Dataset(msg) => write!(f, "dataset sampling failure: {msg}"),
            ProxyError::Eigen(msg) => write!(f, "eigenvalue computation failure: {msg}"),
            ProxyError::InvalidConfig(msg) => write!(f, "invalid proxy configuration: {msg}"),
        }
    }
}

impl std::error::Error for ProxyError {}

impl From<micronas_nn::NnError> for ProxyError {
    fn from(e: micronas_nn::NnError) -> Self {
        ProxyError::Network(e.to_string())
    }
}

impl From<micronas_datasets::DatasetError> for ProxyError {
    fn from(e: micronas_datasets::DatasetError) -> Self {
        ProxyError::Dataset(e.to_string())
    }
}

impl From<micronas_tensor::TensorError> for ProxyError {
    fn from(e: micronas_tensor::TensorError) -> Self {
        ProxyError::Eigen(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: ProxyError = micronas_nn::NnError::InvalidConfig("x".into()).into();
        assert!(matches!(e, ProxyError::Network(_)));
        let e: ProxyError = micronas_datasets::DatasetError::InvalidRequest("y".into()).into();
        assert!(e.to_string().contains("dataset"));
        let e: ProxyError = micronas_tensor::TensorError::Numerical("z".into()).into();
        assert!(e.to_string().contains("eigenvalue"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ProxyError>();
    }
}
