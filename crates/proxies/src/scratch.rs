//! Per-thread scratch arena shared by the proxy evaluators.
//!
//! Proxy evaluation is called once per candidate, thousands of times per
//! search, and its batch-level tensors are large enough that fresh
//! allocations per call cost mmap round-trips and page faults. A
//! thread-local [`Workspace`] keeps those buffers hot across candidates —
//! each rayon worker owns its own arena, so parallel scoring stays
//! deterministic and lock-free. The NTK and linear-region evaluators share
//! one arena per thread, so buffers stay warm across *both* halves of every
//! candidate evaluation; [`Workspace::reset_if_larger_than`] on the way out
//! stops one huge probe geometry from pinning peak memory for the rest of
//! the run without churning the steady-state buffers.

use micronas_tensor::Workspace;
use std::cell::RefCell;

thread_local! {
    static PROXY_WORKSPACE: RefCell<Workspace> = RefCell::new(Workspace::new());
}

/// Arena footprint above which the thread workspace is released after an
/// evaluation. Paper-scale evaluation needs a few tens of MiB; only a
/// far-out-of-band probe geometry trips this, so ordinary candidate streams
/// never re-allocate between evaluations. Equals
/// [`micronas_tensor::DEFAULT_ARENA_RETENTION_CAP`]; backends with a
/// different working set override it through
/// [`micronas_tensor::KernelBackend::arena_retention_cap_bytes`] (the
/// evaluators thread that policy via [`with_thread_workspace_capped`]).
const MAX_ARENA_BYTES: usize = micronas_tensor::DEFAULT_ARENA_RETENTION_CAP;

/// Runs `f` with this thread's proxy workspace, releasing the arena
/// afterwards only if an outsized evaluation blew it past the 64 MiB
/// retention cap (`MAX_ARENA_BYTES`).
///
/// Public so external [`crate::Proxy`] implementations share the same warm
/// arena as the built-in evaluators (the trait's provided
/// [`crate::Proxy::evaluate`] goes through here).
///
/// # Panics
///
/// Panics if called re-entrantly from inside `f` (the evaluators never nest).
pub fn with_thread_workspace<R>(f: impl FnOnce(&mut Workspace) -> R) -> R {
    with_thread_workspace_capped(MAX_ARENA_BYTES, f)
}

/// [`with_thread_workspace`] with an explicit retention cap — the
/// execution-backend workspace policy
/// ([`micronas_tensor::KernelBackend::arena_retention_cap_bytes`]). The
/// arena is shared per thread regardless of the cap; the cap only decides
/// when it is released on the way out.
///
/// # Panics
///
/// Panics if called re-entrantly from inside `f` (the evaluators never nest).
pub fn with_thread_workspace_capped<R>(cap_bytes: usize, f: impl FnOnce(&mut Workspace) -> R) -> R {
    PROXY_WORKSPACE.with(|cell| {
        let mut ws = cell.borrow_mut();
        let out = f(&mut ws);
        ws.reset_if_larger_than(cap_bytes);
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_persists_within_a_thread_and_outsized_arenas_are_released() {
        let cap_after_big = with_thread_workspace(|ws| {
            let t = ws.take_zeroed(1 << 18);
            ws.recycle(t);
            ws.capacity_bytes()
        });
        assert!(cap_after_big >= (1 << 18) * 4);
        // An ordinary-sized arena persists across evaluations (the whole
        // point: NTK and linear-region passes share warm buffers).
        let cap_at_next_entry = with_thread_workspace(|ws| ws.capacity_bytes());
        assert_eq!(cap_at_next_entry, cap_after_big);
        // An outsized evaluation is released on the way out.
        with_thread_workspace(|ws| {
            let t = ws.take_zeroed(MAX_ARENA_BYTES / 4 + 1);
            ws.recycle(t);
        });
        let cap_after_outsized = with_thread_workspace(|ws| ws.capacity_bytes());
        assert_eq!(cap_after_outsized, 0, "outsized arena must be released");
    }
}
