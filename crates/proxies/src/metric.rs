//! The [`MetricSet`]: an ordered `metric id → value` map.
//!
//! Search objectives used to consume a hardcoded struct with exactly two
//! proxy scores. A [`MetricSet`] generalises that surface: every proxy
//! ([`crate::Proxy`]) contributes one named scalar, objectives weight
//! metrics *by id*, and adding a proxy to a pipeline never changes a type
//! signature. Entries keep their insertion order, so iterating a set — and
//! anything derived from that iteration order, like an objective sum — is
//! deterministic.

use serde::{Deserialize, Serialize};

/// Well-known metric ids produced by the built-in proxies.
///
/// Custom proxies may use any id that does not collide with these; ids are
/// part of a proxy's stable identity (see [`crate::Proxy::id`]) and should
/// never change once results are persisted.
pub mod metric_ids {
    /// Trainability score: negated log NTK condition number (larger is
    /// better). Produced by the NTK proxy.
    pub const TRAINABILITY: &str = "trainability";
    /// Expressivity score: log linear-region count (larger is better).
    /// Produced by the linear-region proxy.
    pub const EXPRESSIVITY: &str = "expressivity";
    /// Raw NTK condition number (smaller is better; reported alongside
    /// [`TRAINABILITY`] for analysis).
    pub const NTK_CONDITION: &str = "ntk_condition";
    /// Raw linear-region count (larger is better; reported alongside
    /// [`EXPRESSIVITY`] for analysis).
    pub const LINEAR_REGIONS: &str = "linear_regions";
    /// SynFlow-style parameter-saliency score (larger is better).
    pub const SYNFLOW: &str = "synflow";
    /// Jacobian-covariance score (larger is better).
    pub const JACOBIAN_COVARIANCE: &str = "jacob_cov";

    /// The metric ids every candidate's [`crate::MetricSet`] always carries
    /// (published by the built-in zero-cost indicators, in publication
    /// order). Pluggable-proxy ids must not collide with these — the single
    /// source of truth for that validation; extend it whenever
    /// `ZeroCostMetrics::metric_set` gains an entry.
    pub const BUILT_IN: [&str; 4] = [NTK_CONDITION, LINEAR_REGIONS, TRAINABILITY, EXPRESSIVITY];
}

/// An ordered collection of named metric values.
///
/// Semantically a map from metric id to `f64`, but backed by an insertion
/// ordered vector: iteration order is the order metrics were inserted,
/// which makes downstream reductions (objective sums, report layouts)
/// deterministic and reproducible.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricSet {
    entries: Vec<(String, f64)>,
}

impl MetricSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty set with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            entries: Vec::with_capacity(capacity),
        }
    }

    /// Inserts (or replaces, keeping the original position) a metric value.
    pub fn insert(&mut self, id: impl Into<String>, value: f64) {
        let id = id.into();
        match self.entries.iter_mut().find(|(k, _)| *k == id) {
            Some((_, v)) => *v = value,
            None => self.entries.push((id, value)),
        }
    }

    /// Builder-style [`MetricSet::insert`].
    #[must_use]
    pub fn with(mut self, id: impl Into<String>, value: f64) -> Self {
        self.insert(id, value);
        self
    }

    /// The value of a metric, if present.
    pub fn get(&self, id: &str) -> Option<f64> {
        self.entries.iter().find(|(k, _)| k == id).map(|&(_, v)| v)
    }

    /// Typed accessor for integer-valued metrics (counts). Returns `None`
    /// for missing metrics and for values that are not non-negative whole
    /// numbers.
    pub fn count(&self, id: &str) -> Option<usize> {
        let v = self.get(id)?;
        // Strict `<`: `usize::MAX as f64` rounds up to 2^64, which is NOT
        // representable as usize — `<=` would accept it and saturate.
        (v >= 0.0 && v.fract() == 0.0 && v < usize::MAX as f64).then_some(v as usize)
    }

    /// Typed accessor: the trainability score ([`metric_ids::TRAINABILITY`]).
    pub fn trainability(&self) -> Option<f64> {
        self.get(metric_ids::TRAINABILITY)
    }

    /// Typed accessor: the expressivity score ([`metric_ids::EXPRESSIVITY`]).
    pub fn expressivity(&self) -> Option<f64> {
        self.get(metric_ids::EXPRESSIVITY)
    }

    /// Typed accessor: the raw NTK condition number
    /// ([`metric_ids::NTK_CONDITION`]).
    pub fn ntk_condition(&self) -> Option<f64> {
        self.get(metric_ids::NTK_CONDITION)
    }

    /// Typed accessor: the raw linear-region count
    /// ([`metric_ids::LINEAR_REGIONS`]).
    pub fn linear_regions(&self) -> Option<usize> {
        self.count(metric_ids::LINEAR_REGIONS)
    }

    /// Whether a metric is present.
    pub fn contains(&self, id: &str) -> bool {
        self.entries.iter().any(|(k, _)| k == id)
    }

    /// Iterates `(id, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Metric ids in insertion order.
    pub fn ids(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(k, _)| k.as_str())
    }

    /// Number of metrics in the set.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl FromIterator<(String, f64)> for MetricSet {
    fn from_iter<T: IntoIterator<Item = (String, f64)>>(iter: T) -> Self {
        let mut set = MetricSet::new();
        for (id, value) in iter {
            set.insert(id, value);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insertion_order_is_preserved_and_replacement_keeps_position() {
        let mut m = MetricSet::new();
        m.insert("b", 2.0);
        m.insert("a", 1.0);
        m.insert("c", 3.0);
        m.insert("a", 10.0);
        let ids: Vec<&str> = m.ids().collect();
        assert_eq!(ids, ["b", "a", "c"]);
        assert_eq!(m.get("a"), Some(10.0));
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn typed_accessors() {
        let m = MetricSet::new()
            .with(metric_ids::TRAINABILITY, -2.5)
            .with(metric_ids::EXPRESSIVITY, 3.0)
            .with(metric_ids::NTK_CONDITION, 12.18)
            .with(metric_ids::LINEAR_REGIONS, 20.0);
        assert_eq!(m.trainability(), Some(-2.5));
        assert_eq!(m.expressivity(), Some(3.0));
        assert_eq!(m.ntk_condition(), Some(12.18));
        assert_eq!(m.linear_regions(), Some(20));
        assert_eq!(m.get("missing"), None);
        assert_eq!(m.count(metric_ids::NTK_CONDITION), None, "12.18 not whole");
        assert!(!m.contains(metric_ids::SYNFLOW));
    }

    #[test]
    fn count_rejects_negatives_and_fractions() {
        let m = MetricSet::new().with("neg", -1.0).with("frac", 1.5);
        assert_eq!(m.count("neg"), None);
        assert_eq!(m.count("frac"), None);
        assert_eq!(m.count("absent"), None);
    }

    #[test]
    fn from_iterator_collects_in_order() {
        let m: MetricSet = vec![("x".to_string(), 1.0), ("y".to_string(), 2.0)]
            .into_iter()
            .collect();
        let ids: Vec<&str> = m.ids().collect();
        assert_eq!(ids, ["x", "y"]);
        assert!(!m.is_empty());
    }
}
