//! Zero-cost proxies for train-free architecture ranking.
//!
//! MicroNAS scores candidate architectures at random initialisation with two
//! network-analysis indicators plus hardware proxies (the latter live in
//! `micronas-hw`):
//!
//! * **Trainability** — the condition number of the neural tangent kernel
//!   (NTK) Gram matrix of a single mini-batch ([`NtkEvaluator`], §II-A.1 of
//!   the paper). Small condition numbers indicate well-conditioned training
//!   dynamics. The evaluator also exposes the generalised index
//!   `K_i = λ_max / λ_i` needed for the Fig. 2a sweep and supports arbitrary
//!   batch sizes for the Fig. 2b sweep.
//! * **Expressivity** — the number of linear regions the ReLU network carves
//!   the input space into ([`LinearRegionEvaluator`], §II-A.2). The count is
//!   estimated by walking random segments through input space and counting
//!   activation-pattern transitions, a graded estimator that stays
//!   informative at proxy scale.
//!
//! [`ZeroCostEvaluator`] bundles both indicators, and [`correlation`]
//! provides the Kendall-τ / Spearman rank statistics used throughout the
//! paper's analysis.
//!
//! # Example
//!
//! ```no_run
//! use micronas_datasets::DatasetKind;
//! use micronas_proxies::{NtkConfig, NtkEvaluator};
//! use micronas_searchspace::SearchSpace;
//!
//! let space = SearchSpace::nas_bench_201();
//! let evaluator = NtkEvaluator::new(NtkConfig::fast());
//! let report = evaluator.evaluate(space.cell(8_888).unwrap(), DatasetKind::Cifar10, 0).unwrap();
//! println!("condition number: {}", report.condition_number);
//! ```

#![warn(missing_docs)]

pub mod correlation;
mod error;
mod linear_regions;
mod ntk;
mod scratch;
mod zero_cost;

pub use error::ProxyError;
pub use linear_regions::{LinearRegionConfig, LinearRegionEvaluator, LinearRegionReport};
pub use ntk::{GradientPath, NtkConfig, NtkEvaluator, NtkReport};
pub use zero_cost::{ZeroCostEvaluator, ZeroCostMetrics};

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ProxyError>;
