//! Zero-cost proxies for train-free architecture ranking.
//!
//! MicroNAS scores candidate architectures at random initialisation with two
//! network-analysis indicators plus hardware proxies (the latter live in
//! `micronas-hw`):
//!
//! * **Trainability** — the condition number of the neural tangent kernel
//!   (NTK) Gram matrix of a single mini-batch ([`NtkEvaluator`], §II-A.1 of
//!   the paper). Small condition numbers indicate well-conditioned training
//!   dynamics. The evaluator also exposes the generalised index
//!   `K_i = λ_max / λ_i` needed for the Fig. 2a sweep and supports arbitrary
//!   batch sizes for the Fig. 2b sweep.
//! * **Expressivity** — the number of linear regions the ReLU network carves
//!   the input space into ([`LinearRegionEvaluator`], §II-A.2). The count is
//!   estimated by walking random segments through input space and counting
//!   activation-pattern transitions, a graded estimator that stays
//!   informative at proxy scale.
//!
//! [`ZeroCostEvaluator`] bundles both indicators, and [`correlation`]
//! provides the Kendall-τ / Spearman rank statistics used throughout the
//! paper's analysis.
//!
//! # The pluggable proxy surface
//!
//! Every indicator is also available as a [`Proxy`] — an object-safe trait
//! with a stable string id, a configuration fingerprint (both feed the
//! evaluation store's persistent keys) and a workspace-threaded
//! `evaluate → f64` (larger is better). [`MetricSet`] carries the resulting
//! named scores, and two additional proxies ship as proof of extensibility:
//! [`SynFlowProxy`] (parameter saliency) and [`JacobianCovarianceProxy`]
//! (gradient diversity). Adding an indicator to a search is "implement
//! [`Proxy`], register it" — no enum to extend, no signature to change.
//!
//! # Example
//!
//! ```no_run
//! use micronas_datasets::DatasetKind;
//! use micronas_proxies::{NtkConfig, NtkProxy, Proxy, SynFlowConfig, SynFlowProxy};
//! use micronas_searchspace::SearchSpace;
//!
//! let space = SearchSpace::nas_bench_201();
//! let proxies: Vec<Box<dyn Proxy>> = vec![
//!     Box::new(NtkProxy::new(NtkConfig::fast())),
//!     Box::new(SynFlowProxy::new(SynFlowConfig::fast())),
//! ];
//! for proxy in &proxies {
//!     let score = proxy.evaluate(space.cell(8_888).unwrap(), DatasetKind::Cifar10, 0).unwrap();
//!     println!("{}: {score}", proxy.id());
//! }
//! ```

#![warn(missing_docs)]

pub mod correlation;
mod error;
mod jacobian;
mod linear_regions;
mod metric;
mod ntk;
mod proxy;
mod scratch;
mod synflow;
mod zero_cost;

pub use error::ProxyError;
pub use jacobian::{JacobianCovarianceConfig, JacobianCovarianceProxy};
pub use linear_regions::{LinearRegionConfig, LinearRegionEvaluator, LinearRegionReport};
pub use metric::{metric_ids, MetricSet};
pub use ntk::{GradientPath, NtkConfig, NtkEvaluator, NtkReport};
pub use proxy::{fingerprint_network, fold_backend, LinearRegionProxy, NtkProxy, Proxy};
pub use scratch::{with_thread_workspace, with_thread_workspace_capped};
pub use synflow::{SynFlowConfig, SynFlowProxy};
pub use zero_cost::{ZeroCostEvaluator, ZeroCostMetrics};

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ProxyError>;
