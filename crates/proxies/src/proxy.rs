//! The [`Proxy`] trait: the pluggable evaluation surface of the pipeline.
//!
//! A proxy is a train-free scoring function of an architecture. Every proxy
//! carries a **stable string id** and a **configuration fingerprint**; the
//! pair forms the proxy's persistent identity, which evaluation stores use
//! to key cached results (`micronas-store` hashes them into its
//! `ProxyKind::Custom` arm). Scores are plain `f64` values, **larger is
//! better**, so per-metric objective weights compose them without
//! per-proxy special cases.
//!
//! The built-in indicators — NTK trainability ([`NtkProxy`]), linear-region
//! expressivity ([`LinearRegionProxy`]), SynFlow-style saliency
//! ([`crate::SynFlowProxy`]) and the Jacobian-covariance score
//! ([`crate::JacobianCovarianceProxy`]) — all implement the trait; external
//! crates can implement it for their own indicators and plug them into a
//! search session unchanged.

use crate::{LinearRegionConfig, LinearRegionEvaluator, NtkConfig, NtkEvaluator, Result};
use micronas_datasets::DatasetKind;
use micronas_nn::ProxyNetworkConfig;
use micronas_searchspace::CellTopology;
use micronas_tensor::{hash_mix, InitKind, Workspace};

/// A pluggable zero-cost proxy.
///
/// Implementations must be pure functions of `(cell, dataset, seed,
/// configuration)`: two calls with identical inputs return bitwise-identical
/// scores, on any thread, so results can be cached, shared across processes
/// and reproduced exactly.
pub trait Proxy: Send + Sync {
    /// Stable string id of the proxy family (e.g. `"ntk"`, `"synflow"`).
    ///
    /// The id doubles as the metric id the score is published under, and is
    /// hashed into persistent store keys — it must never change once results
    /// have been persisted.
    fn id(&self) -> &str;

    /// Stable fingerprint of the proxy's configuration values.
    ///
    /// Two instances with the same id but different fingerprints must never
    /// share cached results. Hash explicit value encodings (field bits
    /// folded with a fixed mix), never `Debug` renderings or `std` hashes,
    /// whose output can drift across toolchains.
    fn config_fingerprint(&self) -> u64;

    /// Evaluates the proxy score of `cell` (larger is better), threading an
    /// explicit scratch arena.
    ///
    /// # Errors
    ///
    /// Returns a [`crate::ProxyError`] if the configuration is invalid or an
    /// underlying numerical step fails.
    fn evaluate_with(
        &self,
        cell: CellTopology,
        dataset: DatasetKind,
        seed: u64,
        workspace: &mut Workspace,
    ) -> Result<f64>;

    /// [`Proxy::evaluate_with`] on the shared per-thread scratch arena
    /// ([`crate::with_thread_workspace`]), which stays warm across
    /// candidates.
    ///
    /// # Errors
    ///
    /// Propagates [`Proxy::evaluate_with`] failures.
    fn evaluate(&self, cell: CellTopology, dataset: DatasetKind, seed: u64) -> Result<f64> {
        crate::with_thread_workspace(|workspace| self.evaluate_with(cell, dataset, seed, workspace))
    }
}

/// Folds a [`ProxyNetworkConfig`] into a fingerprint accumulator with the
/// shared stable mix. Public so external [`Proxy`] implementations reusing
/// the proxy-network substrate fingerprint it consistently.
pub fn fingerprint_network(mut h: u64, net: &ProxyNetworkConfig) -> u64 {
    for v in [
        net.input_channels,
        net.input_resolution,
        net.channels,
        net.num_cells,
        net.num_classes,
    ] {
        h = hash_mix(h, v as u64);
    }
    let init_tag: u64 = match net.init {
        InitKind::KaimingNormal => 0,
        InitKind::KaimingUniform => 1,
        InitKind::XavierUniform => 2,
    };
    hash_mix(h, init_tag)
}

/// Folds an execution backend's identity into a proxy fingerprint — but
/// **only** for backends that are not bitwise-identical to the paper
/// default. A backend with divergent numerics produces different scores for
/// the same `(cell, dataset, seed, config)` and must therefore never share
/// cached results with the default pipeline; the paper-default backend folds
/// nothing, so pre-existing fingerprints (and every record persisted under
/// them) stay valid. Public so external [`Proxy`] implementations that
/// thread a backend apply the same rule.
pub fn fold_backend(h: u64, backend: &dyn micronas_tensor::KernelBackend) -> u64 {
    if backend.bitwise_paper_identical() {
        h
    } else {
        hash_mix(h, backend.config_fingerprint())
    }
}

/// Seed of every fingerprint chain ("MicroNAS" in ASCII).
const FINGERPRINT_SEED: u64 = 0x4D69_6372_6F4E_4153;

/// Domain-separation seed for proxy config fingerprints: `hash_mix` chains
/// started from distinct per-proxy tags can never collide structurally.
pub(crate) fn fingerprint_domain(tag: &str) -> u64 {
    tag.bytes()
        .fold(FINGERPRINT_SEED, |h, b| hash_mix(h, b as u64))
}

/// The NTK trainability indicator as a pluggable [`Proxy`].
///
/// Publishes the trainability score (negated log condition number, larger
/// is better) under the id [`crate::metric_ids::TRAINABILITY`]'s producer id
/// `"ntk"`.
#[derive(Debug, Clone)]
pub struct NtkProxy {
    evaluator: NtkEvaluator,
}

impl NtkProxy {
    /// Wraps an NTK configuration.
    pub fn new(config: NtkConfig) -> Self {
        Self {
            evaluator: NtkEvaluator::new(config),
        }
    }

    /// Wraps a fully configured evaluator (e.g. one pinned to a
    /// non-default execution backend via [`NtkEvaluator::with_backend`]).
    pub fn from_evaluator(evaluator: NtkEvaluator) -> Self {
        Self { evaluator }
    }

    /// The underlying evaluator.
    pub fn evaluator(&self) -> &NtkEvaluator {
        &self.evaluator
    }
}

impl Proxy for NtkProxy {
    fn id(&self) -> &str {
        "ntk"
    }

    fn config_fingerprint(&self) -> u64 {
        let c = self.evaluator.config();
        let mut h = fingerprint_domain("micronas/proxy/ntk");
        h = hash_mix(h, c.batch_size as u64);
        h = hash_mix(h, c.repeats as u64);
        h = hash_mix(h, c.max_condition_index as u64);
        h = fingerprint_network(h, &c.network);
        // The gradient formulation is part of the numerics (the two Gram
        // builds differ at reduction-order level, and under a non-default
        // backend the looped path runs entirely different kernels). The
        // default ([`crate::GradientPath::Batched`]) folds nothing, so
        // fingerprints minted before this knob existed stay valid.
        if self.evaluator.gradient_path() != crate::GradientPath::Batched {
            h = hash_mix(h, 1);
        }
        fold_backend(h, self.evaluator.backend().as_ref())
    }

    fn evaluate_with(
        &self,
        cell: CellTopology,
        dataset: DatasetKind,
        seed: u64,
        workspace: &mut Workspace,
    ) -> Result<f64> {
        Ok(self
            .evaluator
            .evaluate_in(cell, dataset, seed, workspace)?
            .trainability_score())
    }
}

/// The linear-region expressivity indicator as a pluggable [`Proxy`].
///
/// Publishes the expressivity score (log region count, larger is better)
/// under the id `"linear_region_score"` — deliberately *not*
/// [`crate::metric_ids::LINEAR_REGIONS`], which names the built-in raw-count
/// metric every candidate already carries (plugin ids may not collide with
/// built-in metric ids, or the plugin would overwrite the built-in entry).
/// This keeps the adapter registrable alongside the built-ins, e.g. to run
/// a second linear-region probe at a different segment count.
#[derive(Debug, Clone)]
pub struct LinearRegionProxy {
    evaluator: LinearRegionEvaluator,
}

impl LinearRegionProxy {
    /// Wraps a linear-region configuration.
    pub fn new(config: LinearRegionConfig) -> Self {
        Self {
            evaluator: LinearRegionEvaluator::new(config),
        }
    }

    /// Wraps a fully configured evaluator — in particular one pinned to the
    /// int8 MCU backend via [`LinearRegionEvaluator::with_backend`], which
    /// probes the expressivity that survives 8-bit deployment arithmetic.
    pub fn from_evaluator(evaluator: LinearRegionEvaluator) -> Self {
        Self { evaluator }
    }

    /// The underlying evaluator.
    pub fn evaluator(&self) -> &LinearRegionEvaluator {
        &self.evaluator
    }
}

impl Proxy for LinearRegionProxy {
    fn id(&self) -> &str {
        "linear_region_score"
    }

    fn config_fingerprint(&self) -> u64 {
        let c = self.evaluator.config();
        let mut h = fingerprint_domain("micronas/proxy/linear_regions");
        h = hash_mix(h, c.num_segments as u64);
        h = hash_mix(h, c.points_per_segment as u64);
        h = fingerprint_network(h, &c.network);
        fold_backend(h, self.evaluator.backend().as_ref())
    }

    fn evaluate_with(
        &self,
        cell: CellTopology,
        dataset: DatasetKind,
        seed: u64,
        workspace: &mut Workspace,
    ) -> Result<f64> {
        Ok(self
            .evaluator
            .evaluate_in(cell, dataset, seed, workspace)?
            .expressivity_score())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric_ids;
    use micronas_searchspace::SearchSpace;

    #[test]
    fn built_in_proxies_match_their_evaluators() {
        let space = SearchSpace::nas_bench_201();
        let cell = space.cell(8_888).unwrap();

        let ntk = NtkProxy::new(NtkConfig::fast());
        let direct = NtkEvaluator::new(NtkConfig::fast())
            .evaluate(cell, DatasetKind::Cifar10, 3)
            .unwrap();
        assert_eq!(
            ntk.evaluate(cell, DatasetKind::Cifar10, 3).unwrap(),
            direct.trainability_score(),
            "the trait adapter must be bitwise-identical to the evaluator"
        );

        let lr = LinearRegionProxy::new(LinearRegionConfig::fast());
        let direct = LinearRegionEvaluator::new(LinearRegionConfig::fast())
            .evaluate(cell, DatasetKind::Cifar10, 3)
            .unwrap();
        assert_eq!(
            lr.evaluate(cell, DatasetKind::Cifar10, 3).unwrap(),
            direct.expressivity_score()
        );
    }

    #[test]
    fn fingerprints_track_configuration_values() {
        let a = NtkProxy::new(NtkConfig::fast());
        let b = NtkProxy::new(NtkConfig::fast());
        assert_eq!(a.config_fingerprint(), b.config_fingerprint());
        let c = NtkProxy::new(NtkConfig::fast().with_batch_size(16));
        assert_ne!(a.config_fingerprint(), c.config_fingerprint());

        let d = LinearRegionProxy::new(LinearRegionConfig::fast());
        let mut cfg = LinearRegionConfig::fast();
        cfg.num_segments += 1;
        let e = LinearRegionProxy::new(cfg);
        assert_ne!(d.config_fingerprint(), e.config_fingerprint());
        // Different proxy families never share a fingerprint domain.
        assert_ne!(a.config_fingerprint(), d.config_fingerprint());
    }

    #[test]
    fn ids_are_stable() {
        assert_eq!(NtkProxy::new(NtkConfig::fast()).id(), "ntk");
        assert_eq!(
            LinearRegionProxy::new(LinearRegionConfig::fast()).id(),
            "linear_region_score",
            "must not collide with the built-in raw-count metric id"
        );
        assert_ne!(
            LinearRegionProxy::new(LinearRegionConfig::fast()).id(),
            metric_ids::LINEAR_REGIONS
        );
    }

    #[test]
    fn proxies_are_object_safe_and_shareable() {
        let proxies: Vec<std::sync::Arc<dyn Proxy>> = vec![
            std::sync::Arc::new(NtkProxy::new(NtkConfig::fast())),
            std::sync::Arc::new(LinearRegionProxy::new(LinearRegionConfig::fast())),
        ];
        let ids: Vec<&str> = proxies.iter().map(|p| p.id()).collect();
        assert_eq!(ids, ["ntk", "linear_region_score"]);
    }
}
