//! Rank-correlation statistics (Kendall-τ, Spearman ρ).
//!
//! The paper's Fig. 2 reports Kendall-τ between proxy scores and final
//! accuracies across a sample of architectures; these are the reference
//! implementations used by the reproduction.

/// Kendall rank correlation coefficient (τ-b, tie-corrected).
///
/// Returns a value in `[-1, 1]`; 0.0 for degenerate inputs (fewer than two
/// points or all-tied rankings).
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Example
///
/// ```
/// use micronas_proxies::correlation::kendall_tau;
/// let x = [1.0, 2.0, 3.0, 4.0];
/// let y = [10.0, 20.0, 30.0, 40.0];
/// assert!((kendall_tau(&x, &y) - 1.0).abs() < 1e-12);
/// ```
pub fn kendall_tau(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "kendall_tau: length mismatch");
    let n = x.len();
    if n < 2 {
        return 0.0;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    let mut ties_x = 0i64;
    let mut ties_y = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = x[i] - x[j];
            let dy = y[i] - y[j];
            if dx == 0.0 && dy == 0.0 {
                // Tied in both: contributes to neither.
            } else if dx == 0.0 {
                ties_x += 1;
            } else if dy == 0.0 {
                ties_y += 1;
            } else if dx * dy > 0.0 {
                concordant += 1;
            } else {
                discordant += 1;
            }
        }
    }
    let n0 = (n * (n - 1) / 2) as f64;
    let n1 = ties_x as f64;
    let n2 = ties_y as f64;
    let denom = ((n0 - n1) * (n0 - n2)).sqrt();
    if denom <= 0.0 {
        return 0.0;
    }
    (concordant - discordant) as f64 / denom
}

/// Spearman rank correlation coefficient.
///
/// Ranks are mid-ranked for ties; returns 0.0 for degenerate inputs.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn spearman_rho(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "spearman_rho: length mismatch");
    let n = x.len();
    if n < 2 {
        return 0.0;
    }
    let rx = ranks(x);
    let ry = ranks(y);
    pearson(&rx, &ry)
}

/// Mid-rank assignment used by [`spearman_rho`].
fn ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        values[a]
            .partial_cmp(&values[b])
            .expect("values are finite")
    });
    let mut out = vec![0.0f64; n];
    let mut i = 0usize;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        let mid = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            out[idx] = mid;
        }
        i = j + 1;
    }
    out
}

/// Pearson correlation of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "pearson: length mismatch");
    let n = x.len();
    if n < 2 {
        return 0.0;
    }
    let mx = x.iter().sum::<f64>() / n as f64;
    let my = y.iter().sum::<f64>() / n as f64;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for i in 0..n {
        cov += (x[i] - mx) * (y[i] - my);
        vx += (x[i] - mx).powi(2);
        vy += (y[i] - my).powi(2);
    }
    let denom = (vx * vy).sqrt();
    if denom <= 0.0 {
        0.0
    } else {
        cov / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_agreement_and_disagreement() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y_up = [2.0, 4.0, 6.0, 8.0, 10.0];
        let y_down = [5.0, 4.0, 3.0, 2.0, 1.0];
        assert!((kendall_tau(&x, &y_up) - 1.0).abs() < 1e-12);
        assert!((kendall_tau(&x, &y_down) + 1.0).abs() < 1e-12);
        assert!((spearman_rho(&x, &y_up) - 1.0).abs() < 1e-12);
        assert!((spearman_rho(&x, &y_down) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_kendall_value() {
        // Classic example: one discordant pair out of six.
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [1.0, 2.0, 4.0, 3.0];
        assert!((kendall_tau(&x, &y) - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_return_zero() {
        assert_eq!(kendall_tau(&[], &[]), 0.0);
        assert_eq!(kendall_tau(&[1.0], &[2.0]), 0.0);
        assert_eq!(kendall_tau(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(spearman_rho(&[1.0, 1.0], &[2.0, 2.0]), 0.0);
        assert_eq!(pearson(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn ties_are_handled_with_midranks() {
        let x = [1.0, 2.0, 2.0, 3.0];
        let r = ranks(&x);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    #[should_panic]
    fn length_mismatch_panics() {
        let _ = kendall_tau(&[1.0], &[1.0, 2.0]);
    }

    proptest! {
        #[test]
        fn tau_is_symmetric_and_bounded(
            pairs in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 2..40)
        ) {
            let x: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let y: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            let t1 = kendall_tau(&x, &y);
            let t2 = kendall_tau(&y, &x);
            prop_assert!((t1 - t2).abs() < 1e-12);
            prop_assert!((-1.0..=1.0).contains(&t1));
            let s = spearman_rho(&x, &y);
            prop_assert!((-1.0001..=1.0001).contains(&s));
        }

        #[test]
        fn tau_invariant_under_monotone_transform(
            xs in proptest::collection::vec(-50.0f64..50.0, 2..30)
        ) {
            let ys: Vec<f64> = xs.iter().map(|x| x * 3.0 + 7.0).collect();
            let zs: Vec<f64> = xs.iter().map(|x| x.exp().min(1e30)).collect();
            prop_assert!((kendall_tau(&xs, &ys) - 1.0).abs() < 1e-9);
            prop_assert!(kendall_tau(&xs, &zs) > 0.99);
        }
    }
}
