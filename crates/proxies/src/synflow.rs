//! SynFlow-style parameter-saliency proxy.

use crate::proxy::{fingerprint_domain, fingerprint_network, Proxy};
use crate::{ProxyError, Result};
use micronas_datasets::DatasetKind;
use micronas_nn::{CellNetwork, ProxyNetworkConfig};
use micronas_searchspace::CellTopology;
use micronas_tensor::{Shape, Tensor, Workspace};
use serde::{Deserialize, Serialize};

/// Configuration of the SynFlow-style saliency proxy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SynFlowConfig {
    /// Geometry of the randomly initialised probe network.
    pub network: ProxyNetworkConfig,
}

impl SynFlowConfig {
    /// Paper-scale probe geometry (matches the NTK proxy's default network).
    pub fn paper_default() -> Self {
        Self {
            network: ProxyNetworkConfig::proxy_default(10),
        }
    }

    /// A fast configuration for unit tests and quick searches.
    pub fn fast() -> Self {
        Self {
            network: ProxyNetworkConfig::small(10),
        }
    }
}

impl Default for SynFlowConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// SynFlow-style parameter saliency (Tanaka et al., 2020): the aggregate
/// sensitivity of the network output to its parameters,
/// `R = Σ_i |θ_i · ∂(Σ logits)/∂θ_i|`, probed with an all-ones input so the
/// score is **data-free** (the dataset only fixes the classifier width).
/// Larger saliency means more of the network's parameters carry signal to
/// the output — pruned-out or dead-ended weights contribute nothing.
///
/// The original formulation linearises the network by taking `|θ|` before
/// the forward pass; this implementation keeps the signed weights (the
/// substrate's networks are immutable once built) and takes the absolute
/// value per parameter term instead, which preserves the "how many
/// parameters matter" ranking at proxy scale. The published score is
/// `ln(1 + R)` so it composes with the other log-scale indicators in a
/// weighted objective.
#[derive(Debug, Clone)]
pub struct SynFlowProxy {
    config: SynFlowConfig,
}

impl SynFlowProxy {
    /// Creates the proxy with the given configuration.
    pub fn new(config: SynFlowConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SynFlowConfig {
        &self.config
    }
}

impl Proxy for SynFlowProxy {
    fn id(&self) -> &str {
        "synflow"
    }

    fn config_fingerprint(&self) -> u64 {
        let h = fingerprint_domain("micronas/proxy/synflow");
        fingerprint_network(h, &self.config.network)
    }

    fn evaluate_with(
        &self,
        cell: CellTopology,
        dataset: DatasetKind,
        seed: u64,
        workspace: &mut Workspace,
    ) -> Result<f64> {
        let mut net_config = self.config.network;
        net_config.num_classes = dataset.num_classes().min(16);
        let net = CellNetwork::new(&cell, &net_config, seed)?;

        // Data-free probe: one all-ones sample.
        let probe = Tensor::ones(Shape::nchw(
            1,
            net_config.input_channels,
            net_config.input_resolution,
            net_config.input_resolution,
        ));
        let grads = net.parameter_gradients_with(&probe, workspace)?;
        let params = net.flattened_parameters();
        if params.len() != grads.len() {
            return Err(ProxyError::Network(format!(
                "parameter/gradient length mismatch: {} vs {}",
                params.len(),
                grads.len()
            )));
        }
        let saliency: f64 = params
            .iter()
            .zip(grads.values())
            .map(|(&w, &g)| (w as f64 * g as f64).abs())
            .sum();
        Ok((1.0 + saliency).ln())
    }
}

impl Default for SynFlowProxy {
    fn default() -> Self {
        Self::new(SynFlowConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use micronas_searchspace::{Operation, SearchSpace};

    fn fast() -> SynFlowProxy {
        SynFlowProxy::new(SynFlowConfig::fast())
    }

    #[test]
    fn evaluation_is_deterministic() {
        let space = SearchSpace::nas_bench_201();
        let cell = space.cell(7_000).unwrap();
        let a = fast().evaluate(cell, DatasetKind::Cifar10, 5).unwrap();
        let b = fast().evaluate(cell, DatasetKind::Cifar10, 5).unwrap();
        assert_eq!(a, b);
        let c = fast().evaluate(cell, DatasetKind::Cifar10, 6).unwrap();
        assert_ne!(a, c, "a different init must move the saliency");
    }

    #[test]
    fn conv_rich_cells_have_higher_saliency_than_disconnected_cells() {
        let rich = CellTopology::new([Operation::NorConv3x3; 6]);
        let disconnected = CellTopology::new([Operation::None; 6]);
        let r = fast().evaluate(rich, DatasetKind::Cifar10, 1).unwrap();
        let d = fast()
            .evaluate(disconnected, DatasetKind::Cifar10, 1)
            .unwrap();
        assert!(r > d, "rich {r} vs disconnected {d}");
        assert_eq!(d, 0.0, "no path to the output means zero saliency");
    }

    #[test]
    fn score_is_finite_and_non_negative_across_cells() {
        let space = SearchSpace::nas_bench_201();
        for idx in [0usize, 404, 7_000, 11_111, 15_624] {
            let s = fast()
                .evaluate(space.cell(idx).unwrap(), DatasetKind::Cifar10, 2)
                .unwrap();
            assert!(s.is_finite() && s >= 0.0, "cell {idx}: {s}");
        }
    }

    #[test]
    fn fingerprint_tracks_geometry() {
        let a = SynFlowProxy::new(SynFlowConfig::fast());
        let b = SynFlowProxy::new(SynFlowConfig::paper_default());
        assert_ne!(a.config_fingerprint(), b.config_fingerprint());
        assert_eq!(a.id(), "synflow");
    }
}
