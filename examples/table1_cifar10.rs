//! Regenerates Table I of the paper (CIFAR-10 comparison of a µNAS-style
//! training-based search, the TE-NAS proxy-only baseline and MicroNAS).
//!
//! ```bash
//! cargo run --release --example table1_cifar10
//! ```

use micronas_suite::core::experiments::{run_table1, Table1Row};
use micronas_suite::core::{EvolutionaryConfig, MicroNasConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = MicroNasConfig::fast();
    let evolution = EvolutionaryConfig {
        population: 24,
        cycles: 120,
        sample_size: 5,
    };

    println!("Reproducing Table I (reduced scale; see crates/bench for the full harness)...");
    let rows = run_table1(&config, evolution, 2.0)?;

    println!();
    println!("{}", Table1Row::header());
    for row in &rows {
        println!("{}", row.formatted());
    }

    println!();
    println!("Paper (Table I) reference:");
    println!("  µNAS    — 0.014 M params, 552 h search, 86.49 % accuracy");
    println!("  TE-NAS  — 188.66 MFLOPs, 1.317 M params, 1.0x, 0.43 h, 93.78 %");
    println!("  MicroNAS— 51.04 MFLOPs, 0.372 M params, 3.23x, 0.43 h, 93.88 %");
    println!();
    println!("Shape checks to look for: MicroNAS row is lighter and faster than TE-NAS at similar");
    println!(
        "accuracy, and both are orders of magnitude cheaper to search than the µNAS-style row."
    );
    Ok(())
}
