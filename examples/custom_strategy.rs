//! External-strategy cookbook: a third-party search algorithm and a
//! third-party proxy, plugged into a [`SearchSession`] through the public
//! API only — no enum to extend, no crate to fork.
//!
//! Two "out-of-tree" pieces live in this file, exactly as they would in a
//! downstream crate:
//!
//! * [`SimulatedAnnealing`] — a classic Metropolis random-walk over the cell
//!   space implementing [`SearchStrategy`]: mutate one edge, accept uphill
//!   moves always and downhill moves with probability `exp(Δ/T)`, cool `T`
//!   geometrically. It honours the full strategy contract: deterministic for
//!   a fixed context seed (its RNG derives from `ctx.seed()`), one
//!   `Started`, one `Step` per history entry, one `Finished`.
//! * [`ActivationSparsityProxy`] — a train-free indicator implementing
//!   [`Proxy`]: the fraction of active ReLU units on a probe batch, scored
//!   by closeness to ½ (a balanced on/off mix keeps gradients flowing and
//!   correlates with trainable initialisations). Its score joins every
//!   candidate's `MetricSet` under `"act_sparsity"` and is cached in any
//!   attached store under the proxy's own persistent identity.
//!
//! Run with `cargo run --release --example custom_strategy`.

use micronas_suite::core::{
    HybridObjective, MicroNasConfig, ObjectiveWeights, Result as MicroResult, SearchContext,
    SearchCost, SearchEvent, SearchObserver, SearchOutcome, SearchSession, SearchStrategy,
};
use micronas_suite::datasets::{DatasetKind, SyntheticDataset};
use micronas_suite::nn::{CellNetwork, ProxyNetworkConfig};
use micronas_suite::proxies::{fingerprint_network, Proxy};
use micronas_suite::searchspace::{mutate, random_architecture, CellTopology};
use micronas_suite::tensor::{hash_mix, Workspace};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;
use std::time::Instant;

// ---------------------------------------------------------------------------
// An out-of-tree proxy
// ---------------------------------------------------------------------------

/// Fraction of active ReLU units on a probe batch, scored by closeness to ½.
struct ActivationSparsityProxy {
    network: ProxyNetworkConfig,
    batch_size: usize,
}

impl ActivationSparsityProxy {
    fn new() -> Self {
        Self {
            network: ProxyNetworkConfig::small(10),
            batch_size: 8,
        }
    }
}

impl Proxy for ActivationSparsityProxy {
    fn id(&self) -> &str {
        "act_sparsity"
    }

    fn config_fingerprint(&self) -> u64 {
        // Explicit value encoding, exactly like the built-ins: a stable
        // domain tag, then every configuration value.
        let mut h = "example/act_sparsity"
            .bytes()
            .fold(0x5150_4152_5345u64, |h, b| hash_mix(h, b as u64));
        h = hash_mix(h, self.batch_size as u64);
        fingerprint_network(h, &self.network)
    }

    fn evaluate_with(
        &self,
        cell: CellTopology,
        dataset: DatasetKind,
        seed: u64,
        workspace: &mut Workspace,
    ) -> micronas_suite::proxies::Result<f64> {
        let mut config = self.network;
        config.num_classes = dataset.num_classes().min(16);
        let net = CellNetwork::new(&cell, &config, seed)?;
        let batch = SyntheticDataset::new(dataset, seed).sample_batch_with_stream(
            self.batch_size,
            config.input_resolution,
            0,
        )?;
        let output = net.forward_with(&batch.images, workspace)?;
        let (mut active, mut total) = (0usize, 0usize);
        for tensor in &output.pre_activations {
            total += tensor.numel();
            active += tensor.data().iter().filter(|&&v| v > 0.0).count();
        }
        if total == 0 {
            // A ReLU-free cell carries no activation signal at all.
            return Ok(-1.0);
        }
        let sparsity = active as f64 / total as f64;
        // Larger is better: 0 at a perfectly balanced on/off mix, -1 at the
        // degenerate all-on / all-off extremes.
        Ok(-(sparsity - 0.5).abs() * 2.0)
    }
}

// ---------------------------------------------------------------------------
// An out-of-tree strategy
// ---------------------------------------------------------------------------

/// Simulated annealing over the NAS-Bench-201 cell space.
struct SimulatedAnnealing {
    objective: HybridObjective,
    steps: usize,
    initial_temperature: f64,
    cooling: f64,
}

impl SimulatedAnnealing {
    fn new(weights: ObjectiveWeights, steps: usize) -> Self {
        Self {
            objective: HybridObjective::new(weights),
            steps,
            initial_temperature: 1.0,
            cooling: 0.97,
        }
    }
}

/// Seed-stream tag for the annealer's RNG (derived from the context seed, so
/// outcomes are reproducible per session).
const ANNEAL_STREAM: u64 = 0x414E_4E45_414C;

impl SearchStrategy for SimulatedAnnealing {
    fn name(&self) -> &str {
        "Simulated annealing (external example)"
    }

    fn search(
        &self,
        ctx: &SearchContext,
        observer: &dyn SearchObserver,
    ) -> MicroResult<SearchOutcome> {
        observer.on_event(&SearchEvent::Started {
            algorithm: self.name(),
        });
        let start = Instant::now();
        let evaluations_before = ctx.evaluation_count();
        let cache_before = ctx.cache_stats();
        let mut rng = ChaCha8Rng::seed_from_u64(hash_mix(ctx.seed(), ANNEAL_STREAM));

        // Start from a random feasible architecture.
        let mut current = random_architecture(ctx.space(), &mut rng);
        let mut current_eval = ctx.evaluate(*current.cell())?;
        for _ in 0..64 {
            if current_eval.feasible {
                break;
            }
            current = random_architecture(ctx.space(), &mut rng);
            current_eval = ctx.evaluate(*current.cell())?;
        }
        let mut current_score = self
            .objective
            .score(&current_eval.metrics, &current_eval.hardware);
        let (mut best, mut best_eval, mut best_score) =
            (current, Arc::clone(&current_eval), current_score);

        let mut temperature = self.initial_temperature;
        let mut history = Vec::with_capacity(self.steps);
        for _ in 0..self.steps {
            let candidate = mutate(ctx.space(), &current, &mut rng);
            let eval = ctx.evaluate(*candidate.cell())?;
            let score = self.objective.score(&eval.metrics, &eval.hardware);
            // Metropolis rule over feasible candidates only.
            let accept = eval.feasible
                && (score >= current_score
                    || rng.gen::<f64>() < ((score - current_score) / temperature).exp());
            if accept {
                current = candidate;
                current_score = score;
                current_eval = Arc::clone(&eval);
                if eval.feasible && score > best_score {
                    best = candidate;
                    best_score = score;
                    best_eval = eval;
                }
            }
            temperature *= self.cooling;
            // One Step per history entry, in order — the strategy contract.
            observer.on_event(&SearchEvent::Step {
                index: history.len(),
                score: current_score,
            });
            history.push(current_score);
        }
        let _ = current_eval;

        let outcome = SearchOutcome {
            best,
            evaluation: (*best_eval).clone(),
            test_accuracy: ctx.trained_accuracy(&best),
            cost: SearchCost {
                wall_clock_seconds: start.elapsed().as_secs_f64(),
                simulated_gpu_hours: 0.0,
                evaluations: ctx.evaluation_count() - evaluations_before,
                cache: ctx.cache_stats().since(&cache_before),
                ..Default::default()
            },
            algorithm: self.name().to_string(),
            history,
        };
        observer.on_event(&SearchEvent::Finished { outcome: &outcome });
        Ok(outcome)
    }
}

// ---------------------------------------------------------------------------
// Wiring both into a session
// ---------------------------------------------------------------------------

fn main() -> MicroResult<()> {
    // The custom proxy joins the session; its metric id gets an objective
    // weight next to the built-in indicators.
    let weights = ObjectiveWeights::latency_guided(1.0).with_metric("act_sparsity", 0.25);
    let session = SearchSession::builder()
        .dataset(DatasetKind::Cifar10)
        .config(MicroNasConfig::fast())
        .proxy(Arc::new(ActivationSparsityProxy::new()))
        .objective(weights.clone())
        .build()?;

    let annealer = SimulatedAnnealing::new(weights, 48);
    let outcome = session.run(&annealer)?;
    println!("{}:", outcome.algorithm);
    println!("  best architecture:   {}", outcome.best);
    println!("  surrogate accuracy:  {:.2}%", outcome.test_accuracy);
    println!(
        "  act_sparsity metric: {:+.4}",
        outcome
            .evaluation
            .metrics
            .get("act_sparsity")
            .expect("plugin metric present")
    );
    println!(
        "  {} evaluations in {:.2}s ({} cache hits / {} misses)",
        outcome.cost.evaluations,
        outcome.cost.wall_clock_seconds,
        outcome.cost.cache.hits,
        outcome.cost.cache.misses,
    );

    // Determinism: the same session seed reproduces the same trajectory.
    let again = session.run(&SimulatedAnnealing::new(
        ObjectiveWeights::latency_guided(1.0).with_metric("act_sparsity", 0.25),
        48,
    ))?;
    assert_eq!(outcome.history, again.history, "annealing is deterministic");
    assert_eq!(outcome.best.index(), again.best.index());
    println!("  re-run reproduced the trajectory bit for bit");

    // The built-in pruning search through the same session, for comparison.
    let micronas = session.run_micronas()?;
    println!("\nMicroNAS pruning on the same session:");
    println!("  best architecture:   {}", micronas.best);
    println!("  surrogate accuracy:  {:.2}%", micronas.test_accuracy);
    Ok(())
}
