//! Regenerates Fig. 2 of the paper: Kendall-τ ranking correlation of the NTK
//! condition index (a) across index variants K_i and (b) across NTK batch
//! sizes.
//!
//! ```bash
//! cargo run --release --example fig2_correlation
//! ```

use micronas_suite::core::experiments::{run_fig2a, run_fig2b};
use micronas_suite::core::MicroNasConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = MicroNasConfig::fast();
    let sample = 64;

    println!("Fig. 2a — Kendall-τ vs NTK condition index K_i ({sample} architectures per dataset)");
    let series = run_fig2a(&config, sample, 8)?;
    print!("{:<16}", "dataset \\ K_i");
    for i in 1..=8 {
        print!("{i:>7}");
    }
    println!();
    for s in &series {
        print!("{:<16}", s.dataset);
        for tau in &s.taus {
            print!("{tau:>7.3}");
        }
        println!();
    }

    println!();
    println!("Fig. 2b — Kendall-τ vs NTK batch size (3 seeds + average, CIFAR-10)");
    let batches = [4usize, 8, 16, 32];
    let result = run_fig2b(&config, sample / 2, &batches, 3)?;
    print!("{:<10}", "batch");
    for b in &result.batch_sizes {
        print!("{b:>8}");
    }
    println!();
    for (i, taus) in result.taus_per_seed.iter().enumerate() {
        print!("seed {i:<5}");
        for tau in taus {
            print!("{tau:>8.3}");
        }
        println!();
    }
    print!("{:<10}", "average");
    for tau in &result.average {
        print!("{tau:>8.3}");
    }
    println!();
    println!();
    println!(
        "Smallest batch within 0.05 τ of the best: {} (the paper adopts 32)",
        result.knee_batch_size(0.05)
    );
    Ok(())
}
