//! In-process demo of a three-node evaluation fabric.
//!
//! Spins up three [`FabricNode`]s on loopback ports, then runs the tiny
//! paper sweep from two "worker machines" in sequence — each a fresh
//! in-memory store reading through a [`RemoteTier`] over the same
//! three-node ring. The first worker computes everything cold and streams
//! its evaluations to the ring owners write-behind; the second arrives
//! with an empty store and pulls almost everything warm from the fleet.
//!
//! Prints a per-node serving table (who owned what, who got asked, who
//! answered warm) and exits non-zero if the two workers disagree on a
//! single bit, or if the second worker had to recompute more than 10% of
//! its evaluations — CI runs this binary as the fabric acceptance gate.
//!
//! ```bash
//! cargo run --release --example fabric_cluster
//! ```

use micronas_suite::core::experiments::{run_paper_sweep, SweepScale};
use micronas_suite::core::MicroNasConfig;
use micronas_suite::fabric::{FabricConfig, FabricNode, RemoteTier};
use micronas_suite::store::{EvalStore, RemoteBackend};
use std::sync::Arc;

fn worker(namespace: u64, fabric: &FabricConfig) -> (Arc<EvalStore>, Arc<RemoteTier>) {
    let store = Arc::new(EvalStore::in_memory(namespace));
    let tier = Arc::new(RemoteTier::from_config(namespace, fabric));
    store
        .attach_remote(Arc::clone(&tier) as Arc<dyn RemoteBackend>)
        .expect("tier namespace matches store namespace");
    (store, tier)
}

fn node_table(nodes: &[FabricNode]) {
    println!(
        "  {:<22} {:>8} {:>8} {:>8} {:>8}",
        "node", "records", "gets", "warm", "puts"
    );
    for node in nodes {
        let stats = node.stats();
        println!(
            "  {:<22} {:>8} {:>8} {:>8} {:>8}",
            node.addr(),
            node.store().len(),
            stats.gets,
            stats.get_hits,
            stats.puts
        );
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = MicroNasConfig::tiny_test();
    let namespace = config.store_namespace();

    // ---- The fleet: three nodes, each owning a shard of the keyspace ----
    let nodes: Vec<FabricNode> = (0..3)
        .map(|_| FabricNode::serve(Arc::new(EvalStore::in_memory(namespace))))
        .collect::<Result<_, _>>()?;
    let fabric = FabricConfig::with_peers(nodes.iter().map(|n| n.addr()).collect());
    println!(
        "three-node fabric up (namespace {namespace:#018x}): {}",
        fabric.peers.join(", ")
    );

    // ---- Worker 1: cold sweep, write-behind to the ring owners ----------
    println!("\nworker 1: tiny paper sweep, cold...");
    let (store1, tier1) = worker(namespace, &fabric);
    let report1 = run_paper_sweep(&config, &SweepScale::tiny(), Some(Arc::clone(&store1)))?;
    tier1.flush()?;
    let t1 = tier1.stats();
    println!(
        "  fingerprint {:#018x}; {} evaluations offered, {} delivered to the fleet",
        report1.identity_fingerprint(),
        t1.offered,
        t1.delivered
    );
    node_table(&nodes);

    // ---- Worker 2: fresh machine, reads through the warm fleet ----------
    println!("\nworker 2: same sweep from an empty store...");
    let (store2, tier2) = worker(namespace, &fabric);
    let report2 = run_paper_sweep(&config, &SweepScale::tiny(), Some(Arc::clone(&store2)))?;
    let s2 = store2.stats();
    let t2 = tier2.stats();
    let warm = s2.hits as f64 / (s2.hits + s2.misses) as f64;
    println!(
        "  fingerprint {:#018x}; {} of {} evaluations served warm ({:.1}% — {} remote hits, {} recomputed)",
        report2.identity_fingerprint(),
        s2.hits,
        s2.hits + s2.misses,
        100.0 * warm,
        t2.remote_hits,
        s2.misses
    );
    node_table(&nodes);

    // ---- Acceptance ------------------------------------------------------
    if report1.identity_fingerprint() != report2.identity_fingerprint() {
        return Err(format!(
            "workers disagree: {:#018x} vs {:#018x}",
            report1.identity_fingerprint(),
            report2.identity_fingerprint()
        )
        .into());
    }
    if warm < 0.9 {
        return Err(format!("second arrival only {:.1}% warm", 100.0 * warm).into());
    }
    if t2.remote_hits == 0 || t1.delivered == 0 {
        return Err("fleet was never exercised".into());
    }
    println!(
        "\nfabric_cluster OK: identical results, second arrival {:.1}% warm",
        100.0 * warm
    );
    Ok(())
}
