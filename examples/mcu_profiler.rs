//! MCU profiling walkthrough: how the latency lookup table is built and how
//! one architecture's inference cost breaks down across three target devices.
//!
//! ```bash
//! cargo run --release --example mcu_profiler
//! ```

use micronas_suite::hw::{FlopsEstimator, LatencyEstimator, MemoryEstimator};
use micronas_suite::mcu::{McuSimulator, McuSpec};
use micronas_suite::searchspace::{MacroSkeleton, SearchSpace};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let space = SearchSpace::nas_bench_201();
    let skeleton = MacroSkeleton::nas_bench_201(10);
    // A representative mid-size architecture.
    let arch = space.architecture(7_777)?;
    println!("Architecture #{}: {}", arch.index(), arch.arch_string());

    let flops = FlopsEstimator::new().cell_in_skeleton(arch.cell(), &skeleton);
    let memory = MemoryEstimator::new().cell_in_skeleton(arch.cell(), &skeleton);
    println!(
        "Model: {:.1} MFLOPs, {:.3} M params, {:.0} KiB peak activations, {:.0} KiB weights",
        flops.flops_m(),
        flops.params_m(),
        memory.peak_activation_kib(),
        memory.weight_kib()
    );

    println!();
    println!(
        "{:<36} {:>12} {:>14} {:>10}",
        "device", "latency(ms)", "LUT entries", "fits?"
    );
    for spec in [
        McuSpec::stm32l476(),
        McuSpec::stm32f746zg(),
        McuSpec::stm32h743(),
    ] {
        let estimator = LatencyEstimator::new(spec.clone());
        let latency = estimator.cell_latency_ms(arch.cell(), &skeleton);
        let fits = memory.fits(spec.sram_kib, spec.flash_kib);
        println!(
            "{:<36} {:>12.1} {:>14} {:>10}",
            spec.name,
            latency,
            estimator.lut_len(),
            if fits { "yes" } else { "no" }
        );
    }

    println!();
    println!("Per-operation-class latency breakdown on the paper's board (STM32F746ZG):");
    let estimator = LatencyEstimator::new(McuSpec::stm32f746zg());
    let breakdown = estimator.estimate(&skeleton.instantiate(arch.cell()));
    let mut classes: Vec<_> = breakdown.per_class_ms.iter().collect();
    classes.sort_by(|a, b| b.1.partial_cmp(a.1).expect("finite"));
    for (class, ms) in classes {
        println!("  {class:<12} {ms:>10.2} ms");
    }
    println!(
        "  {:<12} {:>10.2} ms (constant per-inference overhead)",
        "overhead", breakdown.overhead_ms
    );

    println!();
    println!("Cross-check against the cycle-level simulator:");
    let simulator = McuSimulator::new(McuSpec::stm32f746zg());
    let report = simulator.simulate(&skeleton.instantiate(arch.cell()));
    println!(
        "  LUT estimate {:.1} ms vs direct simulation {:.1} ms",
        breakdown.total_ms,
        report.total_latency_ms()
    );
    Ok(())
}
