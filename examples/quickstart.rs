//! Quickstart: run a hardware-aware zero-shot search for an STM32F746 target.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! The example runs the MicroNAS latency-guided pruning search on the
//! CIFAR-10 surrogate at a reduced proxy scale (a couple of seconds on a
//! laptop), then prints the discovered cell together with its hardware
//! indicators and surrogate accuracy.

use micronas_suite::core::{MicroNasConfig, MicroNasSearch, ObjectiveWeights, SearchContext};
use micronas_suite::datasets::DatasetKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Configure the search: fast proxy scale, STM32F746 target, no budgets.
    let config = MicroNasConfig::fast();
    println!("Target device : {}", config.mcu.name);
    println!("NTK batch size: {}", config.ntk.batch_size);

    // 2. Build the search context for CIFAR-10.
    let context = SearchContext::new(DatasetKind::Cifar10, &config)?;

    // 3. Run the latency-guided pruning search (zero training involved).
    let search = MicroNasSearch::new(ObjectiveWeights::latency_guided(2.0), &config);
    let outcome = search.run(&context)?;

    // 4. Report what was found.
    println!();
    println!("Discovered architecture #{}", outcome.best.index());
    println!("  cell      : {}", outcome.best.arch_string());
    println!("  FLOPs     : {:.1} M", outcome.evaluation.hardware.flops_m);
    println!(
        "  params    : {:.3} M",
        outcome.evaluation.hardware.params_m
    );
    println!(
        "  latency   : {:.1} ms on {}",
        outcome.evaluation.hardware.latency_ms, config.mcu.name
    );
    println!(
        "  peak SRAM : {:.0} KiB",
        outcome.evaluation.hardware.peak_sram_kib
    );
    println!(
        "  NTK cond. : {:.1}",
        outcome.evaluation.zero_cost.ntk_condition
    );
    println!(
        "  lin. regions: {}",
        outcome.evaluation.zero_cost.linear_regions
    );
    println!("  surrogate accuracy: {:.2} %", outcome.test_accuracy);
    println!();
    println!(
        "Search cost: {:.1} s wall clock, {} architectures evaluated, zero training.",
        outcome.cost.wall_clock_seconds, outcome.cost.evaluations
    );
    Ok(())
}
