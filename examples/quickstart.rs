//! Quickstart: run a hardware-aware zero-shot search for an STM32F746 target.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! The example configures a `SearchSession` with the builder API — dataset,
//! proxy scale and a latency-guided objective — runs the MicroNAS pruning
//! search on the CIFAR-10 surrogate (a couple of seconds on a laptop), then
//! prints the discovered cell together with its metrics, hardware
//! indicators and surrogate accuracy.

use micronas_suite::core::{MicroNasConfig, ObjectiveWeights, SearchSession};
use micronas_suite::datasets::DatasetKind;
use micronas_suite::proxies::metric_ids;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Configure the session: fast proxy scale, STM32F746 target, a
    //    latency-guided objective, no hardware budgets.
    let config = MicroNasConfig::fast();
    println!("Target device : {}", config.mcu.name);
    println!("NTK batch size: {}", config.ntk.batch_size);

    let session = SearchSession::builder()
        .dataset(DatasetKind::Cifar10)
        .config(config.clone())
        .objective(ObjectiveWeights::latency_guided(2.0))
        .build()?;

    // 2. Run the latency-guided pruning search (zero training involved).
    //    `session.run(&strategy)` accepts any `SearchStrategy`;
    //    `run_micronas()` is the shortcut for the paper's pruning search
    //    with the session's objective weights.
    let outcome = session.run_micronas()?;

    // 3. Report what was found.
    println!();
    println!("Discovered architecture #{}", outcome.best.index());
    println!("  cell      : {}", outcome.best.arch_string());
    println!("  FLOPs     : {:.1} M", outcome.evaluation.hardware.flops_m);
    println!(
        "  params    : {:.3} M",
        outcome.evaluation.hardware.params_m
    );
    println!(
        "  latency   : {:.1} ms on {}",
        outcome.evaluation.hardware.latency_ms, config.mcu.name
    );
    println!(
        "  peak SRAM : {:.0} KiB",
        outcome.evaluation.hardware.peak_sram_kib
    );
    // Proxy scores live in an id-keyed metric set; every registered proxy
    // contributes one entry.
    for (id, value) in outcome.evaluation.metrics.iter() {
        println!("  metric {id:>14}: {value:.3}");
    }
    // Individual metrics are addressable by id constant or typed accessor.
    if let Some(trainability) = outcome.evaluation.metrics.get(metric_ids::TRAINABILITY) {
        println!("  trainability (by id): {trainability:.3}");
    }
    if let Some(regions) = outcome.evaluation.metrics.linear_regions() {
        println!("  lin. regions (typed): {regions}");
    }
    println!("  surrogate accuracy: {:.2} %", outcome.test_accuracy);
    println!();
    println!(
        "Search cost: {:.1} s wall clock, {} architectures evaluated, zero training.",
        outcome.cost.wall_clock_seconds, outcome.cost.evaluations
    );
    Ok(())
}
