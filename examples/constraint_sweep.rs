//! Hardware-guidance sweep: latency-guided weight sweep, FLOPs-guided vs
//! latency-guided comparison, and the peak-memory-guided extension.
//!
//! ```bash
//! cargo run --release --example constraint_sweep
//! ```

use micronas_suite::core::experiments::{
    run_flops_vs_latency, run_latency_sweep, run_memory_guided,
};
use micronas_suite::core::MicroNasConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = MicroNasConfig::fast();

    println!("Latency-guided weight sweep (§III: 1.59x–3.23x speed-up band)");
    println!(
        "{:<10} {:>12} {:>10} {:>12} {:>10}",
        "weight", "latency(ms)", "FLOPs(M)", "speedup", "ACC(%)"
    );
    for p in run_latency_sweep(&config, &[0.5, 1.0, 2.0, 4.0])? {
        println!(
            "{:<10.1} {:>12.1} {:>10.1} {:>11.2}x {:>10.2}",
            p.hardware_weight, p.latency_ms, p.flops_m, p.speedup_vs_baseline, p.accuracy
        );
    }

    println!();
    println!("FLOPs-guided vs latency-guided (§III)");
    let cmp = run_flops_vs_latency(&config, 2.0)?;
    for (name, p) in [
        ("proxy-only baseline", &cmp.baseline),
        ("FLOPs-guided", &cmp.flops_guided),
        ("latency-guided", &cmp.latency_guided),
    ] {
        println!(
            "{:<22} latency {:>8.1} ms   FLOPs {:>7.1} M   accuracy {:>6.2} %",
            name, p.latency_ms, p.flops_m, p.accuracy
        );
    }

    println!();
    println!("Peak-memory-guided extension (§IV future work)");
    for p in run_memory_guided(&config, &[2.0, 8.0])? {
        println!(
            "weight {:<6.1} peak SRAM {:>8.1} KiB   latency {:>8.1} ms   accuracy {:>6.2} %",
            p.hardware_weight, p.peak_sram_kib, p.latency_ms, p.accuracy
        );
    }
    Ok(())
}
