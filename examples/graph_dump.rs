//! Renders the kernel graphs the graph pipeline compiles as Graphviz DOT.
//!
//! ```bash
//! cargo run --release --example graph_dump
//! dot -Tsvg target/graph-dump/bench_cell_forward_fused.dot -o forward.svg
//! ```
//!
//! For the sparse bench cell (#7000 — conv, skip and dead edges) and the
//! all-conv3×3 cell, both at the paper-default proxy geometry, the example
//! lowers the forward pass and the batched per-sample gradient sweep to the
//! kernel-graph IR and writes four DOT files per cell: the unfused graph
//! (what the bitwise interpreter executes — the eager schedule, node by
//! node) and the fused graph (what the fusing compiler actually runs after
//! dead-code elimination, conv→ReLU fusion and backward-pair fusion), for
//! each of the two entry points. Diffing the pairs shows exactly which
//! dispatches fusion removed — e.g. the dead logits subgraph of the
//! gradient sweep, or a dead edge's whole conv chain.

use micronas_suite::graph::optimize;
use micronas_suite::nn::{CellNetwork, ProxyNetworkConfig};
use micronas_suite::searchspace::{CellTopology, Operation, SearchSpace};
use std::fs;
use std::path::Path;

/// Probe batch size used for the dumps (the paper's NTK batch is 32; the
/// graph's structure is identical at any batch, so a small one keeps the
/// shape annotations readable).
const BATCH: usize = 8;

fn dump(dir: &Path, label: &str, cell: CellTopology) -> Result<(), Box<dyn std::error::Error>> {
    // Paper-default proxy geometry: 16×16 inputs, 8 channels, two cells.
    let config = ProxyNetworkConfig::proxy_default(10);
    let net = CellNetwork::new(&cell, &config, 0)?;

    let forward = net.lower_forward(BATCH, true);
    let backward = net.lower_per_sample_grad(BATCH);
    for (entry, graph) in [("forward", &forward), ("backward", &backward)] {
        let fused = optimize(graph);
        let unfused_path = dir.join(format!("{label}_{entry}.dot"));
        let fused_path = dir.join(format!("{label}_{entry}_fused.dot"));
        fs::write(&unfused_path, graph.to_dot(&format!("{label} {entry}")))?;
        fs::write(
            &fused_path,
            fused.to_dot(&format!("{label} {entry} (fused)")),
        )?;
        println!(
            "{label:>12} {entry:>8}: {:>3} ops -> {:>3} fused   ({} / {})",
            graph.nodes().len(),
            fused.nodes().len(),
            unfused_path.display(),
            fused_path.display(),
        );
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = Path::new("target/graph-dump");
    fs::create_dir_all(dir)?;

    let space = SearchSpace::nas_bench_201();
    // The sparse bench cell the perf work pins (#7000) and the
    // kernel-dominated all-conv3×3 cell.
    dump(dir, "bench_cell", space.cell(7_000).expect("valid index"))?;
    dump(
        dir,
        "conv_cell",
        CellTopology::new([Operation::NorConv3x3; 6]),
    )?;

    println!("\nRender with: dot -Tsvg <file>.dot -o <file>.svg");
    Ok(())
}
