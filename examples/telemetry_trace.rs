//! End-to-end observability demo and CI validation gate.
//!
//! 1. Runs the paper-grid sweep with a telemetry [`Collector`] installed,
//!    prints the per-layer span/counter report as a table, and writes it as
//!    JSON next to the bench results (`target/bench-json/`).
//! 2. Runs the same-seed MicroNAS search twice with an [`EventRecorder`]
//!    attached, writes the recorded JSONL stream, parses it back into typed
//!    events, and proves the two recordings are identical modulo timing
//!    (`replay_diff` empty).
//!
//! Exits non-zero if any instrumented layer recorded no time, the JSONL
//! fails to parse, or the recordings diverge — CI runs this binary as the
//! telemetry acceptance gate.
//!
//! ```bash
//! cargo run --release --example telemetry_trace
//! ```

use micronas_suite::core::experiments::{run_paper_sweep_traced, SweepScale};
use micronas_suite::core::{
    replay_diff, replay_events, EventRecorder, MicroNasConfig, SearchSession,
};
use micronas_suite::telemetry::Collector;
use std::path::PathBuf;
use std::sync::Arc;

fn bench_json_dir() -> std::io::Result<PathBuf> {
    let dir = std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target"))
        .join("bench-json");
    std::fs::create_dir_all(&dir)?;
    Ok(dir)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = MicroNasConfig::tiny_test();

    // ---- 1. Traced paper sweep -----------------------------------------
    // Run against a persistent store so the store layer's log-append and
    // point-read paths are part of the trace.
    println!("tracing the paper-grid sweep (tiny scale, persistent store)...");
    let dir = bench_json_dir()?;
    let store_path = dir.join("telemetry_trace_store.log");
    let _ = std::fs::remove_file(&store_path);
    let store = Arc::new(micronas_suite::store::EvalStore::open(
        &store_path,
        config.store_namespace(),
    )?);
    let collector = Arc::new(Collector::new());
    let report = run_paper_sweep_traced(&config, &SweepScale::tiny(), Some(store), collector)?;
    let _ = std::fs::remove_file(&store_path);
    let telemetry = report
        .telemetry
        .as_ref()
        .ok_or("traced sweep did not fold telemetry in")?;

    println!();
    println!("{}", telemetry.table());

    let json_path = dir.join("telemetry_trace.json");
    std::fs::write(&json_path, telemetry.to_json())?;
    println!("telemetry report: {}", json_path.display());

    for layer in ["tensor.", "nn.", "proxy.", "store.", "strategy."] {
        if telemetry.layer_total_ns(layer) == 0 {
            return Err(format!("layer {layer} recorded no span time").into());
        }
    }
    println!(
        "sweep identity: {:#018x} ({} GEMM calls, {} pack dispatches)",
        report.identity_fingerprint(),
        telemetry.counter("tensor.gemm.calls"),
        telemetry.counter("search.pack.dispatches"),
    );

    // ---- 2. Deterministic event recording ------------------------------
    println!();
    println!("recording two same-seed searches...");
    let record = || -> Result<(String, usize), Box<dyn std::error::Error>> {
        let recorder = Arc::new(EventRecorder::new());
        let session = SearchSession::builder()
            .config(config.clone())
            .observer(recorder.clone())
            .build()?;
        let outcome = session.run_micronas()?;
        Ok((recorder.to_jsonl(), outcome.history.len()))
    };
    let (first, steps) = record()?;
    let (second, _) = record()?;

    let jsonl_path = dir.join("telemetry_events.jsonl");
    std::fs::write(&jsonl_path, &first)?;
    println!("event stream:     {}", jsonl_path.display());

    let events = replay_events(&first).map_err(|e| format!("recorded JSONL invalid: {e}"))?;
    if events.len() != steps + 2 {
        return Err(format!(
            "expected {} events (started + {steps} steps + finished), got {}",
            steps + 2,
            events.len()
        )
        .into());
    }

    let diffs = replay_diff(&first, &second);
    if !diffs.is_empty() {
        return Err(format!("same-seed recordings diverged: {diffs:?}").into());
    }
    println!(
        "replayed {} events; same-seed replay_diff is empty",
        events.len()
    );
    Ok(())
}
