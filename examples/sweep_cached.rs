//! The paper grid against a persistent evaluation store: run the whole
//! MicroNAS evaluation (Fig. 2a, Fig. 2b, Table I, latency sweep) twice and
//! watch the second pass reuse every evaluation of the first.
//!
//! ```bash
//! cargo run --release --example sweep_cached
//! ```
//!
//! The store lives in `micronas_sweep_store.log` (override with
//! `MICRONAS_STORE_PATH`), so re-running the example — or any other process
//! sharing the store — starts warm: 100% hit rate, zero proxy
//! recomputations, and a bitwise-identical report. The log is compacted at
//! the end, demonstrating the full store lifecycle.

use micronas_suite::core::experiments::{run_paper_sweep, SweepReport, SweepScale, Table1Row};
use micronas_suite::core::MicroNasConfig;
use micronas_suite::store::EvalStore;
use std::path::PathBuf;
use std::sync::Arc;

fn report_line(label: &str, report: &SweepReport) {
    match &report.store {
        Some(stats) => println!(
            "{label:<18} {:>8.2}s   hits {:>6}  misses {:>6}  hit-rate {:>6.1}%",
            report.wall_seconds,
            stats.hits,
            stats.misses,
            stats.hit_rate() * 100.0
        ),
        None => println!("{label:<18} {:>8.2}s   (no store)", report.wall_seconds),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = MicroNasConfig::fast();
    let scale = SweepScale::fast();
    let path = std::env::var_os("MICRONAS_STORE_PATH")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("micronas_sweep_store.log"));

    println!("Evaluation store: {}", path.display());
    println!(
        "Namespace:        {:#018x} (fingerprint of the proxy/hardware configuration)",
        config.store_namespace()
    );
    println!();

    // ---- Pass 1: possibly cold (warm if the log already exists) ---------
    let store = Arc::new(EvalStore::open(&path, config.store_namespace())?);
    let preloaded = store.len();
    if preloaded > 0 {
        println!("Replayed {preloaded} records from an earlier process — starting warm.");
    }
    let first = run_paper_sweep(&config, &scale, Some(store.clone()))?;
    report_line("first sweep:", &first);

    // ---- Pass 2: guaranteed warm ----------------------------------------
    let second = run_paper_sweep(&config, &scale, Some(store.clone()))?;
    report_line("second sweep:", &second);

    let identical = first.identity_fingerprint() == second.identity_fingerprint();
    let speedup = first.wall_seconds / second.wall_seconds.max(1e-12);
    println!();
    println!(
        "warm speedup: {speedup:.1}x   recomputations: {}   bitwise identical: {identical}",
        second.recomputations().unwrap_or(u64::MAX),
    );
    assert!(identical, "sweep results must not depend on store warmth");
    assert_eq!(second.recomputations(), Some(0));

    // ---- The results themselves -----------------------------------------
    println!();
    println!("Fig. 2a (Kendall-tau of -K_i vs accuracy):");
    for series in &first.fig2a {
        let taus: Vec<String> = series.taus.iter().map(|t| format!("{t:+.3}")).collect();
        println!("  {:<16} [{}]", series.dataset, taus.join(", "));
    }
    println!();
    println!("Fig. 2b average tau per NTK batch size:");
    for (batch, tau) in first.fig2b.batch_sizes.iter().zip(&first.fig2b.average) {
        println!("  batch {batch:>4}: {tau:+.3}");
    }
    println!();
    println!("Table I:");
    println!("  {}", Table1Row::header());
    for row in &first.table1 {
        println!("  {}", row.formatted());
    }
    println!();
    println!("Latency sweep:");
    for p in &first.latency_sweep {
        println!(
            "  weight {:>5.1}: {:>8.1} ms  ({:.2}x vs baseline)  ACC {:>5.2}%",
            p.hardware_weight, p.latency_ms, p.speedup_vs_baseline, p.accuracy
        );
    }

    // ---- Compaction ------------------------------------------------------
    let entries = store.len();
    drop(first);
    drop(second);
    drop(store); // close the log before offline compaction
    let stats = EvalStore::compact_path(&path, config.store_namespace())?;
    println!();
    println!(
        "Compacted {} -> {} records ({} -> {} bytes); {entries} live evaluations persisted for \
         the next process.",
        stats.records_before, stats.records_after, stats.bytes_before, stats.bytes_after
    );
    Ok(())
}
