//! Umbrella crate for the MicroNAS reproduction workspace.
//!
//! This crate exists so that the repository-level `examples/` and `tests/`
//! directories have a package to belong to. It simply re-exports every
//! member crate under a short alias so examples can write
//! `use micronas_suite::proxies::NtkConfig;` etc.
//!
//! The real public API lives in the member crates:
//!
//! * [`tensor`] — dense tensors and linear algebra ([`micronas_tensor`])
//! * [`nn`] — neural-network substrate with explicit backprop ([`micronas_nn`])
//! * [`searchspace`] — the NAS-Bench-201 cell search space ([`micronas_searchspace`])
//! * [`datasets`] — synthetic CIFAR-style dataset generators ([`micronas_datasets`])
//! * [`nasbench`] — the surrogate accuracy benchmark ([`micronas_nasbench`])
//! * [`mcu`] — cycle-approximate Cortex-M7 MCU model ([`micronas_mcu`])
//! * [`hw`] — FLOPs / latency / memory hardware indicators ([`micronas_hw`])
//! * [`proxies`] — zero-cost proxies (NTK spectrum, linear regions) ([`micronas_proxies`])
//! * [`store`] — shared, persistent evaluation store ([`micronas_store`])
//! * [`core`] — the MicroNAS search framework and baselines ([`micronas`])

pub use micronas as core;
pub use micronas_datasets as datasets;
pub use micronas_hw as hw;
pub use micronas_mcu as mcu;
pub use micronas_nasbench as nasbench;
pub use micronas_nn as nn;
pub use micronas_proxies as proxies;
pub use micronas_searchspace as searchspace;
pub use micronas_store as store;
pub use micronas_tensor as tensor;
