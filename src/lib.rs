//! Umbrella crate for the MicroNAS reproduction workspace.
//!
//! This crate exists so that the repository-level `examples/` and `tests/`
//! directories have a package to belong to. It simply re-exports every
//! member crate under a short alias so examples can write
//! `use micronas_suite::proxies::NtkConfig;` etc.
//!
//! # The pluggable search API (PR 4)
//!
//! Search runs are configured through one builder and three traits:
//!
//! * [`core::SearchSession`] — `SearchSession::builder()` sets the dataset,
//!   proxy configuration, pluggable proxies, per-metric objective weights,
//!   optional shared evaluation store and optional progress observer.
//! * [`proxies::Proxy`] — any train-free indicator with a stable string id
//!   and config fingerprint. The built-ins (NTK, linear regions) and the
//!   extension proxies ([`proxies::SynFlowProxy`],
//!   [`proxies::JacobianCovarianceProxy`]) all implement it; scores land
//!   in an id-keyed [`proxies::MetricSet`] per candidate and are cached in
//!   the store under `ProxyKind::Custom` keys.
//! * [`core::SearchStrategy`] — the pruning search and both baselines
//!   behind one object-safe `search(ctx, observer)`;
//!   [`core::SearchObserver`] receives one deterministic
//!   [`core::SearchEvent`] per decision step.
//!
//! ```no_run
//! use micronas_suite::core::{MicroNasConfig, ObjectiveWeights, SearchSession};
//! use micronas_suite::datasets::DatasetKind;
//!
//! # fn main() -> Result<(), micronas_suite::core::MicroNasError> {
//! let session = SearchSession::builder()
//!     .dataset(DatasetKind::Cifar10)
//!     .config(MicroNasConfig::fast())
//!     .objective(ObjectiveWeights::latency_guided(2.0))
//!     .build()?;
//! let outcome = session.run_micronas()?;
//! # let _ = outcome;
//! # Ok(())
//! # }
//! ```
//!
//! ## Migrating from the pre-PR 4 API
//!
//! | Before (≤ PR 3) | After |
//! |-----------------|-------|
//! | `SearchContext::new(ds, &cfg)?` + `MicroNasSearch::new(w, &cfg).run(&ctx)?` | `SearchSession::builder().dataset(ds).config(cfg).objective(w).build()?.run_micronas()?` |
//! | `MicroNasSearch::new(weights, &config)` | `MicroNasSearch::new(weights)` (the config parameter was silently ignored) |
//! | `MicroNasSearch::te_nas_baseline(&config)` | `MicroNasSearch::te_nas_baseline()` |
//! | `SearchContext::with_store(ds, &cfg, store)` | `SearchSession::builder()...store(store).build()?` (contexts remain available for low-level use) |
//! | `eval.zero_cost.trainability` | `eval.metrics.trainability()` / `eval.metrics.get("trainability")` |
//! | `ObjectiveWeights { trainability, expressivity, .. }` | per-metric-id weights: presets (`accuracy_only()`, `latency_guided(w)`, …) plus `.with_metric(id, w)` |
//! | `objective.score(&zero_cost, &hw)` | `objective.score(&metrics, &hw)` with a [`proxies::MetricSet`] |
//!
//! The paper-default pipeline is bitwise-identical across the migration
//! (pinned by `tests/paper_identity.rs`), and persisted stores keep
//! resolving: the pre-existing `ProxyKind` encodings are golden-tested in
//! `crates/store/tests/golden_keys.rs`, so no namespace bump was needed.
//!
//! # Execution backends (PR 5)
//!
//! Every kernel the proxy networks run — convolution forward/backward,
//! per-sample weight gradients, pooling, the linear-layer GEMMs and the NTK
//! Gram build — dispatches through the object-safe
//! [`tensor::KernelBackend`] trait. Four backends ship
//! ([`tensor::all_backends`] is the conformance-suite registry):
//!
//! | backend (`id`) | what it is | numerics |
//! |----------------|------------|----------|
//! | [`tensor::DirectBackend`] (`"direct"`) | naive-loop oracle | reference |
//! | [`tensor::BlockedGemmBackend`] (`"blocked_gemm"`) | im2col + cache-blocked GEMM, the **paper default** | bitwise-identical to the pre-backend pipeline |
//! | [`tensor::SimdBackend`] (`"simd"`) | hand-tiled AVX2+FMA micro-kernels, fixed-size rayon batch chunking | FMA-contracted; tolerance-gated, bitwise-deterministic at any thread count |
//! | [`tensor::Int8Backend`] (`"int8_mcu"`) | int8 fixed-point inference consistent with the `micronas-mcu` cycle model | quantized, forward-only |
//!
//! Selection threads through every layer: `MicroNasConfig::with_backend`
//! and `SearchSession::builder().backend(..)` pick a
//! [`tensor::KernelBackendKind`] for a whole search;
//! `CellNetwork::with_backend`, `NtkEvaluator::with_backend` and
//! `LinearRegionEvaluator::with_backend` pin individual networks and
//! evaluators (the int8 backend runs the forward-only linear-region probe —
//! the deployment-accuracy scenario). **Store identity:** a backend that is
//! not bitwise-identical to the paper default folds its `(id, fingerprint)`
//! into `MicroNasConfig::store_namespace`, so persisted logs written under
//! different numerics *refuse to open* instead of serving values the
//! backend cannot reproduce; the default backend folds nothing and every
//! pre-backend log keeps resolving.
//!
//! ## Migrating from `ConvEngine`
//!
//! The two-variant `ConvEngine` enum still exists for what it was actually
//! good at — pinning the direct-vs-GEMM dispatch *within* the paper-default
//! path for benchmarks and equivalence tests (`set_conv_engine`). Everything
//! that used it as a proto-backend seam should move to the trait:
//!
//! | Before | After |
//! |--------|-------|
//! | `set_conv_engine(ConvEngine::Im2colGemm)` process-wide to choose an implementation | construct with a backend: `CellNetwork::with_backend(.., KernelBackendKind::Simd.instantiate())` |
//! | "future GPU / NPU / fixed-point backend" via new `ConvEngine` variants | implement [`tensor::KernelBackend`] out of tree; no enum to extend |
//! | implicit assumption that all engines share one store namespace | declare numerics via `bitwise_paper_identical()`; divergent backends are namespace-isolated automatically |
//!
//! # Cross-candidate mega-batching (PR 6 forward, PR 10 backward + slates)
//!
//! Strategies no longer evaluate candidates one at a time: every shipped
//! [`core::SearchStrategy`] hands its whole candidate slate to a
//! [`core::BatchedEvaluator`], whose [`core::SlateScheduler`] plans it
//! into packs of up to [`core::SearchContext::pack_width`] cells (default
//! [`core::DEFAULT_PACK_WIDTH`] = 8, tunable per session via
//! `SearchSession::builder().pack_width(..)`). Planning looks at the whole
//! slate, not arrival order: candidates dedup by canonical digest
//! (duplicates ride in their owner's pack as cache shares), the distinct
//! ones bucket by geometry signature, and each bucket emits maximal-fill
//! packs with remainders coalesced — exactly `ceil(owners / width)`
//! dispatches, with results reassembled in slate order. Each pack then
//! runs as one fused proxy sweep:
//!
//! * the probe input batch is built once and shared by the whole pack;
//! * the shared stem runs **one** forward for all pack members;
//! * per-edge convolutions are bucketed by kernel geometry and their
//!   im2col panels fused into one wide GEMM per layer
//!   ([`tensor::KernelBackend::conv2d_forward_packed`]);
//! * the per-sample gradient sweep runs the same lockstep *backward*:
//!   per (cell, edge, kernel-size) buckets dispatch through
//!   [`tensor::KernelBackend::conv2d_backward_weight_per_sample_packed`]
//!   and [`tensor::KernelBackend::conv2d_backward_input_packed`], and
//!   members with the same topology (hence, at one seed, bitwise-equal
//!   weights and traces) are swept once with duplicates' gradient
//!   matrices copied from the representative.
//!
//! Why this stays **bitwise identical** to one-at-a-time evaluation: the
//! packed kernels iterate the exact solo per-candidate schedule — same
//! direct-vs-GEMM dispatch decision, same GEMM shapes, same per-member
//! accumulation order — and share work only between bitwise-equal
//! operands (equal input bytes are lowered to one im2col panel; equal
//! bytes in, equal bytes out). The blocked-GEMM backend overrides the
//! packed entry points; every other backend inherits a per-member loop
//! with identical numerics, and the NTK evaluator falls back to the solo
//! path entirely when the gradient formulation is not the batched `[n,P]`
//! one or a kernel-graph compiler is installed (compiled plans fuse
//! within one candidate, not across). The cross-product is pinned in CI
//! (`crates/core/tests/strategy_conformance.rs` over strategies × widths
//! × threads; `tests/backend_conformance.rs` over gradient backends ×
//! widths × threads), and the store namespace did not move.
//!
//! Measured effect (1-core container, width 8, best-of-3): **1.57×** on
//! the sparse bench cell from forward packing alone (PR 6), and a further
//! **1.51×** end-to-end from the packed backward over forward-only
//! packing on the same cell (PR 10, `ntk_engine.json`). Pack density is
//! observable as [`core::BatchStats`] on every [`core::SearchCost`],
//! now split into forward/backward kernel fill; the `candidate_throughput`
//! and `ntk_engine` benches gate both halves in CI smoke mode.
//!
//! # Observability (PR 7)
//!
//! The [`telemetry`] crate ([`micronas_telemetry`]) instruments the whole
//! stack with three zero-dependency primitives:
//!
//! * **Hierarchical span timers** — every layer wraps its hot phases in
//!   RAII [`telemetry::span!`] guards (`"tensor.gemm"`, `"nn.stem_forward"`,
//!   `"proxy.ntk.eigensolve"`, `"store.log_append"`, `"strategy.step"`, …).
//!   A [`telemetry::Collector`] aggregates them per label into call counts,
//!   totals, maxima and p50/p90/p99 from fixed log2-bucket histograms — no
//!   allocation on the hot path, thread-aware via sharded maps.
//! * **A metrics registry** — named atomic counters and gauges behind the
//!   [`telemetry::TelemetrySink`] trait: kernel dispatch counts per backend
//!   (`tensor.backend.blocked_gemm.*`), im2col bytes, workspace high-water,
//!   store hits/misses/evictions, pack fill counters (`search.pack.*`).
//!   The default [`telemetry::NullSink`] keeps the disabled fast path — one
//!   relaxed atomic load per probe.
//! * **A deterministic event recorder** — [`core::EventRecorder`] is a
//!   [`core::SearchObserver`] that serializes every [`core::SearchEvent`]
//!   to JSONL with step scores as exact `f64::to_bits` hex; wall-clock data
//!   is segregated in a `"timing"` section that [`core::replay_diff`]
//!   ignores, so two same-seed searches record byte-identical deterministic
//!   streams and [`core::replay_events`] parses them back into typed
//!   [`core::RecordedEvent`]s.
//!
//! Attach a sink per session with `SearchSession::builder().telemetry(..)`,
//! or trace the whole paper grid with
//! [`core::experiments::run_paper_sweep_traced`], which folds the
//! [`telemetry::TelemetryReport`] (human-readable via
//! `TelemetryReport::table()`, machine-readable via `to_json()`) into the
//! sweep report:
//!
//! ```no_run
//! use micronas_suite::core::{MicroNasConfig, SearchSession};
//! use micronas_suite::telemetry::Collector;
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), micronas_suite::core::MicroNasError> {
//! let collector = Arc::new(Collector::new());
//! let session = SearchSession::builder()
//!     .config(MicroNasConfig::fast())
//!     .telemetry(collector.clone())
//!     .build()?;
//! let outcome = session.run_micronas()?;
//! println!("{}", collector.report().table());
//! # let _ = outcome;
//! # Ok(())
//! # }
//! ```
//!
//! Telemetry is **provably inert**: the `tests/telemetry_inertness.rs`
//! suite pins the paper-identity fingerprints and all cache/batch counters
//! bitwise-identical with the sink off, on and recording, at one and many
//! rayon threads. `examples/telemetry_trace.rs` runs a traced paper sweep
//! end to end and validates a recorded event stream replays clean.
//!
//! # The execution pipeline (PR 8): eager calls vs compiled kernel graphs
//!
//! PR 5 made the *kernels* pluggable; PR 8 makes the *schedule* pluggable.
//! The [`graph`] crate ([`micronas_graph`]) adds a small SSA-style IR of
//! tensor ops ([`graph::Graph`], built with its mutating builder methods)
//! plus an
//! object-safe [`graph::Compiler`] trait (`compile(&Graph) -> Runnable`),
//! and `micronas-nn` lowers the cell network's forward pass and per-sample
//! backward pass to that IR. Two compilers ship:
//!
//! | compiler (`id`) | what it does | numerics |
//! |-----------------|--------------|----------|
//! | [`graph::InterpreterCompiler`] (`"interpreter"`) | executes the graph node by node through the same [`tensor::KernelBackend`] entry points the eager path calls, in the same order | **bitwise-identical** to eager; shares the paper store namespace |
//! | [`graph::FusingCompiler`] (`"fusing"`) | dead-code-eliminates unused subgraphs, fuses conv→ReLU epilogues and the backward weight+input pair over one shared im2col lowering, collapses fill+axpy | reassociated reductions; namespace-isolated like a divergent backend |
//!
//! Execution strategy is orthogonal to kernel choice: any compiler runs on
//! any gradient-capable backend. Selection threads through every layer —
//! `MicroNasConfig::with_compiler` / `SearchSession::builder().compiler(..)`
//! pick a [`graph::CompilerKind`] for a whole search, and
//! `CellNetwork::with_compiler`, `NtkEvaluator::with_compiler`,
//! `LinearRegionEvaluator::with_compiler` pin individual networks and
//! evaluators. With no compiler set, the eager call tree runs unchanged and
//! remains the correctness oracle.
//!
//! Compiled plans are cached per `(topology, geometry, mode, compiler)` in a
//! process-wide plan cache (`graph.plan_cache.*` telemetry counters), so a
//! search compiles each distinct cell shape once and replays the `Runnable`
//! thereafter. Compilation and execution are traced (`graph.compile` /
//! `graph.exec` spans), and fused dispatches are counted
//! (`graph.fused_dispatches`).
//!
//! **Store identity** follows the PR 5 rule verbatim: a compiler whose
//! `bitwise_paper_identical()` is false folds `(id, config fingerprint)`
//! into [`core::MicroNasConfig::store_namespace`], so logs written under
//! fused numerics refuse to open under eager numerics and vice versa; the
//! interpreter (and no compiler at all) folds nothing, keeping the paper
//! namespace pin. `tests/graph_pipeline.rs` property-tests interpreter-vs-
//! eager bitwise equality and fused-vs-oracle tolerance across random cells,
//! batch sizes and backends; `examples/graph_dump.rs` renders the
//! paper-default cell's forward/backward graphs (fused and unfused) as
//! Graphviz via [`graph::Graph::to_dot`].
//!
//! # Deployment topologies (PR 9): from one process to a fleet
//!
//! The evaluation store has always been the unit of sharing; the [`fabric`]
//! crate ([`micronas_fabric`]) makes it the unit of *distribution*. Three
//! topologies, in increasing order of ambition — all three produce
//! **bitwise-identical** search results, because the fabric only changes
//! where warm [`store::EvalRecord`]s come from, never what is computed:
//!
//! 1. **Single process** — the default. `SearchSession::builder().build()`
//!    evaluates everything locally; an in-memory [`store::EvalStore`]
//!    deduplicates within the run.
//! 2. **Warm local store** — `EvalStore::open` a log file and pass it to
//!    the session; repeat runs replay cached evaluations from disk.
//! 3. **Fabric fleet** — each worker machine runs a [`fabric::FabricNode`]
//!    serving its shard of the keyspace over loopback/LAN TCP, and each
//!    search process joins via `SearchSession::builder().fabric(..)` (or
//!    [`core::MicroNasConfig::fabric`]). A deterministic consistent-hash
//!    ring ([`fabric::HashRing`], virtual-node placement, identical on
//!    every worker with no coordination service) routes each
//!    `EvalKey::shard_hash` to its owning node; local misses read through
//!    the ring ([`fabric::RemoteTier`]), and fresh evaluations are offered
//!    back write-behind on a bounded queue that never blocks the search.
//!
//! The wire protocol reuses the store log's checksummed frame codec
//! byte-for-byte, and every connection opens with a `Hello` carrying the
//! worker's [`core::MicroNasConfig::store_namespace`] fingerprint — a node
//! serving a divergent evaluation configuration refuses the handshake,
//! naming both fingerprints in hex, exactly like a namespace-mismatched
//! store log refuses to open. Fabric membership itself deliberately does
//! **not** fold into the namespace: joining, leaving, or resizing a fleet
//! never invalidates warm records.
//!
//! Failure is a first-class state, not an error: per-request timeouts and
//! bounded retries bound the cost of a sick peer, and a peer that keeps
//! failing is marked dead and drops out of the ring (its arc falls to the
//! next live node; everyone else's shards stay warm). With every peer dead
//! the tier degrades to local recompute — slower, never wrong, and visible
//! in telemetry (`fabric.degraded`, `fabric.remote.*`,
//! `fabric.writebehind.*`, `fabric.node.*` counters). A
//! [`fabric::CompactionDaemon`] rewrites idle node logs on a schedule,
//! skipping logs that are live-locked. `tests/fabric_integration.rs` pins
//! the paper fingerprint across warm two-node and kill-a-node topologies;
//! `examples/fabric_cluster.rs` runs a three-node ring end to end.
//!
//! # Crate map
//!
//! * [`tensor`] — dense tensors and linear algebra ([`micronas_tensor`])
//! * [`graph`] — kernel-graph IR and CPU compilers ([`micronas_graph`])
//! * [`nn`] — neural-network substrate with explicit backprop ([`micronas_nn`])
//! * [`searchspace`] — the NAS-Bench-201 cell search space ([`micronas_searchspace`])
//! * [`datasets`] — synthetic CIFAR-style dataset generators ([`micronas_datasets`])
//! * [`nasbench`] — the surrogate accuracy benchmark ([`micronas_nasbench`])
//! * [`mcu`] — cycle-approximate Cortex-M7 MCU model ([`micronas_mcu`])
//! * [`hw`] — FLOPs / latency / memory hardware indicators ([`micronas_hw`])
//! * [`proxies`] — pluggable zero-cost proxies ([`micronas_proxies`])
//! * [`store`] — shared, persistent evaluation store ([`micronas_store`])
//! * [`fabric`] — distributed evaluation fabric over TCP ([`micronas_fabric`])
//! * [`telemetry`] — spans, metrics and the event-line format ([`micronas_telemetry`])
//! * [`core`] — sessions, strategies and the experiment harness ([`micronas`])

pub use micronas as core;
pub use micronas_datasets as datasets;
pub use micronas_fabric as fabric;
pub use micronas_graph as graph;
pub use micronas_hw as hw;
pub use micronas_mcu as mcu;
pub use micronas_nasbench as nasbench;
pub use micronas_nn as nn;
pub use micronas_proxies as proxies;
pub use micronas_searchspace as searchspace;
pub use micronas_store as store;
pub use micronas_telemetry as telemetry;
pub use micronas_tensor as tensor;
