//! Integration test of the zero-cost ranking signal: the combined proxy
//! score computed from randomly initialised networks must rank architectures
//! consistently with the surrogate "trained" accuracy — the property the
//! whole zero-shot NAS approach rests on.

use micronas_suite::core::{HybridObjective, ObjectiveWeights};
use micronas_suite::datasets::DatasetKind;
use micronas_suite::hw::HardwareEvaluator;
use micronas_suite::mcu::McuSpec;
use micronas_suite::nasbench::SurrogateBenchmark;
use micronas_suite::proxies::{correlation::kendall_tau, ZeroCostEvaluator};
use micronas_suite::searchspace::SearchSpace;

#[test]
fn combined_zero_cost_score_correlates_with_surrogate_accuracy() {
    let space = SearchSpace::nas_bench_201();
    let bench = SurrogateBenchmark::new(0);
    let zero_cost = ZeroCostEvaluator::fast();
    let hardware = HardwareEvaluator::new(
        bench.skeleton_for(DatasetKind::Cifar10),
        McuSpec::stm32f746zg(),
    );
    let objective = HybridObjective::new(ObjectiveWeights::accuracy_only());

    // A spread of connected architectures across the space.
    let sample: Vec<usize> = (0..space.len())
        .step_by(211)
        .filter(|&i| space.cell(i).unwrap().has_input_output_path())
        .take(60)
        .collect();
    assert!(sample.len() >= 50);

    let mut scores = Vec::new();
    let mut accuracies = Vec::new();
    for &idx in &sample {
        let arch = space.architecture(idx).unwrap();
        let metrics = zero_cost
            .evaluate(*arch.cell(), DatasetKind::Cifar10, 0)
            .unwrap();
        let hw = hardware.evaluate(*arch.cell());
        scores.push(objective.score(&metrics.metric_set(), &hw));
        accuracies.push(bench.query(&arch, DatasetKind::Cifar10).test_accuracy);
    }

    let tau = kendall_tau(&scores, &accuracies);
    assert!(
        tau > 0.25,
        "the proxy-only objective must carry ranking signal (Kendall-τ = {tau:.3})"
    );
}

#[test]
fn expressivity_alone_also_carries_signal() {
    let space = SearchSpace::nas_bench_201();
    let bench = SurrogateBenchmark::new(0);
    let zero_cost = ZeroCostEvaluator::fast();

    let sample: Vec<usize> = (0..space.len())
        .step_by(419)
        .filter(|&i| space.cell(i).unwrap().has_input_output_path())
        .take(36)
        .collect();

    let mut expressivity = Vec::new();
    let mut accuracies = Vec::new();
    for &idx in &sample {
        let arch = space.architecture(idx).unwrap();
        let metrics = zero_cost
            .evaluate(*arch.cell(), DatasetKind::Cifar10, 1)
            .unwrap();
        expressivity.push(metrics.expressivity);
        accuracies.push(bench.query(&arch, DatasetKind::Cifar10).test_accuracy);
    }
    let tau = kendall_tau(&expressivity, &accuracies);
    assert!(
        tau > 0.2,
        "linear-region count should rank architectures (τ = {tau:.3})"
    );
}
