//! Graph-pipeline conformance: the kernel-graph execution path (PR 8)
//! against the eager call tree it lowers.
//!
//! * the **interpreter** compiler replays the eager kernel schedule node by
//!   node, so its forward logits, pre-ReLU activations and per-sample
//!   gradient matrices are **bitwise identical** to the eager path — on
//!   every gradient-capable backend, across random cells and batch sizes;
//! * the **fusing** compiler rewrites the schedule (DCE, conv→ReLU fusion,
//!   backward-pair fusion), so it is gated against the eager oracle within
//!   tolerance instead;
//! * store identity follows the backend rules: the interpreter (bitwise)
//!   does not move `store_namespace` — the paper pin survives with the
//!   graph pipeline enabled — while the fusing compiler lands in its own
//!   namespace and a default-numerics store refuses to open under it;
//! * a full tiny paper sweep through the interpreter reproduces the pinned
//!   identity fingerprint of `tests/paper_identity.rs` at one and several
//!   rayon threads;
//! * fused dispatches and plan-cache traffic are observable through the
//!   telemetry layer.

use micronas_suite::core::experiments::{run_paper_sweep, SweepScale};
use micronas_suite::core::MicroNasConfig;
use micronas_suite::datasets::DatasetKind;
use micronas_suite::graph::CompilerKind;
use micronas_suite::nn::{CellNetwork, ProxyNetworkConfig};
use micronas_suite::searchspace::{CellTopology, Operation, SearchSpace};
use micronas_suite::store::EvalStore;
use micronas_suite::tensor::{all_backends, DeterministicRng, Shape, Tensor, Workspace};
use rayon::ThreadPoolBuilder;
use std::sync::Arc;

/// The same pin as `tests/paper_identity.rs` and
/// `tests/telemetry_inertness.rs`.
const TINY_FINGERPRINT: u64 = 0xa18a_5c02_cac6_7ecd;

fn random_batch(config: &ProxyNetworkConfig, n: usize, seed: u64) -> Tensor {
    let mut rng = DeterministicRng::new(seed);
    let shape = Shape::nchw(
        n,
        config.input_channels,
        config.input_resolution,
        config.input_resolution,
    );
    let data = (0..shape.numel()).map(|_| rng.normal()).collect();
    Tensor::from_vec(shape, data).unwrap()
}

fn tiny_config() -> ProxyNetworkConfig {
    let mut config = ProxyNetworkConfig::small(10);
    config.input_resolution = 8;
    config.channels = 4;
    config
}

fn rel_l2(got: &[f32], want: &[f32]) -> f32 {
    let err: f32 = got
        .iter()
        .zip(want)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f32>()
        .sqrt();
    let norm: f32 = want.iter().map(|v| v * v).sum::<f32>().sqrt();
    if norm == 0.0 {
        err
    } else {
        err / norm
    }
}

/// A spread of cells: conv-heavy, sparse, mixed, all-none.
fn property_cells() -> Vec<CellTopology> {
    let space = SearchSpace::nas_bench_201();
    vec![
        CellTopology::new([Operation::NorConv3x3; 6]),
        space.cell(7_000).unwrap(),
        space.cell(11_111).unwrap(),
        space.cell(404).unwrap(),
        space.cell(0).unwrap(),
    ]
}

/// The interpreter must be bitwise-identical to the eager path under every
/// gradient-capable backend — not just the paper-default one: it replays
/// the same kernel entry points in the same order, so whatever numerics the
/// backend produces, eager and interpreted runs produce the *same* ones.
#[test]
fn interpreter_is_bitwise_identical_to_eager_on_every_gradient_backend() {
    let config = tiny_config();
    for (c_idx, cell) in property_cells().into_iter().enumerate() {
        let seed = 17 + c_idx as u64;
        for backend in all_backends() {
            if !backend.supports_gradients() {
                continue;
            }
            let eager = CellNetwork::with_backend(&cell, &config, seed, backend.clone()).unwrap();
            let graphed = CellNetwork::with_backend(&cell, &config, seed, backend.clone())
                .unwrap()
                .with_compiler(CompilerKind::Interpreter.instantiate());
            for n in [2usize, 5] {
                let batch = random_batch(&config, n, 300 + n as u64);
                let mut ws = Workspace::default();
                let want = eager.forward_with(&batch, &mut ws).unwrap();
                let got = graphed.forward_with(&batch, &mut ws).unwrap();
                assert_eq!(
                    want.logits.data(),
                    got.logits.data(),
                    "backend {} cell {c_idx} n={n}: logits diverged",
                    backend.id()
                );
                assert_eq!(
                    want.pre_activations.len(),
                    got.pre_activations.len(),
                    "backend {} cell {c_idx} n={n}: pre-activation count",
                    backend.id()
                );
                for (i, (w, g)) in want
                    .pre_activations
                    .iter()
                    .zip(&got.pre_activations)
                    .enumerate()
                {
                    assert_eq!(
                        w.data(),
                        g.data(),
                        "backend {} cell {c_idx} n={n}: pre-activation {i}",
                        backend.id()
                    );
                }
                let want_m = eager
                    .per_sample_gradient_matrix_with(&batch, &mut ws)
                    .unwrap();
                let got_m = graphed
                    .per_sample_gradient_matrix_with(&batch, &mut ws)
                    .unwrap();
                assert_eq!(
                    want_m.values(),
                    got_m.values(),
                    "backend {} cell {c_idx} n={n}: gradient matrix diverged",
                    backend.id()
                );
            }
        }
    }
}

/// The fusing compiler rewrites schedules, so it answers to the eager
/// oracle within tolerance rather than bitwise.
#[test]
fn fused_plans_match_the_eager_oracle_within_tolerance() {
    let config = tiny_config();
    for (c_idx, cell) in property_cells().into_iter().enumerate() {
        let seed = 29 + c_idx as u64;
        let eager = CellNetwork::new(&cell, &config, seed).unwrap();
        let fused = CellNetwork::new(&cell, &config, seed)
            .unwrap()
            .with_compiler(CompilerKind::Fusing.instantiate());
        for n in [2usize, 5] {
            let batch = random_batch(&config, n, 400 + n as u64);
            let mut ws = Workspace::default();
            let want = eager.forward_with(&batch, &mut ws).unwrap();
            let got = fused.forward_with(&batch, &mut ws).unwrap();
            let err = rel_l2(got.logits.data(), want.logits.data());
            assert!(err <= 1e-4, "cell {c_idx} n={n}: fused forward error {err}");
            let want_m = eager
                .per_sample_gradient_matrix_with(&batch, &mut ws)
                .unwrap();
            let got_m = fused
                .per_sample_gradient_matrix_with(&batch, &mut ws)
                .unwrap();
            for b in 0..n {
                let err = rel_l2(got_m.row(b), want_m.row(b));
                assert!(
                    err <= 1e-4,
                    "cell {c_idx} n={n} sample {b}: fused gradient error {err}"
                );
            }
        }
    }
}

/// The interpreter shares the eager path's store identity; the fusing
/// compiler gets its own namespace and default-numerics stores refuse it.
#[test]
fn compiler_namespace_rules_mirror_the_backend_rules() {
    // The paper pin survives the graph pipeline.
    assert_eq!(
        MicroNasConfig::paper_default()
            .with_compiler(Some(CompilerKind::Interpreter))
            .store_namespace(),
        0xa01c_0bcb_e15a_bdf4,
        "the bitwise interpreter must not move the paper namespace"
    );

    let default_cfg = MicroNasConfig::tiny_test();
    let interp_cfg = MicroNasConfig::tiny_test().with_compiler(Some(CompilerKind::Interpreter));
    let fused_cfg = MicroNasConfig::tiny_test().with_compiler(Some(CompilerKind::Fusing));
    assert_eq!(default_cfg.store_namespace(), interp_cfg.store_namespace());
    assert_ne!(default_cfg.store_namespace(), fused_cfg.store_namespace());

    // A store minted under eager/interpreter numerics is refused under the
    // fusing configuration before any record could be served or appended.
    let store = Arc::new(EvalStore::in_memory(default_cfg.store_namespace()));
    let err = micronas_suite::core::SearchContext::with_store(
        DatasetKind::Cifar10,
        &fused_cfg,
        store.clone(),
    )
    .unwrap_err();
    assert!(err.to_string().contains("namespace"), "{err}");
    // ... and the interpreter configuration opens it fine.
    micronas_suite::core::SearchContext::with_store(DatasetKind::Cifar10, &interp_cfg, store)
        .unwrap();

    // Under its own namespace the fused configuration works end-to-end.
    let fused_store = Arc::new(EvalStore::in_memory(fused_cfg.store_namespace()));
    let ctx = micronas_suite::core::SearchContext::with_store(
        DatasetKind::Cifar10,
        &fused_cfg,
        fused_store,
    )
    .unwrap();
    let space = SearchSpace::nas_bench_201();
    let eval = ctx.evaluate(space.cell(123).unwrap()).unwrap();
    assert!(eval.metrics.get("trainability").unwrap().is_finite());
}

/// A full tiny paper sweep through the interpreter reproduces the pinned
/// identity fingerprint, at one and several rayon threads — the strongest
/// end-to-end statement that the graph pipeline is a pure scheduling seam.
#[test]
fn interpreter_sweep_reproduces_the_paper_identity_fingerprint() {
    let config = MicroNasConfig::tiny_test().with_compiler(Some(CompilerKind::Interpreter));
    for threads in [1usize, 4] {
        let pool = ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        let fingerprint = pool.install(|| {
            run_paper_sweep(&config, &SweepScale::tiny(), None)
                .unwrap()
                .identity_fingerprint()
        });
        assert_eq!(
            fingerprint, TINY_FINGERPRINT,
            "graph pipeline @ {threads} threads moved the sweep identity: {fingerprint:#018x}"
        );
    }
}

/// Fused dispatches and plan-cache traffic are observable: a fused
/// evaluation under a collector reports fused kernel launches, and a
/// repeated evaluation hits the process-wide plan cache.
#[test]
fn fused_dispatches_and_plan_cache_are_visible_in_telemetry() {
    use micronas_suite::proxies::{NtkConfig, NtkEvaluator};
    let space = SearchSpace::nas_bench_201();
    let cell = space.cell(7_000).unwrap();
    let evaluator =
        NtkEvaluator::new(NtkConfig::fast()).with_compiler(CompilerKind::Fusing.instantiate());

    let collector = Arc::new(micronas_suite::telemetry::Collector::new());
    let scope = micronas_suite::telemetry::install_scoped(collector.clone());
    let a = evaluator.evaluate(cell, DatasetKind::Cifar10, 5).unwrap();
    let b = evaluator.evaluate(cell, DatasetKind::Cifar10, 5).unwrap();
    drop(scope);
    assert_eq!(a, b, "same-seed fused evaluations must agree");

    let report = collector.report();
    assert!(
        report.counter("graph.fused_dispatches") > 0,
        "fused plans ran but no fused dispatch was counted:\n{}",
        report.table()
    );
    assert!(
        report.counter("graph.plan_cache.hits") > 0,
        "the second evaluation must replay cached plans:\n{}",
        report.table()
    );
}
