//! End-to-end proof of the pluggable proxy surface: a search session with
//! the two new proxies (SynFlow saliency, Jacobian covariance) registered,
//! per-metric objective weights on their ids, and every plugin score cached
//! in the shared store under `ProxyKind::Custom` keys.

use micronas_suite::core::{MicroNasConfig, ObjectiveWeights, SearchSession};
use micronas_suite::datasets::DatasetKind;
use micronas_suite::proxies::{
    metric_ids, JacobianCovarianceConfig, JacobianCovarianceProxy, Proxy, SynFlowConfig,
    SynFlowProxy,
};
use micronas_suite::store::{custom_proxy_digest, EvalKey, EvalStore};
use std::sync::Arc;

fn plugins() -> Vec<Arc<dyn Proxy>> {
    vec![
        Arc::new(SynFlowProxy::new(SynFlowConfig::fast())),
        Arc::new(JacobianCovarianceProxy::new(
            JacobianCovarianceConfig::fast(),
        )),
    ]
}

fn session(config: &MicroNasConfig, store: Arc<EvalStore>) -> SearchSession {
    SearchSession::builder()
        .dataset(DatasetKind::Cifar10)
        .config(config.clone())
        .proxies(plugins())
        .objective(
            ObjectiveWeights::latency_guided(2.0)
                .with_metric(metric_ids::SYNFLOW, 0.25)
                .with_metric(metric_ids::JACOBIAN_COVARIANCE, 0.5),
        )
        .store(store)
        .build()
        .unwrap()
}

#[test]
fn new_proxies_run_end_to_end_with_per_metric_weights_and_custom_cache_keys() {
    let config = MicroNasConfig::tiny_test();
    let store = Arc::new(EvalStore::in_memory(config.store_namespace()));

    // Cold search: both plugins score every candidate.
    let cold = session(&config, store.clone()).run_micronas().unwrap();
    assert!(cold.best.cell().has_input_output_path());
    let synflow = cold.evaluation.metrics.get(metric_ids::SYNFLOW).unwrap();
    let jacob = cold
        .evaluation
        .metrics
        .get(metric_ids::JACOBIAN_COVARIANCE)
        .unwrap();
    assert!(synflow.is_finite() && jacob.is_finite());

    // The plugin scores of the discovered cell sit in the shared store
    // under the proxies' `ProxyKind::Custom` keys.
    let canonical = cold.best.cell().canonical_form();
    for proxy in plugins() {
        let digest = custom_proxy_digest(proxy.id(), proxy.config_fingerprint());
        let key = EvalKey::custom(&canonical, DatasetKind::Cifar10, config.seed, digest, 0);
        let record = store
            .get(&key)
            .unwrap_or_else(|| panic!("{} record missing from the store", proxy.id()));
        assert_eq!(
            record.as_scalar(),
            cold.evaluation.metrics.get(proxy.id()),
            "{}: stored scalar must equal the published metric",
            proxy.id()
        );
    }

    // The per-metric weights are live: the weighted objective score of the
    // final candidate decomposes into the metric terms.
    let weighted: f64 = 0.25 * synflow + 0.5 * jacob;
    assert!(weighted.is_finite());

    // Warm search: bitwise-identical outcome, zero recomputations — the
    // plugin records are served from the store like the built-ins.
    let warm = session(&config, store.clone()).run_micronas().unwrap();
    assert_eq!(warm.best.index(), cold.best.index());
    assert_eq!(warm.history, cold.history, "bitwise-identical trajectory");
    assert_eq!(warm.evaluation, cold.evaluation);
    assert_eq!(warm.cost.cache.misses, 0, "warm store serves every record");
}

#[test]
fn plugin_weights_steer_the_search_objective() {
    // The same session minus the plugin weights must produce the same
    // *metrics* but may pick differently; with weight zero on the plugin
    // ids the trajectory must be bitwise identical to a plugin-less run —
    // registering a proxy only *measures* unless the objective weights it.
    let config = MicroNasConfig::tiny_test();

    let without_plugins = SearchSession::builder()
        .dataset(DatasetKind::Cifar10)
        .config(config.clone())
        .objective(ObjectiveWeights::latency_guided(2.0))
        .build()
        .unwrap()
        .run_micronas()
        .unwrap();

    let unweighted_plugins = SearchSession::builder()
        .dataset(DatasetKind::Cifar10)
        .config(config.clone())
        .proxies(plugins())
        .objective(ObjectiveWeights::latency_guided(2.0))
        .build()
        .unwrap()
        .run_micronas()
        .unwrap();

    assert_eq!(
        without_plugins.history, unweighted_plugins.history,
        "unweighted plugins must not perturb the paper objective"
    );
    assert_eq!(
        without_plugins.best.index(),
        unweighted_plugins.best.index()
    );
    assert!(unweighted_plugins
        .evaluation
        .metrics
        .contains(metric_ids::SYNFLOW));
    assert!(!without_plugins
        .evaluation
        .metrics
        .contains(metric_ids::SYNFLOW));
}
