//! Network-level backend conformance: random cells and batch sizes through
//! [`CellNetwork`] on every registered backend, plus the cross-layer
//! contracts the backend seam promises:
//!
//! * the paper-default backend is **bitwise-identical** to the pre-backend
//!   pipeline at the network and proxy level;
//! * gradient-capable backends reproduce the direct oracle's per-sample
//!   gradient matrix within their tolerance;
//! * the int8 backend runs forward-only proxies (the deployment-accuracy
//!   scenario) and errors cleanly out of gradient-based ones;
//! * the int8 backend's work accounting agrees with the `micronas-mcu`
//!   cycle model;
//! * numerically divergent backends land in their own store namespace, so a
//!   default-numerics store is refused instead of being poisoned;
//! * the SIMD backend's batch chunking is bitwise-deterministic at any
//!   thread count.

use micronas_suite::core::MicroNasConfig;
use micronas_suite::datasets::DatasetKind;
use micronas_suite::mcu::{CycleModel, McuSpec};
use micronas_suite::nn::{CellNetwork, ProxyNetworkConfig};
use micronas_suite::proxies::{LinearRegionConfig, LinearRegionEvaluator, NtkConfig, NtkEvaluator};
use micronas_suite::searchspace::{LayerRole, OpClass, OpInstance, Operation, SearchSpace};
use micronas_suite::store::EvalStore;
use micronas_suite::tensor::{
    all_backends, paper_default_backend, DeterministicRng, Int8Backend, KernelBackend,
    KernelBackendKind, Shape, Tensor, Workspace,
};
use std::sync::Arc;

fn random_batch(config: &ProxyNetworkConfig, n: usize, seed: u64) -> Tensor {
    let mut rng = DeterministicRng::new(seed);
    let shape = Shape::nchw(
        n,
        config.input_channels,
        config.input_resolution,
        config.input_resolution,
    );
    let data = (0..shape.numel()).map(|_| rng.normal()).collect();
    Tensor::from_vec(shape, data).unwrap()
}

fn tiny_config() -> ProxyNetworkConfig {
    let mut config = ProxyNetworkConfig::small(10);
    config.input_resolution = 8;
    config.channels = 4;
    config
}

fn rel_l2(got: &[f32], want: &[f32]) -> f32 {
    let err: f32 = got
        .iter()
        .zip(want)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f32>()
        .sqrt();
    let norm: f32 = want.iter().map(|v| v * v).sum::<f32>().sqrt();
    if norm == 0.0 {
        err
    } else {
        err / norm
    }
}

/// A spread of cells: conv-heavy, pool/skip-mixed, sparse, all-none.
fn conformance_cells() -> Vec<micronas_suite::searchspace::CellTopology> {
    let space = SearchSpace::nas_bench_201();
    vec![
        micronas_suite::searchspace::CellTopology::new([Operation::NorConv3x3; 6]),
        space.cell(7_000).unwrap(),
        space.cell(11_111).unwrap(),
        space.cell(404).unwrap(),
        space.cell(0).unwrap(),
    ]
}

#[test]
fn every_backend_reproduces_the_oracle_network_forward() {
    let config = tiny_config();
    for (c_idx, cell) in conformance_cells().into_iter().enumerate() {
        let seed = 11 + c_idx as u64;
        let oracle = CellNetwork::with_backend(
            &cell,
            &config,
            seed,
            KernelBackendKind::Direct.instantiate(),
        )
        .unwrap();
        for backend in all_backends() {
            let net = CellNetwork::with_backend(&cell, &config, seed, backend.clone()).unwrap();
            for n in [1usize, 2, 5] {
                let batch = random_batch(&config, n, 100 + n as u64);
                let got = net.forward(&batch).unwrap().logits;
                let want = oracle.forward(&batch).unwrap().logits;
                let err = rel_l2(got.data(), want.data());
                let gate = match backend.id() {
                    // Two stacked cells of per-tensor int8 arithmetic; the
                    // quantization noise compounds per layer.
                    "int8_mcu" => 0.25,
                    _ => 1e-3,
                };
                assert!(
                    err <= gate,
                    "backend {} cell {c_idx} n={n}: forward error {err} over gate {gate}",
                    backend.id()
                );
            }
        }
    }
}

#[test]
fn gradient_backends_reproduce_the_oracle_gradient_matrix() {
    let config = tiny_config();
    for (c_idx, cell) in conformance_cells().into_iter().enumerate() {
        let seed = 31 + c_idx as u64;
        let oracle = CellNetwork::with_backend(
            &cell,
            &config,
            seed,
            KernelBackendKind::Direct.instantiate(),
        )
        .unwrap();
        for backend in all_backends() {
            if !backend.supports_gradients() {
                continue;
            }
            let net = CellNetwork::with_backend(&cell, &config, seed, backend.clone()).unwrap();
            for n in [1usize, 3, 7] {
                let batch = random_batch(&config, n, 200 + n as u64);
                let mut ws = Workspace::default();
                let got = net
                    .per_sample_gradient_matrix_with(&batch, &mut ws)
                    .unwrap();
                let want = oracle
                    .per_sample_gradient_matrix_with(&batch, &mut ws)
                    .unwrap();
                for b in 0..n {
                    let err = rel_l2(got.row(b), want.row(b));
                    assert!(
                        err <= 1e-3,
                        "backend {} cell {c_idx} n={n} sample {b}: gradient error {err}",
                        backend.id()
                    );
                }
            }
        }
    }
}

#[test]
fn paper_default_backend_is_bitwise_identical_at_network_and_proxy_level() {
    let space = SearchSpace::nas_bench_201();
    let cell = space.cell(8_888).unwrap();
    let config = tiny_config();
    let implicit = CellNetwork::new(&cell, &config, 5).unwrap();
    let explicit = CellNetwork::with_backend(&cell, &config, 5, paper_default_backend()).unwrap();
    let batch = random_batch(&config, 3, 6);
    assert_eq!(
        implicit.forward(&batch).unwrap().logits,
        explicit.forward(&batch).unwrap().logits,
        "explicit paper-default backend must be bitwise-identical"
    );

    let default_eval = NtkEvaluator::new(NtkConfig::fast());
    let pinned = NtkEvaluator::new(NtkConfig::fast())
        .with_backend(KernelBackendKind::BlockedGemm.instantiate());
    let a = default_eval
        .evaluate(cell, DatasetKind::Cifar10, 2)
        .unwrap();
    let b = pinned.evaluate(cell, DatasetKind::Cifar10, 2).unwrap();
    assert_eq!(
        a, b,
        "NTK under the explicit default backend is bitwise-identical"
    );
}

#[test]
fn int8_backend_runs_forward_only_proxies_and_rejects_gradient_proxies() {
    let space = SearchSpace::nas_bench_201();
    let cell = space.cell(4_242).unwrap();
    let int8 = KernelBackendKind::Int8Mcu.instantiate();

    // Deployment-accuracy scenario: the expressivity probe under 8-bit
    // arithmetic runs end-to-end and stays in the float probe's ballpark.
    let float_lr = LinearRegionEvaluator::new(LinearRegionConfig::fast());
    let int8_lr = LinearRegionEvaluator::new(LinearRegionConfig::fast()).with_backend(int8.clone());
    let float_report = float_lr.evaluate(cell, DatasetKind::Cifar10, 3).unwrap();
    let int8_report = int8_lr.evaluate(cell, DatasetKind::Cifar10, 3).unwrap();
    assert!(int8_report.regions >= 1);
    let ratio = int8_report.regions as f64 / float_report.regions.max(1) as f64;
    assert!(
        (0.5..=2.0).contains(&ratio),
        "int8 expressivity ({}) should track the float probe ({})",
        int8_report.regions,
        float_report.regions
    );

    // The NTK proxy needs gradients: a clean error, not a wrong number.
    let ntk = NtkEvaluator::new(NtkConfig::fast()).with_backend(int8);
    let err = ntk.evaluate(cell, DatasetKind::Cifar10, 3).unwrap_err();
    assert!(
        err.to_string().contains("inference-only"),
        "NTK under int8 must explain itself: {err}"
    );
}

#[test]
fn int8_mac_accounting_matches_the_mcu_cycle_model() {
    // One conv layer, once through the int8 backend, once through the
    // analytic cycle model: the MAC counts must agree exactly — profiled
    // int8 inference and the latency estimate describe the same computation.
    let backend = Int8Backend::new();
    let (c, r, k) = (8usize, 16usize, 3usize);
    let mut rng = DeterministicRng::new(9);
    let input = Tensor::from_vec(
        Shape::nchw(1, c, r, r),
        (0..c * r * r).map(|_| rng.normal()).collect(),
    )
    .unwrap();
    let weight = Tensor::from_vec(
        Shape::nchw(c, c, k, k),
        (0..c * c * k * k).map(|_| rng.normal()).collect(),
    )
    .unwrap();
    backend
        .conv2d(
            &input,
            &weight,
            micronas_suite::tensor::Conv2dSpec::new(k, 1, 1),
            &mut Workspace::default(),
        )
        .unwrap();

    let model = CycleModel::new(McuSpec::stm32f746zg());
    let op = OpInstance {
        role: LayerRole::Cell {
            stage: 0,
            cell: 0,
            edge: 0,
        },
        class: OpClass::Conv,
        cell_op: Some(Operation::NorConv3x3),
        kernel: k,
        stride: 1,
        c_in: c,
        c_out: c,
        h_in: r,
        w_in: r,
    };
    assert_eq!(
        backend.macs_performed(),
        model.macs(&op),
        "int8 backend and cycle model must count the same MACs"
    );
}

#[test]
fn divergent_backends_get_their_own_store_namespace() {
    let default_cfg = MicroNasConfig::tiny_test();
    let simd_cfg = MicroNasConfig::tiny_test().with_backend(KernelBackendKind::Simd);
    assert_ne!(default_cfg.store_namespace(), simd_cfg.store_namespace());

    // A store minted for the default numerics is refused under the SIMD
    // configuration — the namespace check fires before any record could be
    // served or appended.
    let store = Arc::new(EvalStore::in_memory(default_cfg.store_namespace()));
    let err = micronas_suite::core::SearchContext::with_store(
        DatasetKind::Cifar10,
        &simd_cfg,
        store.clone(),
    )
    .unwrap_err();
    assert!(err.to_string().contains("namespace"), "{err}");

    // Under its own namespace the SIMD configuration works end-to-end.
    let simd_store = Arc::new(EvalStore::in_memory(simd_cfg.store_namespace()));
    let ctx = micronas_suite::core::SearchContext::with_store(
        DatasetKind::Cifar10,
        &simd_cfg,
        simd_store,
    )
    .unwrap();
    let space = SearchSpace::nas_bench_201();
    let eval = ctx.evaluate(space.cell(123).unwrap()).unwrap();
    assert!(eval.metrics.get("trainability").unwrap().is_finite());
}

/// Cross-candidate mega-batching at the proxy level: for every
/// bitwise-paper-identical backend, packed evaluation of the conformance
/// cell set is bitwise identical to one-at-a-time evaluation, at pack
/// widths 1/2/8 and on a 1-thread and an N-thread rayon pool alike.
#[test]
fn packed_proxy_evaluation_is_bitwise_identical_on_every_bitwise_backend() {
    use micronas_suite::proxies::ZeroCostEvaluator;
    use rayon::ThreadPoolBuilder;
    let cells = conformance_cells();
    for backend in all_backends() {
        if !backend.bitwise_paper_identical() || !backend.supports_gradients() {
            continue;
        }
        let evaluator = ZeroCostEvaluator::with_backend(
            NtkConfig::fast(),
            LinearRegionConfig::fast(),
            backend.clone(),
        );
        let solo: Vec<_> = cells
            .iter()
            .map(|&cell| evaluator.evaluate(cell, DatasetKind::Cifar10, 7).unwrap())
            .collect();
        for width in [1usize, 2, 8] {
            for threads in [1usize, 4] {
                let pool = ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .unwrap();
                let packed: Vec<_> = pool.install(|| {
                    cells
                        .chunks(width)
                        .flat_map(|pack| {
                            evaluator
                                .evaluate_pack(pack, DatasetKind::Cifar10, 7)
                                .unwrap()
                        })
                        .collect()
                });
                assert_eq!(
                    solo,
                    packed,
                    "backend {} width {width} threads {threads}",
                    backend.id()
                );
            }
        }
    }
}

/// The packed per-sample gradient sweep is bitwise-invisible on **every**
/// gradient-capable backend — including numerically divergent ones, where
/// the contract is identity to that backend's own solo sweep, not to the
/// paper numerics. NTK condition numbers with the packed backward enabled
/// (default) must equal the forward-only-packed sweep at pack widths 1/2/8
/// and on a 1-thread and an N-thread rayon pool alike.
#[test]
fn packed_backward_sweep_is_bitwise_identical_on_every_gradient_backend() {
    use rayon::ThreadPoolBuilder;
    let cells = conformance_cells();
    for backend in all_backends() {
        if !backend.supports_gradients() {
            continue;
        }
        let packed_backward = NtkEvaluator::new(NtkConfig::fast()).with_backend(backend.clone());
        let solo_backward = NtkEvaluator::new(NtkConfig::fast())
            .with_backend(backend.clone())
            .with_packed_backward(false);
        for width in [1usize, 2, 8] {
            for threads in [1usize, 4] {
                let pool = ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .unwrap();
                let (got, want) = pool.install(|| {
                    let mut ws = Workspace::default();
                    let got: Vec<_> = cells
                        .chunks(width)
                        .flat_map(|pack| {
                            packed_backward
                                .evaluate_pack_in(pack, DatasetKind::Cifar10, 7, &mut ws)
                                .unwrap()
                        })
                        .collect();
                    let want: Vec<_> = cells
                        .chunks(width)
                        .flat_map(|pack| {
                            solo_backward
                                .evaluate_pack_in(pack, DatasetKind::Cifar10, 7, &mut ws)
                                .unwrap()
                        })
                        .collect();
                    (got, want)
                });
                assert_eq!(
                    got,
                    want,
                    "backend {} width {width} threads {threads}: packed backward \
                     diverged from the solo per-sample sweep",
                    backend.id()
                );
            }
        }
    }
}

#[test]
fn simd_backend_is_bitwise_deterministic_across_thread_counts() {
    use rayon::ThreadPoolBuilder;
    let config = tiny_config();
    let space = SearchSpace::nas_bench_201();
    let cell = space.cell(11_111).unwrap();
    let net = CellNetwork::with_backend(&cell, &config, 3, KernelBackendKind::Simd.instantiate())
        .unwrap();
    let batch = random_batch(&config, 9, 4);
    let run = |threads: usize| {
        ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap()
            .install(|| {
                let mut ws = Workspace::default();
                let logits = net.forward_with(&batch, &mut ws).unwrap().logits;
                let grads = net
                    .per_sample_gradient_matrix_with(&batch, &mut ws)
                    .unwrap();
                (logits, grads.values().to_vec())
            })
    };
    let (logits_1, grads_1) = run(1);
    for threads in [2, 4, 7] {
        let (logits_n, grads_n) = run(threads);
        assert_eq!(logits_1, logits_n, "forward at {threads} threads");
        assert_eq!(grads_1, grads_n, "gradients at {threads} threads");
    }
}
