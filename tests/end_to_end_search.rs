//! Cross-crate integration tests: the full MicroNAS pipeline from
//! configuration to discovered architecture, driven through the
//! `SearchSession` builder API.

use micronas_suite::core::{
    MicroNasConfig, MicroNasSearch, ObjectiveWeights, RandomSearch, SearchSession,
};
use micronas_suite::datasets::DatasetKind;
use micronas_suite::hw::HardwareConstraints;

fn fast_session(config: &MicroNasConfig, dataset: DatasetKind) -> SearchSession {
    SearchSession::builder()
        .dataset(dataset)
        .config(config.clone())
        .build()
        .unwrap()
}

/// The headline pipeline: a latency-guided search must return a connected,
/// feasible architecture that is at least as fast as the proxy-only pick,
/// without ever training a network.
#[test]
fn latency_guided_pipeline_end_to_end() {
    let config = MicroNasConfig::fast();
    let session = fast_session(&config, DatasetKind::Cifar10);

    let te_nas = session.run(&MicroNasSearch::te_nas_baseline()).unwrap();
    let micro = session
        .run(&MicroNasSearch::new(ObjectiveWeights::latency_guided(2.0)))
        .unwrap();

    assert!(micro.best.cell().has_input_output_path());
    assert!(micro.evaluation.feasible);
    assert!(micro.evaluation.hardware.latency_ms <= te_nas.evaluation.hardware.latency_ms);
    assert!(micro.speedup_vs(te_nas.evaluation.hardware.latency_ms) >= 1.0);
    assert_eq!(
        micro.cost.simulated_gpu_hours, 0.0,
        "zero-shot search never trains"
    );
    // Accuracy of the latency-guided pick stays in the useful range.
    assert!(
        micro.test_accuracy > 60.0,
        "accuracy {}",
        micro.test_accuracy
    );
}

/// The search must honour explicit hardware budgets end to end.
#[test]
fn constrained_pipeline_respects_budgets() {
    let base = MicroNasConfig::fast();
    let reference = fast_session(&base, DatasetKind::Cifar10)
        .run(&MicroNasSearch::te_nas_baseline())
        .unwrap();

    let budget_ms = reference.evaluation.hardware.latency_ms * 0.5;
    let config = base.with_constraints(
        HardwareConstraints::for_device(&micronas_suite::mcu::McuSpec::stm32f746zg())
            .with_latency_ms(budget_ms),
    );
    let session = SearchSession::builder()
        .dataset(DatasetKind::Cifar10)
        .config(config)
        .objective(ObjectiveWeights::latency_guided(2.0))
        .build()
        .unwrap();
    let outcome = session.run_micronas().unwrap();

    assert!(
        outcome.evaluation.hardware.latency_ms <= budget_ms * 1.05,
        "latency {:.1} ms exceeds the {:.1} ms budget",
        outcome.evaluation.hardware.latency_ms,
        budget_ms
    );
    assert!(outcome.evaluation.hardware.peak_sram_kib <= 320.0);
}

/// Two identical runs must produce identical results (full determinism),
/// and the pruning search must beat random search with the same objective
/// under the same evaluation budget.
#[test]
fn pipeline_is_deterministic_and_beats_random_search() {
    let config = MicroNasConfig::fast();

    let a = fast_session(&config, DatasetKind::Cifar10)
        .run(&MicroNasSearch::te_nas_baseline())
        .unwrap();
    let b = fast_session(&config, DatasetKind::Cifar10)
        .run(&MicroNasSearch::te_nas_baseline())
        .unwrap();
    assert_eq!(a.best.index(), b.best.index());
    assert_eq!(
        a.evaluation.hardware.latency_ms,
        b.evaluation.hardware.latency_ms
    );

    // Random search with a matching evaluation budget.
    let budget = a.cost.evaluations.max(8);
    let random = fast_session(&config, DatasetKind::Cifar10)
        .run(&RandomSearch::new(ObjectiveWeights::accuracy_only(), budget).unwrap())
        .unwrap();
    // The pruning search should find an architecture at least as good (in
    // surrogate accuracy) as a random sample of equal size most of the time;
    // allow a small tolerance to keep the test robust.
    assert!(
        a.test_accuracy >= random.test_accuracy - 3.0,
        "pruning {:.2}% vs random {:.2}%",
        a.test_accuracy,
        random.test_accuracy
    );
}

/// The same pipeline works on the other two datasets of the paper.
#[test]
fn pipeline_runs_on_all_three_datasets() {
    let config = MicroNasConfig::fast();
    for dataset in [DatasetKind::Cifar100, DatasetKind::ImageNet16_120] {
        let outcome = fast_session(&config, dataset)
            .run(&MicroNasSearch::new(ObjectiveWeights::latency_guided(1.0)))
            .unwrap();
        assert!(
            outcome.best.cell().has_input_output_path(),
            "{dataset}: disconnected pick"
        );
        assert!(outcome.evaluation.hardware.latency_ms > 0.0);
        assert!(outcome.test_accuracy > 5.0);
    }
}
