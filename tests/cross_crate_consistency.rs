//! Consistency checks that span multiple crates: the hardware estimators,
//! the surrogate benchmark, the MCU simulator and the search space must agree
//! with each other wherever their outputs overlap.

use micronas_suite::hw::{FlopsEstimator, LatencyEstimator, MemoryEstimator};
use micronas_suite::mcu::{McuSimulator, McuSpec};
use micronas_suite::nasbench::{DatasetKind, SurrogateBenchmark};
use micronas_suite::searchspace::{MacroSkeleton, SearchSpace};

/// The surrogate benchmark's params/FLOPs columns must equal the hardware
/// estimator's values (they share the estimator, but this guards the wiring).
#[test]
fn surrogate_hardware_columns_match_the_estimators() {
    let space = SearchSpace::nas_bench_201();
    let bench = SurrogateBenchmark::new(0);
    let est = FlopsEstimator::new();
    let skeleton = MacroSkeleton::nas_bench_201(10);
    for idx in (0..space.len()).step_by(2_111) {
        let arch = space.architecture(idx).unwrap();
        let entry = bench.query(&arch, DatasetKind::Cifar10);
        let report = est.cell_in_skeleton(arch.cell(), &skeleton);
        assert!((entry.flops_m - report.flops_m()).abs() < 1e-9);
        assert!((entry.params_m - report.params_m()).abs() < 1e-9);
    }
}

/// The lookup-table latency estimator must agree with the cycle-level
/// simulator it was profiled on, across a spread of architectures.
#[test]
fn latency_lut_matches_direct_simulation_across_the_space() {
    let space = SearchSpace::nas_bench_201();
    let skeleton = MacroSkeleton::nas_bench_201(10);
    let estimator = LatencyEstimator::new(McuSpec::stm32f746zg());
    for idx in (0..space.len()).step_by(1_563) {
        let cell = space.cell(idx).unwrap();
        let err = estimator.validate_against_simulator(&skeleton.instantiate(&cell));
        assert!(err < 0.01, "architecture {idx}: relative error {err}");
    }
}

/// Memory accounting must agree between the high-level estimator and the
/// simulator's own working-set tracking.
#[test]
fn memory_estimator_matches_simulator_accounting() {
    let space = SearchSpace::nas_bench_201();
    let skeleton = MacroSkeleton::nas_bench_201(10);
    let memory = MemoryEstimator::new();
    let simulator = McuSimulator::new(McuSpec::stm32f746zg());
    for idx in (0..space.len()).step_by(3_907) {
        let cell = space.cell(idx).unwrap();
        let ops = skeleton.instantiate(&cell);
        let report = memory.network(&ops);
        let sim = simulator.simulate(&ops);
        assert_eq!(report.peak_activation_bytes, sim.peak_activation_bytes);
        assert_eq!(report.weight_bytes, sim.weight_bytes);
    }
}

/// Every architecture index must round-trip through the arch-string encoding
/// and keep its surrogate accuracy (i.e. accuracy is a function of the cell,
/// not of incidental state).
#[test]
fn arch_string_round_trip_preserves_benchmark_identity() {
    let space = SearchSpace::nas_bench_201();
    let bench = SurrogateBenchmark::new(7);
    for idx in (0..space.len()).step_by(977) {
        let arch = space.architecture(idx).unwrap();
        let reparsed: micronas_suite::searchspace::CellTopology =
            arch.arch_string().parse().unwrap();
        let round_trip = micronas_suite::searchspace::Architecture::from_cell(&space, reparsed);
        assert_eq!(round_trip.index(), idx);
        let a = bench.query(&arch, DatasetKind::Cifar100);
        let b = bench.query(&round_trip, DatasetKind::Cifar100);
        assert_eq!(a, b);
    }
}

/// Latency, FLOPs and memory must all rank the canonical light/heavy cells
/// the same way — the cross-indicator sanity the hardware-aware objective
/// relies on.
#[test]
fn hardware_indicators_agree_on_extreme_cells() {
    use micronas_suite::searchspace::{CellTopology, Operation};
    let skeleton = MacroSkeleton::nas_bench_201(10);
    let flops = FlopsEstimator::new();
    let latency = LatencyEstimator::new(McuSpec::stm32f746zg());
    let memory = MemoryEstimator::new();

    let light = CellTopology::new([Operation::SkipConnect; 6]);
    let heavy = CellTopology::new([Operation::NorConv3x3; 6]);

    assert!(
        flops.cell_in_skeleton(&heavy, &skeleton).flops
            > flops.cell_in_skeleton(&light, &skeleton).flops
    );
    assert!(
        latency.cell_latency_ms(&heavy, &skeleton) > latency.cell_latency_ms(&light, &skeleton)
    );
    assert!(
        memory.cell_in_skeleton(&heavy, &skeleton).weight_bytes
            > memory.cell_in_skeleton(&light, &skeleton).weight_bytes
    );
}
