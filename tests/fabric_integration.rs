//! End-to-end acceptance tests for the distributed evaluation fabric:
//! a two-node loopback fleet must serve a warm repeat of the paper sweep
//! without recompute and without moving a single bit of the result; a
//! killed node must degrade the fleet, not the answer; and a peer serving
//! a divergent evaluation configuration must be refused at the handshake.

use micronas_suite::core::experiments::{run_paper_sweep, SweepScale};
use micronas_suite::core::MicroNasConfig;
use micronas_suite::fabric::{FabricConfig, FabricNode, RemoteTier};
use micronas_suite::store::{EvalStore, RemoteBackend};
use micronas_suite::telemetry::Collector;
use std::sync::Arc;

/// `run_paper_sweep(tiny_test, tiny)` — pinned in `tests/paper_identity.rs`.
const TINY_FINGERPRINT: u64 = 0xa18a_5c02_cac6_7ecd;

fn two_nodes(namespace: u64) -> (FabricNode, FabricNode, FabricConfig) {
    let node_a = FabricNode::serve(Arc::new(EvalStore::in_memory(namespace))).unwrap();
    let node_b = FabricNode::serve(Arc::new(EvalStore::in_memory(namespace))).unwrap();
    let config = FabricConfig::with_peers(vec![node_a.addr(), node_b.addr()]);
    (node_a, node_b, config)
}

/// A worker: a local in-memory store reading through a fabric tier.
fn worker(namespace: u64, config: &FabricConfig) -> (Arc<EvalStore>, Arc<RemoteTier>) {
    let store = Arc::new(EvalStore::in_memory(namespace));
    let tier = Arc::new(RemoteTier::from_config(namespace, config));
    store
        .attach_remote(Arc::clone(&tier) as Arc<dyn RemoteBackend>)
        .unwrap();
    (store, tier)
}

#[test]
fn warm_two_node_repeat_is_bitwise_identical_and_mostly_served() {
    let config = MicroNasConfig::tiny_test();
    let namespace = config.store_namespace();
    let (node_a, node_b, fabric) = two_nodes(namespace);

    // Worker 1 computes the tiny paper sweep cold, offering every fresh
    // evaluation to the fleet write-behind.
    let (store1, tier1) = worker(namespace, &fabric);
    let report1 = run_paper_sweep(&config, &SweepScale::tiny(), Some(store1)).unwrap();
    assert_eq!(
        report1.identity_fingerprint(),
        TINY_FINGERPRINT,
        "fabric-attached sweep drifted: got {:#018x}",
        report1.identity_fingerprint()
    );
    tier1.flush().unwrap();
    let stats1 = tier1.stats();
    assert!(stats1.delivered > 0, "{stats1:?}");
    assert_eq!(stats1.offered, stats1.delivered, "{stats1:?}");
    assert!(
        !node_a.store().is_empty() && !node_b.store().is_empty(),
        "the ring must spread records over both nodes ({} / {})",
        node_a.store().len(),
        node_b.store().len()
    );

    // Worker 2 arrives cold on another "machine": identical result, and at
    // least 90% of its evaluations come from the fleet instead of being
    // recomputed.
    let (store2, tier2) = worker(namespace, &fabric);
    let report2 = run_paper_sweep(&config, &SweepScale::tiny(), Some(store2.clone())).unwrap();
    assert_eq!(report2.identity_fingerprint(), TINY_FINGERPRINT);

    let s = store2.stats();
    let served = s.hits as f64 / (s.hits + s.misses) as f64;
    assert!(
        served >= 0.9,
        "second arrival must be mostly warm: {} hits / {} misses ({served:.3})",
        s.hits,
        s.misses
    );
    assert!(tier2.stats().remote_hits > 0, "{:?}", tier2.stats());
}

#[test]
fn killing_a_node_degrades_the_fleet_but_not_the_answer() {
    let config = MicroNasConfig::tiny_test();
    let namespace = config.store_namespace();
    let (mut node_a, node_b, mut fabric) = two_nodes(namespace);
    // Fail fast so the dead node costs one timeout, not a retry ladder.
    fabric.timeout_ms = 150;
    fabric.retries = 0;
    fabric.fail_threshold = 1;

    // Warm the fleet, then kill one node.
    let (store1, tier1) = worker(namespace, &fabric);
    run_paper_sweep(&config, &SweepScale::tiny(), Some(store1)).unwrap();
    tier1.flush().unwrap();
    node_a.shutdown();

    // A fresh worker against the half-dead fleet: identical fingerprint,
    // with the degradation visible in telemetry counters.
    let collector = Arc::new(Collector::new());
    let scoped = micronas_suite::telemetry::install_scoped(collector.clone());
    let (store2, tier2) = worker(namespace, &fabric);
    let report = run_paper_sweep(&config, &SweepScale::tiny(), Some(store2)).unwrap();
    drop(scoped);
    assert_eq!(
        report.identity_fingerprint(),
        TINY_FINGERPRINT,
        "a degraded fleet must not change results: got {:#018x}",
        report.identity_fingerprint()
    );

    let stats = tier2.stats();
    assert_eq!(stats.degraded_peers, 1, "{stats:?}");
    assert!(stats.timeouts + stats.errors >= 1, "{stats:?}");
    assert_eq!(tier2.alive_peers(), vec![node_b.addr()]);

    let telemetry = collector.report();
    assert_eq!(telemetry.counter("fabric.degraded"), 1);
    assert!(
        telemetry.counter("fabric.remote.timeouts") + telemetry.counter("fabric.remote.errors")
            >= 1,
        "{}",
        telemetry.table()
    );
    // The surviving node still served what it owned.
    assert!(
        telemetry.counter("fabric.remote.hits") > 0,
        "{}",
        telemetry.table()
    );
}

#[test]
fn divergent_namespace_peers_are_refused_at_the_handshake() {
    // A node from a *different* evaluation configuration (fast vs
    // tiny_test: different probe networks, different namespaces).
    let foreign = MicroNasConfig::fast().store_namespace();
    let ours = MicroNasConfig::tiny_test().store_namespace();
    assert_ne!(foreign, ours);
    let node = FabricNode::serve(Arc::new(EvalStore::in_memory(foreign))).unwrap();

    let (_store, tier) = worker(ours, &FabricConfig::with_peers(vec![node.addr()]));
    let err = tier.connect_all().unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains(&format!("{foreign:#018x}")) && msg.contains(&format!("{ours:#018x}")),
        "refusal must name both fingerprints in hex: {msg}"
    );
    assert!(!err.retryable());
    assert_eq!(node.stats().refused_handshakes, 1);
    assert_eq!(node.stats().connections, 0);
}
