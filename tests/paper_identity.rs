//! Golden identity pins for the paper-default pipeline.
//!
//! The API redesign (Proxy trait / MetricSet / SearchSession) promised that
//! the paper-default configuration stays **bitwise identical** to the tree
//! before it (PR 3). These constants were captured from that tree; every
//! proxy value, search trajectory and experiment statistic feeds the sweep
//! fingerprint, so a single drifted bit anywhere in the pipeline fails
//! here. If an assertion fails after an intentional numerical change, bump
//! the store namespace version and re-capture — never silently update.

use micronas_suite::core::experiments::{run_paper_sweep, SweepScale};
use micronas_suite::core::MicroNasConfig;

/// `SweepReport::identity_fingerprint` of `run_paper_sweep(tiny_test, tiny)`
/// captured on the PR 3 tree.
const TINY_FINGERPRINT: u64 = 0xa18a_5c02_cac6_7ecd;

/// `SweepReport::identity_fingerprint` of `run_paper_sweep(fast, tiny)`
/// captured on the PR 3 tree.
const FAST_FINGERPRINT: u64 = 0xd341_27d1_e32e_c3b1;

#[test]
fn tiny_sweep_fingerprint_matches_the_pre_redesign_tree() {
    let report = run_paper_sweep(&MicroNasConfig::tiny_test(), &SweepScale::tiny(), None).unwrap();
    assert_eq!(
        report.identity_fingerprint(),
        TINY_FINGERPRINT,
        "got {:#018x}",
        report.identity_fingerprint()
    );
}

#[test]
fn fast_sweep_fingerprint_matches_the_pre_redesign_tree() {
    let report = run_paper_sweep(&MicroNasConfig::fast(), &SweepScale::tiny(), None).unwrap();
    assert_eq!(
        report.identity_fingerprint(),
        FAST_FINGERPRINT,
        "got {:#018x}",
        report.identity_fingerprint()
    );
}
