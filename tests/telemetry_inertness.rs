//! Telemetry must be provably inert.
//!
//! The observability layer (PR 7) promises that attaching any
//! [`TelemetrySink`] — the no-op `NullSink`, a full `Collector` recording,
//! or a counting probe — changes **nothing** about what the pipeline
//! computes: the paper-identity fingerprints pinned by
//! `tests/paper_identity.rs` stay bitwise identical, cache/batch counters
//! match the untraced runs exactly, and two same-seed searches record
//! byte-identical deterministic event streams. Each property is checked at
//! one and several rayon threads.
//!
//! Telemetry installation is process-global, so every test that installs a
//! sink serializes on one mutex — tests in this binary otherwise run
//! concurrently and would observe each other's sinks.

use micronas_suite::core::experiments::{run_paper_sweep, run_paper_sweep_traced, SweepScale};
use micronas_suite::core::{
    replay_diff, replay_events, EventRecorder, MicroNasConfig, RecordedEvent, SearchSession,
};
use micronas_suite::telemetry::{Collector, CountingSink, NullSink, TelemetrySink};
use rayon::ThreadPoolBuilder;
use std::sync::{Arc, Mutex};

/// `SweepReport::identity_fingerprint` of `run_paper_sweep(tiny_test,
/// tiny)` — the same pin as `tests/paper_identity.rs`.
const TINY_FINGERPRINT: u64 = 0xa18a_5c02_cac6_7ecd;

/// Serializes the tests that install a process-global telemetry sink.
static TELEMETRY_LOCK: Mutex<()> = Mutex::new(());

fn tiny_fingerprint() -> u64 {
    run_paper_sweep(&MicroNasConfig::tiny_test(), &SweepScale::tiny(), None)
        .unwrap()
        .identity_fingerprint()
}

#[test]
fn sweep_fingerprint_is_pinned_under_every_sink_and_thread_count() {
    let _guard = TELEMETRY_LOCK.lock().unwrap();
    let sinks: Vec<(&str, Arc<dyn TelemetrySink>)> = vec![
        ("NullSink", Arc::new(NullSink)),
        ("Collector", Arc::new(Collector::new())),
        ("CountingSink", Arc::new(CountingSink::default())),
    ];
    for (name, sink) in &sinks {
        for threads in [1usize, 4] {
            let scope = micronas_suite::telemetry::install_scoped(sink.clone());
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let fingerprint = pool.install(tiny_fingerprint);
            drop(scope);
            assert_eq!(
                fingerprint, TINY_FINGERPRINT,
                "{name} @ {threads} threads perturbed the sweep: {fingerprint:#018x}"
            );
        }
    }
}

/// The inertness promise holds with the kernel-graph pipeline active too:
/// a tiny sweep routed through the bitwise interpreter compiler (PR 8)
/// reproduces the same pinned fingerprint under every sink at one and
/// several rayon threads — telemetry perturbs neither the eager nor the
/// compiled execution path.
#[test]
fn sweep_fingerprint_is_pinned_with_the_graph_pipeline_active() {
    let _guard = TELEMETRY_LOCK.lock().unwrap();
    let config = MicroNasConfig::tiny_test()
        .with_compiler(Some(micronas_suite::graph::CompilerKind::Interpreter));
    let sinks: Vec<(&str, Arc<dyn TelemetrySink>)> = vec![
        ("NullSink", Arc::new(NullSink)),
        ("Collector", Arc::new(Collector::new())),
        ("CountingSink", Arc::new(CountingSink::default())),
    ];
    for (name, sink) in &sinks {
        for threads in [1usize, 4] {
            let scope = micronas_suite::telemetry::install_scoped(sink.clone());
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let fingerprint = pool.install(|| {
                run_paper_sweep(&config, &SweepScale::tiny(), None)
                    .unwrap()
                    .identity_fingerprint()
            });
            drop(scope);
            assert_eq!(
                fingerprint, TINY_FINGERPRINT,
                "{name} @ {threads} threads with the graph pipeline perturbed \
                 the sweep: {fingerprint:#018x}"
            );
        }
    }
}

#[test]
fn counting_sink_proves_probes_fire_while_results_stay_pinned() {
    let _guard = TELEMETRY_LOCK.lock().unwrap();
    let sink = Arc::new(CountingSink::default());
    let scope = micronas_suite::telemetry::install_scoped(sink.clone());
    let fingerprint = tiny_fingerprint();
    drop(scope);
    assert_eq!(fingerprint, TINY_FINGERPRINT);
    assert!(sink.spans() > 0, "no span probes fired during a full sweep");
    assert!(
        sink.counters() > 0,
        "no counter probes fired during a full sweep"
    );
}

#[test]
fn cache_and_batch_stats_match_untraced_runs_sequential_and_packed() {
    let _guard = TELEMETRY_LOCK.lock().unwrap();
    let run = |width: usize, traced: bool| {
        let mut builder = SearchSession::builder()
            .config(MicroNasConfig::tiny_test())
            .pack_width(width);
        if traced {
            builder = builder
                .telemetry(Arc::new(Collector::new()))
                .observer(Arc::new(EventRecorder::new()));
        }
        let session = builder.build().unwrap();
        let outcome = session.run_micronas().unwrap();
        (
            outcome.history.clone(),
            outcome.best.index(),
            outcome.cost.cache,
            outcome.cost.batch,
        )
    };
    for width in [1usize, 8] {
        let plain = run(width, false);
        let traced = run(width, true);
        assert_eq!(
            plain, traced,
            "telemetry perturbed the width-{width} search (history/best/cache/batch)"
        );
    }
    // Packed and sequential runs agree on cache traffic (packing is pure
    // scheduling) even while a collector and a recorder are attached.
    let sequential = run(1, true);
    let packed = run(8, true);
    assert_eq!(sequential.0, packed.0, "history must not depend on packing");
    assert_eq!(
        sequential.2, packed.2,
        "cache stats must not depend on packing"
    );
}

#[test]
fn same_seed_searches_record_byte_identical_event_streams() {
    let _guard = TELEMETRY_LOCK.lock().unwrap();
    let record = |threads: usize| {
        let recorder = Arc::new(EventRecorder::new());
        let session = SearchSession::builder()
            .config(MicroNasConfig::tiny_test())
            .observer(recorder.clone())
            .build()
            .unwrap();
        let pool = ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        let outcome = pool.install(|| session.run_micronas().unwrap());
        (recorder.to_jsonl(), outcome)
    };
    let (a, outcome) = record(1);
    let (a2, outcome2) = record(1);
    let (b, _) = record(4);
    assert_eq!(outcome.history, outcome2.history);

    for (label, x, y) in [
        ("same-seed repeat @1 thread", &a, &a2),
        ("1 thread vs 4 threads", &a, &b),
    ] {
        let diffs = replay_diff(x, y);
        assert!(diffs.is_empty(), "{label}: {diffs:?}");
    }

    // The replayed stream is the full event contract: one started, one
    // step per history entry (scores bit-exact), one finished.
    let events = replay_events(&a).unwrap();
    assert_eq!(events.len(), outcome.history.len() + 2);
    assert_eq!(
        events[0],
        RecordedEvent::Started {
            algorithm: outcome.algorithm.clone()
        }
    );
    for (i, score) in outcome.history.iter().enumerate() {
        assert_eq!(
            events[1 + i],
            RecordedEvent::Step {
                index: i,
                score_bits: score.to_bits()
            }
        );
    }
    assert_eq!(
        events[events.len() - 1],
        RecordedEvent::Finished {
            algorithm: outcome.algorithm.clone(),
            best_index: outcome.evaluation.arch_index,
            steps: outcome.history.len()
        }
    );
}

#[test]
fn traced_sweep_reports_nonzero_spans_for_every_layer() {
    let _guard = TELEMETRY_LOCK.lock().unwrap();
    let config = MicroNasConfig::tiny_test();

    // A persistent store so the store layer's log-append path runs too.
    let mut path = std::env::temp_dir();
    path.push(format!(
        "micronas-telemetry-inertness-{}.log",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let store =
        Arc::new(micronas_suite::store::EvalStore::open(&path, config.store_namespace()).unwrap());

    let collector = Arc::new(Collector::new());
    let report =
        run_paper_sweep_traced(&config, &SweepScale::tiny(), Some(store), collector.clone())
            .unwrap();
    let _ = std::fs::remove_file(&path);

    assert_eq!(
        report.identity_fingerprint(),
        TINY_FINGERPRINT,
        "tracing the sweep moved its identity"
    );
    let telemetry = report.telemetry.expect("traced sweep folds telemetry in");
    for layer in ["tensor.", "nn.", "proxy.", "store.", "strategy."] {
        assert!(
            telemetry.layer_total_ns(layer) > 0,
            "layer {layer} recorded no span time:\n{}",
            telemetry.table()
        );
    }
    assert!(telemetry.counter("tensor.gemm.calls") > 0);
    assert!(telemetry.counter("search.pack.dispatches") > 0);
    assert!(
        telemetry.counter("store.hits") + telemetry.counter("store.misses") > 0,
        "store counters silent"
    );
    // The report serializes both ways without panicking.
    assert!(telemetry.table().contains("strategy.step"));
    assert!(telemetry.to_json().contains("tensor.gemm"));
}
